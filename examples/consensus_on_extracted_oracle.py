"""End-to-end: dining black box -> extracted ◇P -> consensus.

The full chain the paper's equivalence enables: take a black-box WF-◇WX
dining solution, extract ◇P with the reduction, and hand the extracted
oracle to Chandra–Toueg consensus.  The round-1 coordinator is crashed to
force the oracle to earn its keep.

Run:  python examples/consensus_on_extracted_oracle.py
"""

from repro.consensus.chandra_toueg import check_consensus, setup_consensus
from repro.core import build_full_extraction
from repro.experiments.common import build_system, wf_box
from repro.sim.faults import CrashSchedule

PIDS = ["p0", "p1", "p2", "p3"]


def main() -> None:
    system = build_system(
        PIDS, seed=8, gst=120.0, max_time=8000.0,
        crash=CrashSchedule.single("p0", 40.0),   # round-1 coordinator dies
    )
    detectors, pairs = build_full_extraction(system.engine, PIDS,
                                             wf_box(system))
    proposals = {pid: f"value-from-{pid}" for pid in PIDS}
    endpoints = setup_consensus(system.engine, PIDS, detectors, proposals)

    system.engine.run(stop_when=lambda: all(
        system.engine.process(p).crashed or endpoints[p].decided is not None
        for p in PIDS
    ))

    result = check_consensus(system.engine.trace, PIDS, system.schedule,
                             proposals)
    print(f"{len(pairs)} reduction pairs "
          f"({2 * len(pairs)} dining instances) fed the oracle\n")
    print(result.format_table())
    print(f"\nvirtual time to decision: {system.engine.now:.1f}")
    assert result.ok, "consensus should hold with the extracted oracle"


if __name__ == "__main__":
    main()
