"""The grand tour: black-box dining to a replicated key-value store.

Everything between the two ends is built in this repository:

    dining black box --(paper's reduction)--> extracted ◇P
      --(Chandra-Toueg)--> consensus --(repeated instances)--> atomic
      broadcast --(deterministic apply)--> identical replicas

A replica crashes mid-run; the survivors keep agreeing on the command
order and converge to the same store state, with the extracted oracle as
the only failure information in the entire stack.

Run:  python examples/replicated_kv.py
"""

from repro.apps.kv_store import KVReplica, check_replication
from repro.consensus.atomic_broadcast import setup_atomic_broadcast
from repro.core import build_full_extraction
from repro.experiments.common import build_system, wf_box
from repro.sim.faults import CrashSchedule

PIDS = ["p0", "p1", "p2"]
CRASH_AT = 260.0


def main() -> None:
    system = build_system(PIDS, seed=17, max_time=12000.0,
                          crash=CrashSchedule.single("p2", CRASH_AT))
    detectors, pairs = build_full_extraction(system.engine, PIDS,
                                             wf_box(system))
    abcs = setup_atomic_broadcast(system.engine, PIDS, detectors)
    replicas = {
        pid: system.engine.process(pid).add_component(
            KVReplica("kv", abcs[pid]))
        for pid in PIDS
    }

    sent = []
    script = [
        (30.0, "p0", "set", "balance", 100),
        (80.0, "p1", "incr", "hits", None),
        (130.0, "p2", "incr", "hits", None),     # from the doomed replica
        (320.0, "p0", "set", "owner", "alice"),  # after the crash
        (360.0, "p1", "incr", "hits", None),
    ]
    for at, pid, op, key, value in script:
        def go(pid=pid, op=op, key=key, value=value):
            if not system.engine.process(pid).crashed:
                sent.append(replicas[pid].submit(op, key, value))
        system.engine.schedule_call(at, go)

    correct = ["p0", "p1"]
    system.engine.run(stop_when=lambda: len(sent) >= len(script)
                      and all(replicas[p].applied >= len(sent)
                              for p in correct))

    print(f"{len(pairs)} reduction pairs feed the oracle; "
          f"p2 crashed at t={CRASH_AT}\n")
    for pid in PIDS:
        r = replicas[pid]
        status = "crashed" if system.engine.process(pid).crashed else "ok"
        print(f"  {pid} [{status}]: applied {r.applied} commands, "
              f"state = {r.snapshot()}")
    result = check_replication(replicas, correct)
    print(f"\nconsistent: {result.consistent}  "
          f"(virtual time {system.engine.now:.1f})")
    assert result.ok


if __name__ == "__main__":
    main()
