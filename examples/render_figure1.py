"""Regenerate the paper's Figure 1 as an SVG file.

Runs one reduction pair to convergence, extracts the witness/subject
eating sessions of both dining instances, and renders the exclusive-suffix
window as ``figure1.svg`` — short witness bars strictly between long,
pairwise-overlapping subject bars, with the convergence point marked.

Run:  python examples/render_figure1.py
"""

import pathlib

from repro.analysis.sessions import analyze_pair_sessions
from repro.analysis.svg import render_svg_timeline, save_svg
from repro.core import build_full_extraction
from repro.dining.spec import check_exclusion
from repro.experiments.common import build_system, wf_box
from repro.graphs import pair_graph

OUT = pathlib.Path(__file__).parent / "figure1.svg"


def main() -> None:
    system = build_system(["p", "q"], seed=101, gst=150.0, max_time=2500.0)
    _, pairs = build_full_extraction(system.engine, ["p", "q"],
                                     wf_box(system), monitors=[("p", "q")])
    system.engine.run()
    pair = pairs[("p", "q")]
    end = system.engine.now

    conv = 0.0
    for iid in pair.instance_ids():
        rep = check_exclusion(system.engine.trace, pair_graph("p", "q"), iid,
                              system.schedule, end)
        if rep.last_violation_end is not None:
            conv = max(conv, rep.last_violation_end)

    analysis = analyze_pair_sessions(system.engine.trace, pair, end)
    window = (end - 400.0, end)
    tracks = {}
    for i in (0, 1):
        tracks[f"DX{i} witness (p.w{i})"] = analysis.witness[i]
        tracks[f"DX{i} subject (q.s{i})"] = analysis.subject[i]
    svg = render_svg_timeline(
        tracks, window[0], window[1],
        title="Fig. 1 — witness and subject eating sessions "
              "(exclusive suffix)",
    )
    path = save_svg(svg, OUT)
    print(f"wrote {path} "
          f"({analysis.counts()} sessions; exclusion converged by "
          f"t={conv:.1f})")


if __name__ == "__main__":
    main()
