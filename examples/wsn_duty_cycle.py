"""WSN duty-cycle scheduling (the paper's Section 2 motivation).

A 3x3 grid of battery-powered sensors keeps an area covered.  The dining
scheduler rotates duty (eating = on duty) so the network outlives its
nodes; an always-on baseline burns out quickly.  Scheduling mistakes under
◇WX mean redundant coverage only — a performance cost, never a safety one.

Run:  python examples/wsn_duty_cycle.py
"""

from repro.apps.wsn import WSNExperiment


def sparkline(series: list[tuple[float, float]], width: int = 72) -> str:
    """Coverage-over-time as a compact unicode sparkline."""
    if not series:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    step = max(len(series) // width, 1)
    vals = [series[i][1] for i in range(0, len(series), step)]
    return "".join(blocks[min(int(v * (len(blocks) - 1)), len(blocks) - 1)]
                   for v in vals)


def main() -> None:
    exp = WSNExperiment(rows=3, cols=3, seed=7, battery=300.0,
                        max_time=1800.0)
    print("running always-on baseline ...")
    base = exp.run_always_on()
    print("running dining-scheduled rotation ...")
    dining = exp.run_dining()

    print()
    print(base.format_row())
    print(dining.format_row())
    print()
    print("coverage over time (fraction of cells covered):")
    print(f"  always-on |{sparkline(base.coverage_series)}|")
    print(f"  dining    |{sparkline(dining.coverage_series)}|")
    print()
    ratio = dining.lifetime / max(base.lifetime, 1e-9)
    print(f"dining rotation extended network lifetime {ratio:.1f}x")


if __name__ == "__main__":
    main()
