"""Eventually k-fair dining via the Section 8 wrapper construction.

Wraps a black-box WF-◇WX dining instance in the fairness layer of
``repro.dining.fair_wrapper`` and shows the overtake-budget knob at work:
tighter budgets mean stricter turn-taking and lower throughput.

Run:  python examples/fair_dining.py
"""

from repro.dining.client import EagerClient
from repro.dining.fair_wrapper import FairDining
from repro.dining.fairness import measure_fairness
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.experiments.common import build_system
from repro.graphs import clique

N = 3
INSTANCE = "FAIR"


def run_with_budget(k: int | None) -> str:
    graph = clique(N)
    pids = sorted(graph.nodes)
    system = build_system(pids, seed=21, max_time=2500.0)
    inner = lambda iid, g: WaitFreeEWXDining(iid, g, system.provider)  # noqa: E731
    if k is None:
        diners = inner(INSTANCE, graph).attach(system.engine)
    else:
        wrapper = FairDining(INSTANCE, graph, inner, system.provider, k=k)
        diners = wrapper.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("client", diners[pid], eat_steps=2))
    system.engine.run()
    eng = system.engine

    wf = check_wait_freedom(eng.trace, graph, INSTANCE, system.schedule,
                            eng.now, grace=150.0)
    excl = check_exclusion(eng.trace, graph, INSTANCE, system.schedule,
                           eng.now)
    conv = (excl.last_violation_end or 0.0) + 250.0
    fairness = measure_fairness(eng.trace, graph, INSTANCE, eng.now,
                                system.schedule)
    label = "no wrapper" if k is None else f"k={k}"
    return (f"{label:>10}: wait-free={wf.ok}  "
            f"suffix overtaking={fairness.worst_after(conv)}  "
            f"total sessions={sum(wf.sessions.values())}")


def main() -> None:
    print(f"{N}-diner clique, eager clients, 2500 time units\n")
    for k in (1, 2, 3, None):
        print(run_with_budget(k))
    print("\nsmaller k = stricter turn-taking = fewer total sessions")


if __name__ == "__main__":
    main()
