"""Boosting obstruction-free STM with a dining contention manager.

The paper's Sections 2-3: clients hammering a shared transactional counter
abort each other under raw obstruction-freedom; admitting them through a
wait-free ◇WX dining instance (the contention manager) makes every
transaction commit.

Run:  python examples/stm_contention_manager.py
"""

from repro.apps.stm import ContentionManagedSTM


def main() -> None:
    for clients in (2, 4, 6):
        stm = ContentionManagedSTM(n_clients=clients, tx_target=15,
                                   seed=100 + clients, max_time=15000.0)
        raw = stm.run(with_cm=False)
        managed = stm.run(with_cm=True)
        print(f"--- {clients} clients, one shared counter ---")
        print(" ", raw.format_row())
        print(" ", managed.format_row())
        if managed.cm_violations:
            print(f"  (CM made {managed.cm_violations} finite admission "
                  f"mistakes, last at t={managed.cm_last_violation:.0f})")
        print()


if __name__ == "__main__":
    main()
