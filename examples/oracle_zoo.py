"""The failure-detector zoo, side by side on one fault schedule.

Runs ◇P (honest heartbeat implementation), P, T, and S plus an Ω leader
elector in a single partially synchronous system with one crash, then
prints each oracle's suspicion history about the crashed and a correct
process — making the hierarchy's accuracy differences visible.

Run:  python examples/oracle_zoo.py
"""

from repro.oracles import (
    EventuallyPerfectDetector,
    OmegaElector,
    PerfectDetector,
    StrongDetector,
    TrustingDetector,
)
from repro.oracles.properties import suspicion_series
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule

PIDS = ["p0", "p1", "p2"]
CRASH_AT = 600.0


def history(trace, owner, target, detector) -> str:
    series = suspicion_series(trace, owner, target, detector=detector)
    return " -> ".join(
        f"{'S' if s else 'T'}@{t:.0f}" for t, s in series
    ) or "(no output)"


def main() -> None:
    schedule = CrashSchedule.single("p2", CRASH_AT)
    engine = Engine(
        SimConfig(seed=11, max_time=1500.0),
        delay_model=PartialSynchronyDelays(gst=250.0, delta=1.5,
                                           pre_gst_max=60.0),
        crash_schedule=schedule,
    )
    for pid in PIDS:
        engine.add_process(pid)

    # One module of each class at p0, all monitoring p1 (correct) and p2.
    peers = ["p1", "p2"]
    proc = engine.process("p0")
    hb = EventuallyPerfectDetector("evP", peers, heartbeat_period=6,
                                   initial_timeout=8)
    proc.add_component(hb)
    proc.add_component(PerfectDetector("P", peers, schedule))
    proc.add_component(TrustingDetector("T", peers, schedule,
                                        registration_delay=40.0))
    proc.add_component(StrongDetector("S", peers, schedule, anchor="p1",
                                      noise_until=200.0, noise_prob=0.02))
    proc.add_component(OmegaElector("omega", hb))
    # The heartbeat detector needs senders on the peers.
    for pid in peers:
        engine.process(pid).add_component(
            EventuallyPerfectDetector("evP", [q for q in PIDS if q != pid],
                                      heartbeat_period=6, initial_timeout=8)
        )
    engine.run()
    trace = engine.trace

    print(f"one crash: p2 at t={CRASH_AT:.0f}; S=suspected, T=trusted\n")
    for detector in ("evP", "P", "T", "S"):
        print(f"{detector:>4} about p1 (correct): "
              f"{history(trace, 'p0', 'p1', detector)}")
        print(f"{detector:>4} about p2 (crashes): "
              f"{history(trace, 'p0', 'p2', detector)}")
        print()
    leaders = trace.series("leader", "leader", pid="p0")
    print("Ω leader estimates at p0:",
          " -> ".join(f"{v}@{t:.0f}" for t, v in leaders))


if __name__ == "__main__":
    main()
