"""Quickstart: extract ◇P from black-box dining and watch it converge.

Builds a 3-process asynchronous system, runs the paper's witness/subject
reduction over a black-box WF-◇WX dining solution for every ordered pair,
crashes one process mid-run, and prints each survivor's extracted suspect
list before the crash, right after it, and at the end of the run.

Run:  python examples/quickstart.py
"""

from repro.core import build_full_extraction
from repro.experiments.common import build_system, wf_box
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.faults import CrashSchedule

PIDS = ["alice", "bob", "carol"]
CRASH_AT = 900.0


def main() -> None:
    system = build_system(
        PIDS, seed=42, gst=150.0, max_time=2500.0,
        crash=CrashSchedule.single("carol", CRASH_AT),
    )

    # The reduction is black-box: it only sees the dining client API.
    detectors, _ = build_full_extraction(system.engine, PIDS, wf_box(system))

    def show(moment: str) -> None:
        print(f"t={system.engine.now:7.1f}  ({moment})")
        for pid in PIDS:
            if system.engine.process(pid).crashed:
                print(f"    {pid:>6}: <crashed>")
            else:
                suspects = sorted(detectors[pid].suspects()) or ["nobody"]
                print(f"    {pid:>6} suspects: {', '.join(suspects)}")

    system.engine.run(until=CRASH_AT - 50.0)
    show("before the crash")
    system.engine.run(until=CRASH_AT + 120.0)
    show("shortly after carol crashed")
    system.engine.run()
    show("end of run")

    # The formal verdicts, straight from the trace.
    trace = system.engine.trace
    comp = check_strong_completeness(trace, PIDS, PIDS, system.schedule,
                                     detector="extracted")
    acc = check_eventual_strong_accuracy(trace, PIDS, PIDS, system.schedule,
                                         detector="extracted")
    print()
    print(comp.format_table())
    print(acc.format_table())


if __name__ == "__main__":
    main()
