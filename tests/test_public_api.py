"""The documented public surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_from_docstring():
    """The example in the package docstring must actually run."""
    from repro.core import build_full_extraction
    from repro.experiments.common import build_system, wf_box

    system = build_system(["p", "q"], seed=1, max_time=300.0)
    detectors, _ = build_full_extraction(system.engine, ["p", "q"],
                                         wf_box(system))
    system.engine.run()
    assert detectors["p"].suspects() <= {"q"}


def test_exception_hierarchy():
    assert issubclass(repro.SimulationError, repro.ReproError)
    assert issubclass(repro.InvariantViolation, repro.ReproError)
    assert issubclass(repro.SpecificationViolation, repro.ReproError)
    assert issubclass(repro.ConfigurationError, repro.ReproError)
