"""The documented public surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_from_docstring():
    """The front-door example in the package docstring must actually run."""
    spec = repro.RunSpec(name="demo", graph="ring:5", seed=7,
                         crashes={"p1": 400.0}, max_time=1200.0)
    result = repro.run(spec)
    assert result.ok
    summary = result.summary()
    assert summary["checked"] and summary["seed"] == 7

    results = repro.sweep(spec, runs=3)
    assert sum(r.ok for r in results) == len(results) == 3


def test_deep_dive_snippet_from_docstring():
    """The reduction-machinery example in the package docstring."""
    from repro.core import build_full_extraction
    from repro.experiments.common import build_system, wf_box

    system = build_system(["p", "q"], seed=1, max_time=300.0)
    detectors, _ = build_full_extraction(system.engine, ["p", "q"],
                                         wf_box(system))
    system.engine.run()
    assert detectors["p"].suspects() <= {"q"}


def test_run_accepts_a_spec_dict():
    result = repro.run({"graph": "ring:3", "seed": 11, "max_time": 400.0})
    assert result.checked and result.seed == 11


def test_run_rejects_non_spec_input():
    import pytest

    with pytest.raises(repro.ConfigurationError):
        repro.run(42)


def test_run_check_override_skips_judging():
    spec = repro.RunSpec(graph="ring:3", seed=5, max_time=400.0)
    result = repro.run(spec, check=False)
    assert not result.checked and result.wait_freedom is None
    assert result.metrics is not None and result.metrics.messages_sent > 0


def test_sweep_seeds_are_deterministic_fanout():
    spec = repro.RunSpec(graph="ring:3", seed=21, max_time=300.0)
    results = repro.sweep(spec, runs=4)
    assert [r.seed for r in results] == list(repro.fanout_seeds(21, 4))
    again = repro.sweep(spec, runs=4)
    assert [r.summary() for r in results] == [r.summary() for r in again]


def test_sweep_explicit_seeds_and_parallel_equivalence():
    spec = repro.RunSpec(graph="ring:3", seed=0, max_time=300.0)
    serial = repro.sweep(spec, seeds=[3, 9])
    parallel = repro.sweep(spec, seeds=[3, 9], workers=2)
    assert [r.seed for r in serial] == [3, 9]
    assert [r.summary() for r in serial] == [r.summary() for r in parallel]


def test_sweep_rejects_zero_runs():
    import pytest

    with pytest.raises(repro.ConfigurationError):
        repro.sweep(repro.RunSpec(), runs=0)


def test_exception_hierarchy():
    assert issubclass(repro.SimulationError, repro.ReproError)
    assert issubclass(repro.InvariantViolation, repro.ReproError)
    assert issubclass(repro.SpecificationViolation, repro.ReproError)
    assert issubclass(repro.ConfigurationError, repro.ReproError)
