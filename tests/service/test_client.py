"""Client-side behavior that doesn't need a live service."""

import socket

import pytest

from repro.errors import ReproError
from repro.service.client import Client, ServiceError, _error_text


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_unreachable_service_raises_service_error():
    client = Client("127.0.0.1", free_port(), timeout=2.0)
    with pytest.raises(ServiceError, match="unreachable"):
        client.health()


def test_service_error_is_a_repro_error_with_status():
    err = ServiceError("boom", status=503)
    assert isinstance(err, ReproError)
    assert err.status == 503
    assert ServiceError("transport").status is None


def test_error_text_prefers_the_json_error_field():
    assert _error_text(b'{"error": "queue full"}') == "queue full"
    assert _error_text(b"plain text") == "plain text"
    assert _error_text(b"\xff\xfe") != ""  # degrades, never raises
