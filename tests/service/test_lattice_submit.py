"""Detector-addressable specs through the campaign service.

The service needed zero code for the detector registry: a submitted
spec's ``detector`` / ``detector_params`` fields ride through the same
``RunSpec.from_dict`` validation and ``spec_hash`` content addressing as
every other field.  These tests pin that contract — non-default
detectors execute, cache independently per detector, and bad names are
rejected at submission time with the registry's error message.
"""

import pytest

import repro
from repro.service import Client, EmbeddedService, ServiceConfig, ServiceError
from repro.service.encoding import payload_bytes, result_payload

BASE = {"graph": "ring:3", "seed": 23, "max_time": 200.0}


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(store_path=str(tmp_path / "store.jsonl"), port=0)
    embedded = EmbeddedService(config)
    host, port = embedded.start()
    yield Client(host, port), embedded
    assert embedded.shutdown() is True, "service must drain clean"


def test_detector_spec_executes_byte_identically(service):
    client, _ = service
    spec = dict(BASE, detector="trusting")
    sub = client.submit_run(spec)
    assert sub["cached"] is False
    final = client.wait(sub["job"], timeout=120)
    assert final["state"] == "done" and final["done"] == 1

    served = client.result_bytes(sub["spec_key"])
    local = payload_bytes(result_payload(repro.run(spec)))
    assert served == local


def test_detectors_cache_independently(service):
    # Same scenario, different detectors: distinct spec keys, no false
    # cache hit between them — and the default-detector submission keys
    # identically to a spec that never mentions the field.
    client, _ = service
    keys = {}
    for detector in ("eventually_perfect", "perfect"):
        sub = client.submit_run(dict(BASE, detector=detector))
        assert sub["cached"] is False
        client.wait(sub["job"], timeout=120)
        keys[detector] = sub["spec_key"]
    assert keys["eventually_perfect"] != keys["perfect"]

    legacy = client.submit_run(dict(BASE))
    assert legacy["cached"] is True
    assert legacy["spec_key"] == keys["eventually_perfect"]


def test_unknown_detector_rejected_at_submission(service):
    client, _ = service
    with pytest.raises(ServiceError) as exc:
        client.submit_run(dict(BASE, detector="psychic"))
    assert "registered detectors" in str(exc.value)
