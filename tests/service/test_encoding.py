"""The service's canonical result encoding (repro.service.encoding).

The load-bearing invariant: the payload the service caches and serves
over HTTP encodes to exactly the bytes a local ``repro.run()`` of the
same spec would, so a cache hit is indistinguishable from a fresh run.
"""

import json

import repro
from repro.runtime.spec import RunSpec
from repro.runtime.store import canonical_spec, spec_hash
from repro.service.encoding import (
    RESULT_SCHEMA,
    execute_spec_payload,
    payload_bytes,
    result_payload,
)

SPEC = {"graph": "ring:3", "seed": 17, "max_time": 200.0}


def test_result_payload_envelope():
    result = repro.run(SPEC)
    payload = result_payload(result)
    assert payload["schema"] == RESULT_SCHEMA
    assert payload["spec_key"] == spec_hash(RunSpec.from_dict(dict(SPEC)))
    assert payload["record"]["summary"]["events_processed"] > 0


def test_payload_bytes_deterministic_and_sorted():
    payload = {"b": 2, "a": {"z": 1, "y": [3, 2]}, "schema": RESULT_SCHEMA}
    data = payload_bytes(payload)
    assert data == payload_bytes(dict(reversed(list(payload.items()))))
    assert json.loads(data) == payload
    assert data.index(b'"a"') < data.index(b'"b"')


def test_execute_spec_payload_matches_local_run():
    """Worker task output is byte-identical to repro.run() of the same
    spec — the cache-soundness acceptance check, no HTTP involved."""
    via_worker = execute_spec_payload(canonical_spec(
        RunSpec.from_dict(dict(SPEC))))
    via_api = result_payload(repro.run(SPEC))
    assert payload_bytes(via_worker) == payload_bytes(via_api)


def test_execute_spec_payload_pure():
    a = execute_spec_payload(SPEC)
    b = execute_spec_payload(SPEC)
    assert payload_bytes(a) == payload_bytes(b)
