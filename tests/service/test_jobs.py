"""Job lifecycle and journal recovery (repro.service.jobs / .journal)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.jobs import (
    DONE,
    FAILED,
    JOB_SCHEMA,
    QUEUED,
    RUNNING,
    TERMINAL,
    Job,
    next_job_id,
)
from repro.service.journal import JobJournal


def sample(ok=True, events=10):
    return {"record": {"summary": {"ok": ok, "events_processed": events,
                                   "convergence_time": 1.0,
                                   "wrongful_suspicions": 0}}}


def make_job(n=2, job_id="j1", kind="campaign"):
    specs = [{"graph": "ring:3", "seed": s} for s in range(n)]
    keys = [f"k{s}" for s in range(n)]
    return Job(job_id, kind, specs, keys, wall_clock=lambda: 1000.0)


# -- lifecycle ----------------------------------------------------------------


def test_job_walks_queued_running_done():
    job = make_job()
    assert job.state == QUEUED and not job.terminal
    job.mark_running()
    assert job.state == RUNNING and job.started_wall == 1000.0
    job.mark_done()
    assert job.state == DONE and job.terminal
    assert job.finished_wall == 1000.0


def test_job_failure_keeps_the_error():
    job = make_job()
    job.mark_running()
    job.mark_failed("ExecutionError: boom")
    assert job.state == FAILED and job.terminal
    assert job.snapshot()["error"] == "ExecutionError: boom"
    assert set(TERMINAL) == {DONE, FAILED}


def test_record_result_appends_progress_heartbeats():
    job = make_job(n=3)
    job.record_result(0, sample(events=10), cached=False)
    job.record_result(1, sample(ok=False, events=5), cached=True)
    assert len(job.heartbeats) == 2
    last = job.heartbeats[-1]
    assert last["schema"] == "repro.progress.v1"
    assert last["done"] == 2 and last["total"] == 3
    assert last["cached"] == 1 and last["failed"] == 1
    assert last["events"] == 15
    assert json.dumps(last)  # heartbeats must be JSON-serializable


def test_snapshot_is_a_json_document():
    job = make_job(n=2, kind="run")
    job.record_result(0, sample(), cached=True)
    snap = job.snapshot()
    assert snap["schema"] == JOB_SCHEMA
    assert snap["id"] == "j1" and snap["kind"] == "run"
    assert snap["total"] == 2 and snap["done"] == 1 and snap["cached"] == 1
    assert snap["spec_keys"] == ["k0", "k1"]
    assert snap["progress"]["done"] == 1
    json.dumps(snap)


def test_change_notification_replaces_the_event():
    job = make_job()
    first = job.changed()
    job.record_result(0, sample(), cached=False)
    assert first.is_set()
    assert job.changed() is not first and not job.changed().is_set()


def test_spec_key_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Job("j1", "run", [{"seed": 1}], ["k1", "k2"])


def test_next_job_id_skips_past_existing():
    assert next_job_id([]) == "j1"
    assert next_job_id(["j1", "j2"]) == "j3"
    assert next_job_id(["j9", "j10", "weird", "jx"]) == "j11"


# -- journal ------------------------------------------------------------------


def journal_with(tmp_path, *jobs_and_states):
    journal = JobJournal(tmp_path / "jobs.jsonl")
    for job, states in jobs_and_states:
        journal.record_submit(job)
        for state in states:
            job.state = state
            journal.record_state(job)
    return journal


def test_replay_empty_when_no_file(tmp_path):
    assert JobJournal(tmp_path / "missing.jsonl").replay() == []


def test_replay_reconstructs_submission_and_final_state(tmp_path):
    done = make_job(job_id="j1")
    stuck = make_job(job_id="j2")
    journal = journal_with(tmp_path,
                           (done, [RUNNING, DONE]),
                           (stuck, [RUNNING]))
    recovered = journal.replay()
    assert [r.job_id for r in recovered] == ["j1", "j2"]
    by_id = {r.job_id: r for r in recovered}
    assert by_id["j1"].state == DONE and not by_id["j1"].incomplete
    assert by_id["j2"].state == RUNNING and by_id["j2"].incomplete
    assert by_id["j2"].specs == stuck.specs
    assert by_id["j2"].spec_keys == stuck.spec_keys


def test_replay_tolerates_torn_final_line(tmp_path):
    journal = journal_with(tmp_path, (make_job(job_id="j1"), [DONE]))
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": "repro.job.v1", "event": "sub')  # torn append
    recovered = journal.replay()
    assert len(recovered) == 1 and recovered[0].state == DONE


def test_replay_rejects_corrupt_interior_line(tmp_path):
    journal = journal_with(tmp_path, (make_job(job_id="j1"), [DONE]))
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write("garbage\n")
        fh.write(json.dumps({"schema": JOB_SCHEMA, "event": "state",
                             "id": "j1", "state": DONE}) + "\n")
    with pytest.raises(ConfigurationError, match="corrupt journal line"):
        journal.replay()


def test_journal_rejects_directory_path(tmp_path):
    with pytest.raises(ConfigurationError):
        JobJournal(tmp_path)
