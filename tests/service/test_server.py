"""End-to-end campaign service acceptance (repro.service.server).

Each test boots an :class:`EmbeddedService` on an ephemeral port and
drives it through the real HTTP surface with :class:`Client` — the same
wire path ``repro serve`` / ``repro submit`` use.  The two acceptance
invariants from the service's contract are pinned here:

* the bytes ``GET /v1/runs/<spec_key>`` serves are identical to what a
  local ``repro.run()`` of the same spec encodes to, and
* re-submitting an identical spec is a cache hit — answered from the
  store, hit counter incremented, **no job scheduled**.
"""

import pytest

import repro
from repro.runtime.spec import RunSpec
from repro.runtime.store import canonical_spec, spec_hash
from repro.service import (
    Client,
    EmbeddedService,
    ServiceConfig,
    ServiceError,
)
from repro.service.encoding import payload_bytes, result_payload
from repro.service.jobs import Job
from repro.service.journal import JobJournal

SPEC = {"graph": "ring:3", "seed": 23, "max_time": 200.0}


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(store_path=str(tmp_path / "store.jsonl"), port=0)
    embedded = EmbeddedService(config)
    host, port = embedded.start()
    yield Client(host, port), embedded
    assert embedded.shutdown() is True, "service must drain clean"


def test_submit_wait_fetch_byte_identical(service):
    client, _ = service
    sub = client.submit_run(SPEC)
    assert sub["cached"] is False and sub["job"] == "j1"
    final = client.wait(sub["job"], timeout=120)
    assert final["state"] == "done"
    assert final["done"] == 1 and final["cached"] == 0

    served = client.result_bytes(sub["spec_key"])
    local = payload_bytes(result_payload(repro.run(SPEC)))
    assert served == local  # the acceptance invariant, byte for byte


def test_resubmit_is_cache_hit_without_a_job(service):
    client, embedded = service
    first = client.submit_run(SPEC)
    client.wait(first["job"], timeout=120)
    jobs_before = len(client.jobs())
    hits_before = _metric(client, "repro_store_hits")

    again = client.submit_run(SPEC)
    assert again["cached"] is True and again["job"] is None
    assert again["spec_key"] == first["spec_key"]
    assert again["result"]["schema"] == "repro.result.v1"
    assert len(client.jobs()) == jobs_before  # no job scheduled
    assert _metric(client, "repro_store_hits") == hits_before + 1


def test_campaign_fanout_then_full_cache_replay(service):
    client, _ = service
    sub = client.submit_campaign(SPEC, runs=3)
    assert sub["total"] == 3 and sub["cached_hint"] == 0
    assert len(sub["spec_keys"]) == len(set(sub["spec_keys"])) == 3
    final = client.wait(sub["job"], timeout=240)
    assert final["state"] == "done"
    assert final["done"] == 3 and final["cached"] == 0

    replay = client.submit_campaign(SPEC, runs=3)
    assert replay["cached_hint"] == 3
    assert replay["spec_keys"] == sub["spec_keys"]
    refinal = client.wait(replay["job"], timeout=60)
    assert refinal["done"] == 3 and refinal["cached"] == 3


def test_explicit_seeds_campaign(service):
    client, _ = service
    sub = client.submit_campaign(SPEC, seeds=[5, 6])
    final = client.wait(sub["job"], timeout=240)
    assert final["state"] == "done" and final["total"] == 2
    expected = [spec_hash(RunSpec.from_dict(dict(SPEC, seed=s)))
                for s in (5, 6)]
    assert sub["spec_keys"] == expected


def test_events_stream_heartbeats_then_end(service):
    client, _ = service
    sub = client.submit_campaign(SPEC, runs=2)
    events = list(client.events(sub["job"], timeout=240))
    assert events[-1].get("event") == "end"
    assert events[-1]["state"] == "done"
    beats = [e for e in events if e.get("schema") == "repro.progress.v1"]
    assert len(beats) == 2
    assert beats[-1]["done"] == 2 and beats[-1]["total"] == 2


def test_metrics_surface(service):
    client, _ = service
    sub = client.submit_campaign(SPEC, runs=2)
    client.wait(sub["job"], timeout=240)
    text = client.metrics()
    assert 'repro_service_jobs{state="done"} 2' not in text  # one job only
    assert 'repro_service_jobs{state="done"} 1' in text
    assert "repro_service_queue_depth 0" in text
    assert "repro_service_cache_hit_ratio" in text
    assert "repro_service_events_per_sec" in text
    assert _metric(client, "repro_service_runs_executed") == 2
    assert _metric(client, "repro_store_puts") == 2


def test_bad_requests(service):
    client, _ = service
    with pytest.raises(ServiceError) as err:
        client.submit_run({"graph": "ring:3", "max_time": -1.0})
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.submit_campaign(SPEC, runs=0)
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.result("deadbeef" * 8)
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.job("j999")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client._request("GET", "/v1/nothing-here")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client._request("DELETE", "/v1/jobs")
    assert err.value.status == 405
    with pytest.raises(ServiceError) as err:
        client._request("POST", "/v1/runs", body={"spec": []})
    assert err.value.status == 400
    assert client.health()["ok"] is True


def test_draining_service_refuses_submissions(service):
    import threading

    client, embedded = service

    def flip(value, flipped=None):
        embedded.service.draining = value
        if flipped is not None:
            flipped.set()

    flipped = threading.Event()
    embedded._loop.call_soon_threadsafe(flip, True, flipped)
    assert flipped.wait(5)
    with pytest.raises(ServiceError) as err:
        client.submit_run(SPEC)
    assert err.value.status == 503 and "draining" in str(err.value)
    # undo so the fixture's drain assertion still holds
    flipped = threading.Event()
    embedded._loop.call_soon_threadsafe(flip, False, flipped)
    assert flipped.wait(5)


def test_restart_reenqueues_incomplete_journaled_jobs(tmp_path):
    """A job that was submitted but never finished (previous process
    died) is re-enqueued on start with its original id and completed —
    served from the store where the first life already checkpointed."""
    store_path = tmp_path / "store.jsonl"
    config = ServiceConfig(store_path=str(store_path), port=0)

    spec = RunSpec.from_dict(dict(SPEC))
    job = Job("j7", "run", [canonical_spec(spec)], [spec_hash(spec)])
    JobJournal(config.journal).record_submit(job)  # no terminal state

    embedded = EmbeddedService(config)
    host, port = embedded.start()
    try:
        client = Client(host, port)
        final = client.wait("j7", timeout=120)
        assert final["state"] == "done" and final["done"] == 1
        assert "repro_service_jobs_recovered 1" in client.metrics()
    finally:
        assert embedded.shutdown() is True

    # Second restart: j7 is terminal in the journal now — history, not work.
    embedded = EmbeddedService(config)
    host, port = embedded.start()
    try:
        client = Client(host, port)
        snap = client.job("j7")
        assert snap["state"] == "done" and snap["done"] == 1
        # and new ids continue past recovered ones
        sub = client.submit_campaign(SPEC, runs=2)
        assert sub["job"] == "j8"
        client.wait(sub["job"], timeout=60)
    finally:
        assert embedded.shutdown() is True


def _metric(client: Client, name: str) -> float:
    """One /metrics sample value; absent means the counter was never
    incremented (the registry creates them lazily), which reads as 0."""
    for line in client.metrics().splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    return 0.0
