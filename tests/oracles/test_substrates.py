"""Tests for the P / T / S substrate oracles and the Ω elector."""

import pytest

from repro.errors import ConfigurationError
from repro.oracles import (
    EventuallyPerfectDetector,
    OmegaElector,
    PerfectDetector,
    StrongDetector,
    TrustingDetector,
    attach_detectors,
)
from repro.oracles.properties import (
    check_perpetual_strong_accuracy,
    check_perpetual_weak_accuracy,
    check_strong_completeness,
    check_trusting_accuracy,
)
from repro.oracles.strong import default_anchor
from repro.sim.faults import CrashSchedule
from tests.conftest import make_engine

PIDS = ["p0", "p1", "p2"]


def run_with(factory, crash=None, max_time=600.0, seed=2):
    sched = crash or CrashSchedule.none()
    eng = make_engine(seed=seed, max_time=max_time, crash=sched)
    for pid in PIDS:
        eng.add_process(pid)
    mods = attach_detectors(eng, PIDS, lambda o, p: factory(o, p, sched))
    eng.run()
    return eng, sched, mods


class TestPerfect:
    def test_never_suspects_live(self):
        eng, sched, _ = run_with(
            lambda o, p, s: PerfectDetector("fd", p, s, latency=5.0),
            crash=CrashSchedule.single("p2", 300.0),
        )
        rep = check_perpetual_strong_accuracy(eng.trace, PIDS, PIDS, sched,
                                              detector="fd")
        assert rep.ok

    def test_detects_crash_with_latency(self):
        eng, sched, mods = run_with(
            lambda o, p, s: PerfectDetector("fd", p, s, latency=5.0),
            crash=CrashSchedule.single("p2", 300.0),
        )
        rep = check_strong_completeness(eng.trace, PIDS, PIDS, sched,
                                        detector="fd")
        assert rep.ok
        assert rep.convergence >= 305.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            PerfectDetector("fd", ["q"], CrashSchedule.none(), latency=-1.0)


class TestTrusting:
    def test_trusting_accuracy_holds(self):
        eng, sched, _ = run_with(
            lambda o, p, s: TrustingDetector("fd", p, s,
                                             registration_delay=20.0),
            crash=CrashSchedule.single("p2", 300.0),
        )
        rep = check_trusting_accuracy(eng.trace, PIDS, PIDS, sched,
                                      detector="fd")
        assert rep.ok

    def test_starts_suspecting_everyone(self):
        eng = make_engine()
        proc = eng.add_process("p")
        mod = proc.add_component(
            TrustingDetector("fd", ["q"], CrashSchedule.none())
        )
        assert mod.suspected("q")

    def test_never_trusts_early_crasher(self):
        eng, sched, mods = run_with(
            lambda o, p, s: TrustingDetector("fd", p, s,
                                             registration_delay=50.0),
            crash=CrashSchedule.single("p2", 10.0),  # dies before registering
        )
        for owner in ("p0", "p1"):
            assert not mods[owner].has_trusted("p2")
            assert mods[owner].suspected("p2")

    def test_completeness(self):
        eng, sched, _ = run_with(
            lambda o, p, s: TrustingDetector("fd", p, s,
                                             registration_delay=20.0),
            crash=CrashSchedule.single("p2", 300.0),
        )
        rep = check_strong_completeness(eng.trace, PIDS, PIDS, sched,
                                        detector="fd")
        assert rep.ok


class TestStrong:
    def factory(self, o, p, s):
        return StrongDetector("fd", p, s, anchor="p0", latency=5.0,
                              noise_until=100.0, noise_prob=0.2)

    def test_anchor_never_suspected(self):
        eng, sched, _ = run_with(self.factory,
                                 crash=CrashSchedule.single("p2", 200.0))
        ok, witness = check_perpetual_weak_accuracy(eng.trace, PIDS, PIDS,
                                                    sched, detector="fd")
        assert ok and witness == "p0"

    def test_noise_makes_wrongful_suspicions(self):
        eng, sched, _ = run_with(self.factory)
        from repro.oracles.properties import false_positive_count

        noisy = sum(
            false_positive_count(eng.trace, o, t, sched, detector="fd")
            for o in PIDS for t in PIDS if o != t
        )
        assert noisy > 0

    def test_completeness(self):
        eng, sched, _ = run_with(self.factory,
                                 crash=CrashSchedule.single("p2", 200.0))
        rep = check_strong_completeness(eng.trace, PIDS, PIDS, sched,
                                        detector="fd")
        assert rep.ok

    def test_faulty_anchor_rejected(self):
        sched = CrashSchedule.single("p0", 10.0)
        with pytest.raises(ConfigurationError):
            StrongDetector("fd", ["p0", "p2"], sched, anchor="p0")

    def test_default_anchor_picks_first_correct(self):
        sched = CrashSchedule.single("p0", 10.0)
        assert default_anchor(PIDS, sched) == "p1"

    def test_default_anchor_requires_correct_process(self):
        sched = CrashSchedule({p: 1.0 for p in PIDS})
        with pytest.raises(ConfigurationError):
            default_anchor(PIDS, sched)


class TestOmega:
    def test_leader_converges_to_min_correct(self):
        from repro.sim import Engine, PartialSynchronyDelays, SimConfig

        sched = CrashSchedule.single("p0", 300.0)
        eng = Engine(
            SimConfig(seed=3, max_time=1200.0),
            delay_model=PartialSynchronyDelays(gst=100.0, delta=1.5),
            crash_schedule=sched,
        )
        for pid in PIDS:
            eng.add_process(pid)
        mods = attach_detectors(
            eng, PIDS,
            lambda o, p: EventuallyPerfectDetector("fd", p,
                                                   heartbeat_period=4,
                                                   initial_timeout=10),
        )
        electors = {}
        for pid in PIDS:
            electors[pid] = eng.process(pid).add_component(
                OmegaElector("omega", mods[pid])
            )
        eng.run()
        from repro.consensus.leader import check_leader_stability

        ok, leader, stabilized = check_leader_stability(eng.trace, PIDS, sched)
        assert ok and leader == "p1"
        assert stabilized is not None and stabilized >= 300.0
