"""Simulation tests for the heartbeat/adaptive-timeout ◇P."""

import pytest

from repro.errors import ConfigurationError
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule


def run_system(seed=1, gst=150.0, max_time=1200.0, crash=None, n=3,
               initial_timeout=10, pre_gst_max=40.0):
    pids = [f"p{i}" for i in range(n)]
    sched = crash or CrashSchedule.none()
    eng = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=PartialSynchronyDelays(gst=gst, delta=1.5,
                                           pre_gst_max=pre_gst_max),
        crash_schedule=sched,
    )
    for pid in pids:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, pids,
        lambda o, peers: EventuallyPerfectDetector(
            "fd", peers, heartbeat_period=4, initial_timeout=initial_timeout),
    )
    eng.run()
    return eng, pids, sched, mods


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        EventuallyPerfectDetector("fd", ["q"], heartbeat_period=0)
    with pytest.raises(ConfigurationError):
        EventuallyPerfectDetector("fd", ["q"], initial_timeout=0)
    with pytest.raises(ConfigurationError):
        EventuallyPerfectDetector("fd", ["q"], backoff=1.0)


def test_strong_completeness_after_crash():
    eng, pids, sched, _ = run_system(crash=CrashSchedule.single("p2", 400.0))
    rep = check_strong_completeness(eng.trace, pids, pids, sched,
                                    detector="fd")
    assert rep.ok
    assert rep.convergence is not None and rep.convergence >= 400.0


def test_eventual_strong_accuracy_failure_free():
    eng, pids, sched, _ = run_system()
    rep = check_eventual_strong_accuracy(eng.trace, pids, pids, sched,
                                         detector="fd")
    assert rep.ok


def test_mistakes_occur_pre_gst_and_stop(seed=6):
    eng, pids, sched, mods = run_system(seed=seed, gst=500.0, max_time=2000.0,
                                        initial_timeout=6, pre_gst_max=80.0)
    rep = check_eventual_strong_accuracy(eng.trace, pids, pids, sched,
                                         detector="fd")
    assert rep.ok                      # converged despite mistakes...
    total = sum(m.mistakes for m in mods.values())
    assert total > 0                   # ...which genuinely happened
    assert rep.convergence is not None


def test_timeout_backs_off_on_mistakes():
    _, _, _, mods = run_system(seed=6, gst=500.0, max_time=2000.0,
                               initial_timeout=6, pre_gst_max=80.0)
    grew = any(
        m.timeout_for(q) > 6 for m in mods.values() for q in m.monitored
    )
    assert grew


def test_heartbeats_are_sent():
    eng, *_ = run_system(max_time=300.0)
    assert eng.network.sent_by_kind.get("hb", 0) > 50


def test_unmonitored_heartbeat_ignored():
    from tests.conftest import make_engine

    eng = make_engine()
    proc = eng.add_process("p")
    mod = proc.add_component(EventuallyPerfectDetector("fd", ["q"]))
    from repro.types import Message

    proc.deliver(Message("stranger", "p", "fd", "hb"))
    for _ in range(4):
        proc.step()
    assert mod.suspects() == frozenset()   # no crash either way


def test_no_self_monitoring():
    _, pids, _, mods = run_system(max_time=100.0)
    for pid in pids:
        assert pid not in mods[pid].monitored
