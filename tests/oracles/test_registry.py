"""The detector registry: specs, errors, legacy mapping, and end-to-end
equivalence of every registered detector on a real run."""

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.oracles.registry import (
    BOX_LABEL,
    DEFAULT_DETECTOR,
    REGISTRY,
    DetectorSpec,
    detector_kind_help,
    resolve_detector,
)
from repro.runtime.builder import execute
from repro.runtime.spec import RunSpec

EXPECTED_NAMES = {"eventually_perfect", "perfect", "trusting", "strong",
                  "eventually_strong", "omega", "flawed_cm"}


def _digest(result) -> str:
    """sha256 over the retained trace, uid fields excluded (the golden
    -trace digest convention)."""
    h = hashlib.sha256()
    for rec in result.trace:
        row = (repr(rec.time), rec.kind, rec.pid,
               tuple(sorted((k, repr(v)) for k, v in rec.data.items()
                            if k != "uid")))
        h.update(repr(row).encode("utf-8"))
    return h.hexdigest()


class TestRegistryShape:
    def test_all_expected_detectors_registered(self):
        assert set(REGISTRY) == EXPECTED_NAMES

    def test_default_is_registered(self):
        assert DEFAULT_DETECTOR in REGISTRY

    def test_entries_are_self_consistent(self):
        for name, entry in REGISTRY.items():
            assert entry.name == name
            assert entry.summary and entry.example
            assert entry.label
            assert entry.assumptions.label == entry.label
            assert callable(entry.install)

    def test_help_mentions_every_detector(self):
        text = detector_kind_help()
        for name in EXPECTED_NAMES:
            assert name in text


class TestDetectorSpec:
    def test_unknown_name_enumerates_registry(self):
        with pytest.raises(ConfigurationError, match="registered detectors"):
            resolve_detector("psychic")
        with pytest.raises(ConfigurationError, match="eventually_perfect"):
            DetectorSpec("psychic")

    def test_unknown_param_names_the_accepted_ones(self):
        with pytest.raises(ConfigurationError, match="initial_timeout"):
            DetectorSpec("eventually_perfect", {"timeout": 3})

    def test_merged_params_overlay_defaults(self):
        spec = DetectorSpec("eventually_perfect", {"initial_timeout": 20})
        merged = spec.merged_params()
        assert merged["initial_timeout"] == 20
        assert merged["heartbeat_period"] == 4  # default preserved

    def test_from_legacy_oracle(self):
        hb = DetectorSpec.from_legacy_oracle("hb")
        assert hb.name == DEFAULT_DETECTOR
        assert hb.merged_params()["initial_timeout"] == 10
        assert DetectorSpec.from_legacy_oracle("perfect").name == "perfect"
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            DetectorSpec.from_legacy_oracle("psychic")


class TestRunSpecIntegration:
    def test_runspec_validates_detector_eagerly(self):
        with pytest.raises(ConfigurationError, match="registered detectors"):
            RunSpec(detector="psychic")
        with pytest.raises(ConfigurationError, match="accepted"):
            RunSpec(detector_params={"bogus": 1})

    def test_legacy_oracle_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="detector"):
            RunSpec(oracle="perfect")

    def test_oracle_conflicts_with_detector(self):
        with pytest.raises(ConfigurationError, match="deprecated"):
            RunSpec(oracle="perfect", detector="trusting")

    def test_legacy_oracle_runs_identically_to_registry_name(self):
        # oracle="perfect" and detector="perfect" must be the same run,
        # bit for bit (trace digests compare full record streams).
        with pytest.warns(DeprecationWarning):
            legacy = RunSpec(graph="ring:3", seed=5, max_time=300.0,
                             crashes={"p1": 120.0}, oracle="perfect")
        modern = RunSpec(graph="ring:3", seed=5, max_time=300.0,
                         crashes={"p1": 120.0}, detector="perfect")
        a, b = execute(legacy), execute(modern)
        assert _digest(a) == _digest(b)
        assert a.summary()["wait_free"] == b.summary()["wait_free"]


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_every_detector_executes_a_real_run(name):
    result = execute(RunSpec(graph="ring:4", seed=3, max_time=400.0,
                             crashes={"p1": 150.0}, detector=name))
    assert result.checked
    assert result.wait_freedom.ok
    # Completeness holds for every registered detector: the crashed
    # process is eventually suspected by everyone live.
    assert result.oracle_completeness_ok
    entry = REGISTRY[name]
    assert entry.label == (BOX_LABEL if name not in ("omega", "flawed_cm")
                           else entry.label)
    if name == "flawed_cm":
        # The corrigendum's point: the [8] extraction claims ◇P accuracy
        # and fails it over the adversarial-but-legal deferred box.
        assert not result.oracle_accuracy_ok
    else:
        assert result.oracle_accuracy_ok


def test_detector_rng_is_order_independent():
    # Substrate noise must replay per owner regardless of worker count or
    # construction order: two identical specs produce identical digests.
    spec = RunSpec(graph="ring:4", seed=11, max_time=300.0,
                   detector="eventually_strong")
    assert _digest(execute(spec)) == _digest(execute(spec))
