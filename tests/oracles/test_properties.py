"""Unit tests for the oracle property checkers, on synthetic traces."""

from hypothesis import given
from hypothesis import strategies as st

from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_perpetual_strong_accuracy,
    check_perpetual_weak_accuracy,
    check_strong_completeness,
    check_trusting_accuracy,
    false_positive_count,
    suspicion_series,
)
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace


def synth_trace(rows):
    """rows: (time, owner, target, suspected) — builds a suspect-only trace."""
    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    for time, owner, target, suspected in rows:
        clock["now"] = time
        t.record("suspect", pid=owner, target=target, suspected=suspected,
                 detector="fd")
    return t


def test_suspicion_series_extraction():
    t = synth_trace([(1.0, "p", "q", True), (2.0, "p", "r", False),
                     (3.0, "p", "q", False)])
    assert suspicion_series(t, "p", "q") == [(1.0, True), (3.0, False)]


def test_suspicion_series_filters_detector():
    t = synth_trace([(1.0, "p", "q", True)])
    assert suspicion_series(t, "p", "q", detector="other") == []


class TestCompleteness:
    def test_ok_when_permanently_suspected(self):
        t = synth_trace([(0.0, "p", "q", False), (12.0, "p", "q", True)])
        rep = check_strong_completeness(t, ["p"], ["q"],
                                        CrashSchedule.single("q", 10.0))
        assert rep.ok and rep.convergence == 12.0

    def test_fails_when_suspicion_revoked(self):
        t = synth_trace([(12.0, "p", "q", True), (20.0, "p", "q", False)])
        rep = check_strong_completeness(t, ["p"], ["q"],
                                        CrashSchedule.single("q", 10.0))
        assert not rep.ok and rep.convergence is None

    def test_correct_targets_not_constrained(self):
        t = synth_trace([(1.0, "p", "q", False)])
        rep = check_strong_completeness(t, ["p"], ["q"], CrashSchedule.none())
        assert rep.ok and rep.pairs == []

    def test_faulty_owners_excluded(self):
        t = synth_trace([])
        sched = CrashSchedule({"p": 5.0, "q": 10.0})
        rep = check_strong_completeness(t, ["p"], ["q"], sched)
        assert rep.pairs == []

    def test_premature_suspicion_noted_but_legal(self):
        t = synth_trace([(2.0, "p", "q", True)])
        rep = check_strong_completeness(t, ["p"], ["q"],
                                        CrashSchedule.single("q", 10.0))
        assert rep.ok
        assert "before crash" in rep.pairs[0].detail


class TestAccuracy:
    def test_ok_when_eventually_trusted(self):
        t = synth_trace([(1.0, "p", "q", True), (50.0, "p", "q", False)])
        rep = check_eventual_strong_accuracy(t, ["p"], ["q"],
                                             CrashSchedule.none())
        assert rep.ok and rep.convergence == 50.0

    def test_fails_when_suspected_at_end(self):
        t = synth_trace([(1.0, "p", "q", True)])
        rep = check_eventual_strong_accuracy(t, ["p"], ["q"],
                                             CrashSchedule.none())
        assert not rep.ok

    def test_faulty_targets_not_constrained(self):
        t = synth_trace([(1.0, "p", "q", True)])
        rep = check_eventual_strong_accuracy(t, ["p"], ["q"],
                                             CrashSchedule.single("q", 5.0))
        assert rep.ok and rep.pairs == []

    def test_perpetual_accuracy_rejects_any_false_positive(self):
        t = synth_trace([(1.0, "p", "q", True), (2.0, "p", "q", False)])
        rep = check_perpetual_strong_accuracy(t, ["p"], ["q"],
                                              CrashSchedule.none())
        assert not rep.ok

    def test_perpetual_accuracy_allows_post_crash_suspicion(self):
        t = synth_trace([(12.0, "p", "q", True)])
        rep = check_perpetual_strong_accuracy(t, ["p"], ["q"],
                                              CrashSchedule.single("q", 10.0))
        assert rep.ok


class TestTrustingAccuracy:
    def test_ok_trust_then_revoke_after_crash(self):
        t = synth_trace([(0.0, "p", "q", True), (5.0, "p", "q", False),
                         (20.0, "p", "q", True)])
        rep = check_trusting_accuracy(t, ["p"], ["q"],
                                      CrashSchedule.single("q", 15.0))
        assert rep.ok

    def test_fails_on_live_revocation(self):
        t = synth_trace([(0.0, "p", "q", True), (5.0, "p", "q", False),
                         (10.0, "p", "q", True), (12.0, "p", "q", False)])
        rep = check_trusting_accuracy(t, ["p"], ["q"], CrashSchedule.none())
        assert not rep.ok
        assert "revoked" in rep.failures()[0].detail

    def test_fails_when_correct_never_trusted(self):
        t = synth_trace([(0.0, "p", "q", True)])
        rep = check_trusting_accuracy(t, ["p"], ["q"], CrashSchedule.none())
        assert not rep.ok

    def test_ok_when_early_crasher_never_trusted(self):
        t = synth_trace([(0.0, "p", "q", True)])
        rep = check_trusting_accuracy(t, ["p"], ["q"],
                                      CrashSchedule.single("q", 3.0))
        assert rep.ok


class TestWeakAccuracy:
    def test_finds_never_suspected_witness(self):
        t = synth_trace([(1.0, "p", "q", True)])
        ok, witness = check_perpetual_weak_accuracy(
            t, ["p", "r"], ["q", "r"], CrashSchedule.none())
        assert ok and witness == "r"

    def test_fails_when_everyone_suspected(self):
        t = synth_trace([(1.0, "p", "q", True), (1.0, "q", "p", True)])
        ok, witness = check_perpetual_weak_accuracy(
            t, ["p", "q"], ["p", "q"], CrashSchedule.none())
        assert not ok and witness is None


class TestFalsePositives:
    def test_counts_onsets_while_live(self):
        t = synth_trace([(1.0, "p", "q", False), (2.0, "p", "q", True),
                         (3.0, "p", "q", False), (4.0, "p", "q", True)])
        assert false_positive_count(t, "p", "q", CrashSchedule.none()) == 2

    def test_post_crash_suspicion_not_counted(self):
        t = synth_trace([(1.0, "p", "q", False), (20.0, "p", "q", True)])
        sched = CrashSchedule.single("q", 10.0)
        assert false_positive_count(t, "p", "q", sched) == 0

    def test_initial_suspicion_of_live_counted(self):
        t = synth_trace([(0.0, "p", "q", True)])
        assert false_positive_count(t, "p", "q", CrashSchedule.none()) == 1


@given(st.lists(st.tuples(st.floats(0, 100), st.booleans()),
                min_size=1, max_size=20))
def test_accuracy_and_final_value_agree(raw):
    rows = [(t, "p", "q", s) for t, s in sorted(raw, key=lambda x: x[0])]
    trace = synth_trace(rows)
    rep = check_eventual_strong_accuracy(trace, ["p"], ["q"],
                                         CrashSchedule.none())
    final_suspected = rows[-1][3]
    assert rep.ok == (not final_suspected)


@given(st.lists(st.tuples(st.floats(0, 100), st.booleans()), max_size=20))
def test_false_positive_count_nonnegative_and_bounded(raw):
    rows = [(t, "p", "q", s) for t, s in sorted(raw, key=lambda x: x[0])]
    trace = synth_trace(rows)
    n = false_positive_count(trace, "p", "q", CrashSchedule.none())
    assert 0 <= n <= len(rows)
