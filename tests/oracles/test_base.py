"""Tests for the oracle module base class and wiring helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule, attach_detectors
from tests.conftest import make_engine


def module_on_engine(initially_suspect=False):
    eng = make_engine()
    proc = eng.add_process("p")
    mod = OracleModule("fd", ["q", "r"], initially_suspect=initially_suspect)
    proc.add_component(mod)
    return eng, mod


def test_initially_trusting():
    _, mod = module_on_engine()
    assert mod.suspects() == frozenset()


def test_initially_suspecting():
    _, mod = module_on_engine(initially_suspect=True)
    assert mod.suspects() == {"q", "r"}


def test_duplicate_monitored_rejected():
    with pytest.raises(ConfigurationError):
        OracleModule("fd", ["q", "q"])


def test_unmonitored_query_raises():
    _, mod = module_on_engine()
    with pytest.raises(ConfigurationError):
        mod.suspected("ghost")


def test_set_suspected_updates_output():
    _, mod = module_on_engine()
    mod.set_suspected("q", True)
    assert mod.suspected("q") and not mod.suspected("r")
    assert mod.trusted("r")


def test_initial_outputs_recorded_on_attach():
    eng, _ = module_on_engine()
    rows = eng.trace.records(kind="suspect")
    assert len(rows) == 2
    assert all(r.get("initial") for r in rows)


def test_changes_recorded_once_per_transition():
    eng, mod = module_on_engine()
    mod.set_suspected("q", True)
    mod.set_suspected("q", True)   # no-op
    mod.set_suspected("q", False)
    rows = eng.trace.records(kind="suspect",
                             where=lambda r: not r.get("initial"))
    assert [(r["target"], r["suspected"]) for r in rows] == [
        ("q", True), ("q", False)
    ]


def test_detector_label_stamped():
    eng, mod = module_on_engine()
    mod.detector_label = "custom"
    mod.set_suspected("q", True)
    rows = eng.trace.records(kind="suspect",
                             where=lambda r: not r.get("initial"))
    assert rows[0]["detector"] == "custom"


def test_attach_detectors_full_mesh():
    eng = make_engine()
    pids = ["a", "b", "c"]
    for pid in pids:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, pids, lambda owner, peers: OracleModule("fd", peers)
    )
    assert set(mods) == set(pids)
    assert set(mods["a"].monitored) == {"b", "c"}
