"""Tests for the ◇S substrate — and that consensus needs only ◇S.

The theory checkpoint: Chandra–Toueg consensus terminates with an oracle
that *never* stops wrongly suspecting most correct processes, as long as
one correct anchor is eventually trusted by everyone (eventual weak
accuracy) and crashes are eventually detected (strong completeness).
"""

import pytest

from repro.consensus.chandra_toueg import check_consensus, setup_consensus
from repro.errors import ConfigurationError
from repro.oracles import attach_detectors
from repro.oracles.eventually_strong import EventuallyStrongDetector
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
    false_positive_count,
)
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule

PIDS = ["p0", "p1", "p2", "p3"]


def build(seed=1, crash=None, max_time=4000.0, anchor="p1", flap=0.25):
    sched = crash or CrashSchedule.none()
    eng = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=PartialSynchronyDelays(gst=100.0, delta=1.5),
        crash_schedule=sched,
    )
    for pid in PIDS:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, PIDS,
        lambda o, peers: EventuallyStrongDetector(
            "es", peers, sched, anchor=anchor, flap_prob=flap),
    )
    return eng, sched, mods


def test_faulty_anchor_rejected():
    sched = CrashSchedule.single("p1", 5.0)
    with pytest.raises(ConfigurationError):
        EventuallyStrongDetector("es", ["p1"], sched, anchor="p1")


def test_completeness_holds():
    eng, sched, _ = build(seed=530, crash=CrashSchedule.single("p3", 500.0),
                          max_time=1500.0)
    eng.run()
    rep = check_strong_completeness(eng.trace, PIDS, PIDS, sched,
                                    detector="es")
    assert rep.ok


def test_anchor_eventually_trusted_by_all():
    eng, sched, mods = build(seed=531, max_time=1200.0)
    eng.run()
    for pid in PIDS:
        if pid != "p1":
            assert not mods[pid].suspected("p1")


def test_non_anchor_flaps_forever():
    """◇S is strictly weaker than ◇P: eventual strong accuracy fails."""
    eng, sched, _ = build(seed=532, max_time=1500.0)
    eng.run()
    rep = check_eventual_strong_accuracy(eng.trace, PIDS, PIDS, sched,
                                         detector="es")
    assert not rep.ok
    mistakes = false_positive_count(eng.trace, "p0", "p2", sched,
                                    detector="es")
    assert mistakes > 10   # unbounded flapping, would grow with run length


def test_consensus_terminates_on_mere_diamond_s():
    """The Chandra–Toueg bound: ◇S + majority suffices, even while most
    correct processes are suspected forever."""
    eng, sched, mods = build(seed=533, max_time=6000.0)
    proposals = {pid: f"v{i}" for i, pid in enumerate(PIDS)}
    eps = setup_consensus(eng, PIDS, mods, proposals)
    eng.run(stop_when=lambda: all(
        eng.process(p).crashed or eps[p].decided is not None for p in PIDS))
    res = check_consensus(eng.trace, PIDS, sched, proposals)
    assert res.ok, res.format_table()


def test_consensus_with_crash_and_diamond_s():
    crash = CrashSchedule.single("p0", 40.0)
    eng, sched, mods = build(seed=534, crash=crash, max_time=8000.0)
    proposals = {pid: f"v{i}" for i, pid in enumerate(PIDS)}
    eps = setup_consensus(eng, PIDS, mods, proposals)
    eng.run(stop_when=lambda: all(
        eng.process(p).crashed or eps[p].decided is not None for p in PIDS))
    res = check_consensus(eng.trace, PIDS, sched, proposals)
    assert res.ok, res.format_table()
