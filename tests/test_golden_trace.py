"""Golden-trace regression tests: fixed-seed runs are bit-identical.

Hot-path optimization of the engine (batched RNG draws, lazy trace fast
paths, cheaper dispatch) is only admissible when it leaves every run's
event history untouched under a fixed seed.  These tests pin sha256
digests of full traces — every record's time (full float precision),
kind, pid, and data — for three representative run shapes:

* one **reduction** run (the paper's witness/subject extraction over a
  WF-◇WX black box);
* one **chaos scenario** (link faults, partition, transport, adversary —
  the batched link-faults/transport/network streams all in play);
* one **sweep shard** (a declarative scenario under a fanout-derived
  seed).

plus one direct-engine run under a step *policy* and the non-batchable
:class:`~repro.sim.network.AsynchronousDelays` model (lognormal draws
must stay scalar — batching them would silently shift the stream).

``Message.uid`` values are excluded from digests: the uid counter is
process-global, so absolute uids depend on how many messages earlier
tests created; everything else about a record is seed-determined.

The constants were recorded from the engine *before* the optimization
pass (PR "hot-path engine optimization"); any future engine change that
shifts them is a replay-compatibility break and must be deliberate.

Regenerating (only for an *intended* semantic change): run the failing
test — pytest's assertion diff shows the newly computed digest and event
count — and update the ``GOLDEN``/``GOLDEN_EVENTS`` constants in the
same commit as the change, stating in the commit message why the event
stream moved.
"""

import hashlib

from repro.runtime.builder import instantiate
from repro.runtime.seeds import fanout_seeds
from repro.runtime.spec import RunSpec


def trace_digest(trace) -> str:
    """sha256 over the full retained history, uid fields excluded."""
    h = hashlib.sha256()
    for rec in trace:
        row = (repr(rec.time), rec.kind, rec.pid,
               tuple(sorted((k, repr(v)) for k, v in rec.data.items()
                            if k != "uid")))
        h.update(repr(row).encode("utf-8"))
    return h.hexdigest()


class TestReductionRunGolden:
    GOLDEN = "63417a1c08dcbffbe073c9f52721162b8a4221b6914bca565d01ea9c0f1414cc"
    GOLDEN_EVENTS = 1246

    def test_digest_unchanged(self):
        from repro.core import build_full_extraction
        from repro.experiments.common import build_system, wf_box

        system = build_system(["p", "q"], seed=5, max_time=400.0)
        build_full_extraction(system.engine, ["p", "q"], wf_box(system))
        system.engine.run()
        assert system.engine.events_processed == self.GOLDEN_EVENTS
        assert trace_digest(system.engine.trace) == self.GOLDEN


class TestChaosScenarioGolden:
    GOLDEN = "a8e8324cdea09e70259a8852089271011bc9f1e230222cb54e1619c338c96e91"
    GOLDEN_EVENTS = 5444

    def test_digest_unchanged(self):
        from repro.chaos import ChaosConfig, build_run

        spec = build_run(2885616951, ChaosConfig(max_time=400.0))
        built = instantiate(spec)
        built.engine.run()
        assert built.engine.events_processed == self.GOLDEN_EVENTS
        assert trace_digest(built.engine.trace) == self.GOLDEN


class TestSweepShardGolden:
    GOLDEN = "d3910b4090ca0996d2a6613a95da95e51c44adf554281797aff1e1969cf6a649"
    GOLDEN_EVENTS = 2406

    def test_digest_unchanged(self):
        shard_seed = fanout_seeds(0, 3)[2]
        spec = RunSpec(name="golden-sweep", graph="ring:4", seed=shard_seed,
                       max_time=400.0, crashes={"p1": 180.0})
        built = instantiate(spec)
        built.engine.run()
        assert built.engine.events_processed == self.GOLDEN_EVENTS
        assert trace_digest(built.engine.trace) == self.GOLDEN


class TestPolicyAndAsyncDelaysGolden:
    """Non-uniform draw paths stay scalar: BurstySteps policy over
    AsynchronousDelays (lognormal body — not batchable)."""

    GOLDEN = "5573c4407e8c7571898a0b69dd9c8d696113df71a6617a97d11c78406c2efd87"
    GOLDEN_EVENTS = 1028

    def test_digest_unchanged(self):
        from repro.sim import Engine, SimConfig
        from repro.sim.component import Component, action, receive
        from repro.sim.network import AsynchronousDelays
        from repro.sim.scheduler import BurstySteps

        class Chatter(Component):
            def __init__(self, peer):
                super().__init__("chat")
                self.peer = peer

            @action(guard=lambda self: True)
            def talk(self):
                self.send(self.peer, "chat", "gossip")

            @receive("gossip")
            def on_gossip(self, msg):
                pass

        eng = Engine(SimConfig(seed=9, max_time=1e9, record_messages=True,
                               step_policy=BurstySteps()),
                     delay_model=AsynchronousDelays())
        pids = ["a", "b", "c"]
        for pid in pids:
            eng.add_process(pid)
        for i, pid in enumerate(pids):
            eng.processes[pid].add_component(
                Chatter(pids[(i + 1) % len(pids)]))
        eng.run(until=120.0)
        assert eng.events_processed == self.GOLDEN_EVENTS
        assert trace_digest(eng.trace) == self.GOLDEN
