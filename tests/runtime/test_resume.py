"""Checkpoint/resume acceptance: interrupted campaigns resume to
byte-identical output, and SIGINT tears the pool down cleanly.

The interruption is simulated by truncating a completed store file to
its first K lines — exactly the on-disk state a campaign killed after K
checkpointed results leaves behind (each ``put`` is one flushed+fsynced
line).  The resumed run must then (a) serve those K runs from the store,
counted as cache hits, and (b) print stdout byte-identical to an
uninterrupted reference.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main


def _truncate_store(path, keep: int) -> None:
    lines = path.read_text().splitlines(keepends=True)
    assert len(lines) > keep, "need more results than we keep"
    path.write_text("".join(lines[:keep]))


CHAOS = ["chaos", "--campaigns", "4", "--seed", "11",
         "--max-time", "400.0", "--json"]


class TestChaosResume:
    def test_resume_after_interruption_is_byte_identical(self, tmp_path,
                                                         capsys):
        store = tmp_path / "s.jsonl"
        assert main(CHAOS) == 0
        reference = capsys.readouterr().out

        assert main(CHAOS + ["--store", str(store)]) == 0
        fresh = capsys.readouterr()
        assert fresh.out == reference
        assert "4 new result(s)" in fresh.err

        _truncate_store(store, keep=2)  # the simulated mid-flight kill
        assert main(CHAOS + ["--store", str(store), "--resume"]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == reference
        assert "2 cache hit(s)" in resumed.err
        assert "2 new result(s)" in resumed.err

    def test_full_store_resume_runs_nothing(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        assert main(CHAOS + ["--store", str(store)]) == 0
        reference = capsys.readouterr().out
        assert main(CHAOS + ["--store", str(store), "--resume"]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == reference
        assert "4 cache hit(s), 0 new result(s)" in resumed.err

    def test_growing_a_campaign_reuses_the_prefix(self, tmp_path, capsys):
        # fanout_seeds(seed, 4) is a prefix of fanout_seeds(seed, 6), so
        # raising --campaigns on an existing store only runs the new tail.
        store = tmp_path / "s.jsonl"
        assert main(CHAOS + ["--store", str(store)]) == 0
        capsys.readouterr()
        bigger = [a if a != "4" else "6" for a in CHAOS]
        assert main(bigger + ["--store", str(store), "--resume"]) == 0
        grown = capsys.readouterr()
        assert "4 cache hit(s)" in grown.err
        assert "2 new result(s)" in grown.err

    def test_resume_without_store_is_a_usage_error(self, capsys):
        assert main(CHAOS + ["--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_metrics_out_identical_across_resume(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        ref = tmp_path / "ref.jsonl"
        out = tmp_path / "resumed.jsonl"
        assert main(CHAOS + ["--metrics-out", str(ref)]) == 0
        assert main(CHAOS + ["--store", str(store)]) == 0
        _truncate_store(store, keep=1)
        assert main(CHAOS + ["--store", str(store), "--resume",
                             "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text() == ref.read_text()


class TestSweepResume:
    def _scenario(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps({"name": "rs", "graph": "ring:3",
                                    "max_time": 400.0, "grace": 150.0}))
        return str(path)

    def test_sweep_resume_is_byte_identical(self, tmp_path, capsys):
        scenario = self._scenario(tmp_path)
        store = tmp_path / "s.jsonl"
        argv = ["sweep", scenario, "--seeds", "4", "--seed", "5"]
        assert main(argv) == 0
        reference = capsys.readouterr().out

        assert main(argv + ["--store", str(store)]) == 0
        assert capsys.readouterr().out == reference
        _truncate_store(store, keep=2)
        assert main(argv + ["--store", str(store), "--resume"]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == reference
        assert "2 cache hit(s)" in resumed.err


@pytest.mark.slow
class TestSigintShutdown:
    def test_sigint_flushes_store_and_leaves_no_orphans(self, tmp_path):
        """SIGINT mid-campaign: exit 130, a resume hint, a parseable
        store holding whatever completed, and zero orphaned workers."""
        store = tmp_path / "sig.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "chaos",
             "--campaigns", "500", "--seed", "2", "--workers", "2",
             "--store", str(store)],
            env=env, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(3.0)  # let workers spin up and some runs land
        os.killpg(proc.pid, signal.SIGINT)
        try:
            _, err = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            os.killpg(proc.pid, signal.SIGKILL)
            pytest.fail("repro chaos did not exit after SIGINT")
        assert proc.returncode == 130, err
        assert "rerun with --store" in err

        # Every store line must be a complete, valid checkpoint record.
        if store.exists():
            for line in store.read_text().splitlines():
                rec = json.loads(line)
                assert rec["schema"] == "repro.store.v1"

        # No orphaned worker may survive the CLI process (forked workers
        # inherit its cmdline, so the store path identifies them).
        time.sleep(1.0)
        orphans = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit() or int(pid) == os.getpid():
                continue
            try:
                with open(f"/proc/{pid}/cmdline", "rb") as fh:
                    cmdline = fh.read().decode(errors="replace")
            except OSError:
                continue
            if str(store) in cmdline:
                orphans.append((pid, cmdline))
        assert not orphans, f"orphaned workers: {orphans}"
