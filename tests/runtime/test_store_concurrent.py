"""Concurrent multi-process store appends land as whole lines.

``ResultStore.put`` writes each record with a single ``os.write`` on an
``O_APPEND`` descriptor, which POSIX serializes at the file offset.  Two
processes hammering the same store file (two campaigns sharing a store,
a service restarted over a live file) must therefore produce a file
where every line parses and every record survives — no torn or
interleaved JSONL.
"""

import json
import subprocess
import sys

from repro.runtime.store import STORE_SCHEMA, ResultStore

WRITER = """
import sys
from repro.runtime.store import ResultStore

path, prefix, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = ResultStore(path)
filler = {"blob": "x" * 2048, "nested": {"values": list(range(64))}}
for i in range(count):
    store.put(f"{prefix}-{i}", {"writer": prefix, "i": i, **filler})
"""

PER_WRITER = 200


def test_two_process_appends_never_tear_lines(tmp_path):
    store_path = tmp_path / "shared.jsonl"
    store_path.touch()  # both writers append to one pre-existing file

    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, str(store_path), prefix,
             str(PER_WRITER)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        for prefix in ("alpha", "beta")
    ]
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()

    text = store_path.read_text(encoding="utf-8")
    assert text.endswith("\n")
    lines = text.splitlines()
    assert len(lines) == 2 * PER_WRITER

    seen = set()
    for i, line in enumerate(lines):
        rec = json.loads(line)  # raises on any torn/interleaved line
        assert rec["schema"] == STORE_SCHEMA, f"line {i + 1} malformed"
        payload = rec["payload"]
        assert payload["blob"] == "x" * 2048  # body intact, not spliced
        seen.add(rec["key"])
    assert seen == {f"{p}-{i}" for p in ("alpha", "beta")
                    for i in range(PER_WRITER)}

    # and the store itself loads the merged file cleanly
    merged = ResultStore(store_path)
    assert len(merged) == 2 * PER_WRITER
    assert merged.stats().get("store.corrupt_lines", 0) == 0
