"""Eager RunSpec / executor-knob validation: fail at construction,
with an actionable message, not deep inside a fanned-out worker."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    ParallelExecutor,
    RetryPolicy,
    RunSpec,
    SupervisedExecutor,
)


class TestRunSpecValidation:
    @pytest.mark.parametrize("kwargs, match", [
        ({"seed": "7"}, "seed must be an int"),
        ({"seed": True}, "seed must be an int"),
        ({"max_time": 0.0}, "max_time must be positive"),
        ({"max_time": -5.0}, "max_time must be positive"),
        ({"gst": -1.0}, "gst must be non-negative"),
        ({"grace": -0.5}, "grace must be non-negative"),
        ({"drop": 1.5}, "drop must be a probability"),
        ({"drop": -0.1}, "drop must be a probability"),
        ({"duplicate": 2.0}, "duplicate must be a probability"),
        ({"oracle": "psychic"}, "unknown oracle kind"),
        ({"trace": "ring:notanumber"}, "ring sink capacity"),
        ({"trace": "laserdisc"}, "unknown trace sink"),
    ])
    def test_bad_field_rejected_eagerly(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            RunSpec(**kwargs)

    def test_good_spec_constructs(self):
        spec = RunSpec(graph="ring:5", seed=3, max_time=100.0,
                       trace="ring:64")
        assert spec.seed == 3

    def test_from_dict_still_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            RunSpec.from_dict({"graph": "ring:3", "tpyo": 1})


class TestExecutorKnobValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelExecutor(workers=-1)
        with pytest.raises(ConfigurationError, match="workers"):
            SupervisedExecutor(workers=-2)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            SupervisedExecutor(workers=2, timeout=0.0)

    def test_bad_maxtasksperchild_rejected(self):
        with pytest.raises(ConfigurationError, match="maxtasksperchild"):
            SupervisedExecutor(workers=2, maxtasksperchild=0)

    @pytest.mark.parametrize("kwargs, match", [
        ({"max_attempts": 0}, "max_attempts"),
        ({"backoff_initial": -1.0}, "backoff"),
        ({"jitter": 1.5}, "jitter"),
    ])
    def test_bad_retry_policy_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            RetryPolicy(**kwargs)

    def test_retry_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_initial=0.25,
                             backoff_max=1.0, jitter=0.25, seed=42)
        delays = [policy.delay(7, a) for a in range(1, 5)]
        assert delays == [policy.delay(7, a) for a in range(1, 5)]
        assert all(0.0 < d <= 1.0 * 1.25 for d in delays)
        # Different tasks jitter differently (no thundering herd).
        assert policy.delay(7, 1) != policy.delay(8, 1)
