"""Tests for the canonical RunSpec → Runtime → RunResult path."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    INSTANCE,
    RunSpec,
    build_dining,
    build_system,
    execute,
    instantiate,
)


class TestRunSpec:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_dict({"graph": "ring:3", "typo_key": 1})

    def test_round_trips_and_compares_by_value(self):
        a = RunSpec.from_dict({"graph": "ring:3", "seed": 4})
        b = RunSpec(graph="ring:3", seed=4)
        assert a == b

    def test_picklable(self):
        import pickle

        spec = RunSpec(graph="ring:3", seed=2,
                       partition={"side": ["p0"], "start": 1.0, "end": 2.0})
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestInstantiate:
    def test_wires_graph_oracle_and_clients(self):
        built = instantiate(RunSpec(graph="ring:3", seed=1, max_time=50.0))
        assert sorted(built.graph.nodes) == ["p0", "p1", "p2"]
        assert sorted(built.diners) == ["p0", "p1", "p2"]
        assert sorted(built.system.box_modules) == ["p0", "p1", "p2"]
        assert built.engine is built.system.engine

    def test_transport_auto_installed_iff_faults(self):
        clean = instantiate(RunSpec(graph="ring:3", max_time=10.0))
        assert clean.system.transport is None
        lossy = instantiate(RunSpec(graph="ring:3", drop=0.2, max_time=10.0))
        assert lossy.system.transport is not None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            instantiate(RunSpec(graph="ring:3", algorithm="quantum"))

    def test_trace_sink_flows_to_engine(self):
        built = instantiate(RunSpec(graph="ring:3", trace="ring:128",
                                    max_time=10.0))
        assert built.engine.trace.mode == "ring:128"


class TestExecute:
    def test_checked_result(self):
        result = execute(RunSpec(name="r", graph="ring:3", seed=5,
                                 max_time=800.0))
        assert result.checked and result.ok
        assert result.trace_mode == "full" and result.trace_evicted == 0
        assert result.trace is not None
        assert result.metrics.messages_sent > 0
        assert result.summary()["wait_free"] is True

    def test_counters_sink_is_metrics_only(self):
        result = execute(RunSpec(graph="ring:3", seed=5, max_time=400.0,
                                 trace="counters"))
        assert not result.checked and not result.ok
        assert result.wait_freedom is None and result.exclusion is None
        assert result.metrics.messages_sent > 0
        assert result.trace_mode == "counters"
        assert result.summary()["ok"] is None

    def test_large_ring_sink_matches_full_verdicts(self):
        spec = dict(graph="ring:3", seed=5, max_time=400.0)
        full = execute(RunSpec(**spec))
        ring = execute(RunSpec(**spec, trace="ring:1000000"))
        assert ring.trace_evicted == 0
        assert ring.summary()["wait_free"] == full.summary()["wait_free"]
        assert ring.metrics.messages_sent == full.metrics.messages_sent

    def test_counters_run_costs_no_trace_memory(self):
        result = execute(RunSpec(graph="ring:3", seed=5, max_time=400.0,
                                 trace="counters"))
        assert len(result.trace) == 0
        assert result.trace.total_recorded > 0


class TestSingleCanonicalBuilder:
    """The four historical construction paths all land in the runtime."""

    def test_scenario_is_a_runspec(self):
        from repro.scenario import Scenario

        assert issubclass(Scenario, RunSpec)

    def test_scenario_report_wraps_runresult(self):
        from repro.runtime import RunResult
        from repro.scenario import ScenarioReport

        assert issubclass(ScenarioReport, RunResult)

    def test_experiments_common_delegates(self):
        from repro.experiments import common
        from repro.runtime import builder

        assert common.build_system is builder.build_system
        assert common.System is builder.System

    def test_no_engine_wiring_outside_runtime(self):
        """Grep-checkable acceptance criterion: scenario.py, chaos.py, and
        experiments/common.py contain no Engine/Network/attach_detectors
        construction of their own."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        for rel in ("scenario.py", "chaos.py", "experiments/common.py"):
            source = (root / rel).read_text()
            for needle in ("Engine(", "attach_detectors",
                           "ReliableTransport(", "Network("):
                assert needle not in source, f"{rel} still wires {needle}"

    def test_build_dining_covers_all_algorithms(self):
        from repro.runtime import parse_graph

        graph = parse_graph("ring:3")
        system = build_system(sorted(graph.nodes), seed=1, max_time=10.0)
        for algo in ("wf-ewx", "hygienic", "deferred", "deferred:99",
                     "manager", "fair:2"):
            instance = build_dining(algo, graph, system, instance_id=INSTANCE)
            assert instance is not None
