"""The `pairs` / `allow_disconnected` RunSpec knobs end to end:
neighbor-restricted detector wiring, monitoring counters, spec hashing,
and the disconnected-topology policy (docs/topologies.md)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import RunSpec, execute, instantiate
from repro.runtime.store import spec_hash


class TestNeighborsWiring:
    def test_detectors_monitor_only_neighbors(self):
        built = instantiate(RunSpec(graph="path:4", seed=3, max_time=50.0,
                                    pairs="neighbors"))
        mon = {p: set(m.monitored) for p, m in built.system.box_modules.items()}
        assert mon == {"p0": {"p1"}, "p1": {"p0", "p2"},
                       "p2": {"p1", "p3"}, "p3": {"p2"}}

    def test_monitors_list_is_both_edge_orientations(self):
        built = instantiate(RunSpec(graph="path:4", seed=3, max_time=50.0,
                                    pairs="neighbors"))
        assert set(built.monitors) == {
            ("p0", "p1"), ("p1", "p0"), ("p1", "p2"), ("p2", "p1"),
            ("p2", "p3"), ("p3", "p2")}

    def test_all_is_the_default_and_monitors_none(self):
        built = instantiate(RunSpec(graph="path:4", seed=3, max_time=50.0))
        assert built.monitors is None
        mon = {p: set(m.monitored) for p, m in built.system.box_modules.items()}
        assert mon["p0"] == {"p1", "p2", "p3"}

    def test_counters_published(self):
        built = instantiate(RunSpec(graph="path:4", seed=3, max_time=50.0,
                                    pairs="neighbors"))
        reg = built.engine.registry
        assert reg.counter("monitor.pairs_monitored").value == 6  # 2*|E|
        assert reg.counter("dining.instances").value == 1
        full = instantiate(RunSpec(graph="path:4", seed=3, max_time=50.0))
        assert full.engine.registry.counter(
            "monitor.pairs_monitored").value == 12                # n*(n-1)

    def test_neighbors_run_passes_invariants(self):
        result = execute(RunSpec(graph="ring:4", seed=11, max_time=600.0,
                                 pairs="neighbors"))
        assert result.ok, result.summary()

    def test_bad_pairs_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="pair selection"):
            RunSpec(graph="ring:3", pairs="everyone")


class TestSpecHash:
    def test_pairs_changes_the_hash(self):
        base = RunSpec(graph="ring:4", seed=1)
        local = RunSpec(graph="ring:4", seed=1, pairs="neighbors")
        assert spec_hash(base) != spec_hash(local)

    def test_default_hash_is_stable(self):
        spec = RunSpec(graph="ring:4", seed=1)
        assert spec_hash(spec) == spec_hash(RunSpec(graph="ring:4", seed=1))


class TestDisconnected:
    # rgg:12:0.1:0 is disconnected (pinned by the seeded generator).
    SPEC = "rgg:12:0.1:0"

    def test_rejected_by_default(self):
        with pytest.raises(ConfigurationError, match="disconnected"):
            instantiate(RunSpec(graph=self.SPEC, seed=2, max_time=50.0))

    def test_allow_disconnected_runs(self):
        built = instantiate(RunSpec(graph=self.SPEC, seed=2, max_time=50.0,
                                    pairs="neighbors",
                                    allow_disconnected=True))
        assert built.graph.number_of_nodes() == 12
