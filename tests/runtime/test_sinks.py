"""Tests for pluggable trace sinks and truncated-trace safety."""

import pickle

import pytest

from repro.dining.spec import ExclusionViolation
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import justify_violations
from repro.sim.sinks import (
    CounterTraceSink,
    FullTraceSink,
    RingTraceSink,
    make_sink,
)
from repro.sim.trace import Trace


def fill(trace, n, kind="state", pid="p"):
    clock = {"now": 0.0}
    trace.bind_clock(lambda: clock["now"])
    for i in range(n):
        clock["now"] = float(i)
        trace.record(kind, pid=pid, i=i)
    return trace


class TestMakeSink:
    def test_specs(self):
        assert isinstance(make_sink(None), FullTraceSink)
        assert isinstance(make_sink("full"), FullTraceSink)
        assert isinstance(make_sink("counters"), CounterTraceSink)
        ring = make_sink("ring:64")
        assert isinstance(ring, RingTraceSink) and ring.capacity == 64

    def test_passthrough(self):
        sink = RingTraceSink(8)
        assert make_sink(sink) is sink

    def test_mode_round_trips(self):
        for spec in ("full", "ring:16", "counters"):
            assert make_sink(make_sink(spec).mode).mode == spec

    @pytest.mark.parametrize("bad", ["ring:banana", "ring:0", "ring:-3",
                                     "firehose"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_sink(bad)


class TestRingSink:
    def test_no_eviction_under_capacity(self):
        t = fill(Trace(sink="ring:10"), 5)
        assert len(t) == 5 and t.evicted == 0 and not t.truncated

    def test_eviction_keeps_most_recent(self):
        t = fill(Trace(sink="ring:3"), 10)
        assert len(t) == 3
        assert t.evicted == 7 and t.truncated
        assert [r["i"] for r in t.records()] == [7, 8, 9]

    def test_total_recorded_counts_everything(self):
        t = fill(Trace(sink="ring:3"), 10)
        assert t.total_recorded == 10

    def test_mode_string(self):
        assert Trace(sink="ring:3").mode == "ring:3"


class TestCounterSink:
    def test_retains_nothing(self):
        t = fill(Trace(sink="counters"), 8)
        assert len(t) == 0 and t.records() == []
        assert t.evicted == 8 and t.truncated


class TestAggregatesSurviveTruncation:
    """Kind histogram, crash times, and last-record time are maintained
    out-of-band, so they stay exact in every sink mode."""

    @pytest.mark.parametrize("sink", ["full", "ring:2", "counters"])
    def test_kinds_exact(self, sink):
        t = Trace(sink=sink)
        clock = {"now": 0.0}
        t.bind_clock(lambda: clock["now"])
        for i in range(6):
            clock["now"] = float(i)
            t.record("a" if i % 2 else "b", pid="p")
        assert t.kinds() == {"a": 3, "b": 3}
        assert t.last_time() == 5.0

    @pytest.mark.parametrize("sink", ["ring:2", "counters"])
    def test_crash_times_survive_eviction(self, sink):
        t = Trace(sink=sink)
        clock = {"now": 0.0}
        t.bind_clock(lambda: clock["now"])
        clock["now"] = 3.0
        t.record("crash", pid="q")
        for i in range(10):
            clock["now"] = 10.0 + i
            t.record("state", pid="p", s="x")
        assert t.crash_times() == {"q": 3.0}


class TestTracePickling:
    def test_round_trip_drops_clock_binding(self):
        t = fill(Trace(sink="ring:4"), 6)
        t2 = pickle.loads(pickle.dumps(t))
        assert [r["i"] for r in t2.records()] == [r["i"] for r in t.records()]
        assert t2.evicted == t.evicted and t2.mode == t.mode
        assert t2.kinds() == t.kinds()


class TestJustifyViolationsOnTruncatedTraces:
    """The ◇WX justification check hinges on session-start and suspicion
    rows; once a sink has evicted records it must refuse rather than
    mis-judge (satellite: 'work on truncated traces or fail loudly')."""

    VIOLATION = ExclusionViolation(u="p", v="q", start=50.0, end=60.0)

    def test_truncated_with_violations_fails_loudly(self):
        t = fill(Trace(sink="ring:2"), 10)
        with pytest.raises(SimulationError, match="ring:2"):
            justify_violations(t, [self.VIOLATION])

    def test_counters_with_violations_fails_loudly(self):
        t = fill(Trace(sink="counters"), 3)
        with pytest.raises(SimulationError, match="counters"):
            justify_violations(t, [self.VIOLATION])

    def test_no_violations_is_fine_even_truncated(self):
        t = fill(Trace(sink="ring:2"), 10)
        assert justify_violations(t, []) is True

    def test_untruncated_ring_still_judges(self):
        """A ring sink that never evicted anything has the full history;
        the check runs normally (and an unjustified violation reads as
        such, because no evidence can be missing)."""
        t = fill(Trace(sink="ring:1000"), 5)
        assert justify_violations(t, [self.VIOLATION]) is False


class TestEngineReportsSinkMode:
    def test_event_budget_error_names_sink_and_eviction(self):
        from repro.sim import Engine, FixedDelays, SimConfig

        eng = Engine(SimConfig(seed=0, max_time=1e9, max_events=100,
                               trace_sink="ring:5"),
                     delay_model=FixedDelays(1.0))
        eng.add_process("p")
        eng.add_process("q")
        with pytest.raises(SimulationError, match="ring:5"):
            eng.run()

    def test_engine_honors_sink_config(self):
        from repro.sim import Engine, SimConfig

        eng = Engine(SimConfig(seed=0, trace_sink="counters"))
        assert eng.trace.mode == "counters"
