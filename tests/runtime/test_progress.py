"""Tests for the live progress reporter (repro.runtime.progress)."""

import io
import json

from repro.runtime.progress import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    progress_sample,
)


def run_value(ok=True, events=100, convergence=5.0, wrongful=2):
    return {"record": {"summary": {"ok": ok, "events_processed": events,
                                   "convergence_time": convergence,
                                   "wrongful_suspicions": wrongful}}}


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def reporter(total=4, **kw):
    kw.setdefault("stream", io.StringIO())
    kw.setdefault("clock", FakeClock())
    kw.setdefault("wall_clock", lambda: 1000.0)
    return ProgressReporter(total, **kw)


# -- sample extraction --------------------------------------------------------


def test_sample_from_sweep_row_dict():
    s = progress_sample(run_value(ok=False, events=42, wrongful=3))
    assert s == {"ok": False, "events": 42, "convergence_time": 5.0,
                 "wrongful_suspicions": 3}


def test_sample_from_run_record_object():
    class Verdict:
        def run_record(self):
            return {"summary": {"events_processed": 7,
                                "convergence_time": None,
                                "wrongful_suspicions": 0},
                    "verdict": {"ok": True}}

    s = progress_sample(Verdict())
    assert s["ok"] is True and s["events"] == 7
    assert s["convergence_time"] is None


def test_sample_from_summary_object():
    class Result:
        def summary(self):
            return {"ok": True, "events_processed": 9,
                    "convergence_time": 1.0, "wrongful_suspicions": 1}

    assert progress_sample(Result())["events"] == 9


def test_sample_degrades_on_unknown_shapes():
    assert progress_sample(None) == {}
    assert progress_sample(42) == {}
    assert progress_sample({"record": "not-a-mapping"}) == {}


# -- aggregates and the live line --------------------------------------------


def test_snapshot_aggregates_and_eta():
    clock = FakeClock()
    r = reporter(total=4, clock=clock)
    r.start()
    clock.t = 2.0
    r.update(0, run_value())
    r.update(1, run_value(ok=False, convergence=None), cached=True)
    snap = r.snapshot()
    assert snap["schema"] == PROGRESS_SCHEMA
    assert (snap["done"], snap["cached"], snap["failed"]) == (2, 1, 1)
    assert (snap["converged"], snap["unconverged"]) == (1, 1)
    assert snap["events"] == 200
    assert snap["events_per_sec"] == 100.0
    assert snap["eta_seconds"] == 2.0   # 2 runs in 2s, 2 remaining
    assert snap["wall_time"] == 1000.0


def test_render_line_contents():
    clock = FakeClock()
    r = reporter(total=2, label="chaos", clock=clock)
    r.start()
    clock.t = 1.0
    r.update(0, run_value(ok=False), cached=True)
    line = r.render_line()
    assert line.startswith("chaos: 1/2 runs")
    assert "1 cached" in line and "1 FAILED" in line
    assert "wrongful 2" in line and "converged 1/1" in line
    assert "eta" in line


def test_live_line_overwrites_with_carriage_return():
    stream = io.StringIO()
    clock = FakeClock()
    r = reporter(total=2, stream=stream, live=True, clock=clock,
                 min_interval=0.0)
    r.update(0, run_value())
    clock.t = 1.0
    r.update(1, run_value())
    r.finish()
    out = stream.getvalue()
    assert out.count("\r") >= 2
    assert out.endswith("\n")       # finish terminates the line


def test_not_live_writes_nothing_to_stream():
    stream = io.StringIO()
    r = reporter(total=2, stream=stream, live=False)
    r.update(0, run_value())
    r.finish()
    assert stream.getvalue() == ""


def test_auto_detect_live_is_false_for_stringio():
    assert reporter().live is False


# -- heartbeat file -----------------------------------------------------------


def test_heartbeat_jsonl_schema_and_progression(tmp_path):
    hb = tmp_path / "hb.jsonl"
    r = reporter(total=2, heartbeat_path=str(hb))
    r.start()
    r.update(0, run_value())
    r.update(1, run_value())
    r.finish()
    lines = [json.loads(x) for x in hb.read_text().splitlines()]
    assert len(lines) == 3   # start + one per landed run
    assert all(x["schema"] == PROGRESS_SCHEMA for x in lines)
    assert [x["done"] for x in lines] == [0, 1, 2]


def test_heartbeat_appends_across_reporters(tmp_path):
    """A resumed campaign extends the same heartbeat file."""
    hb = tmp_path / "hb.jsonl"
    first = reporter(total=2, heartbeat_path=str(hb))
    first.start()
    first.update(0, run_value())
    first.finish()
    second = reporter(total=2, heartbeat_path=str(hb))
    second.start()
    second.update(0, run_value(), cached=True)
    second.update(1, run_value())
    second.finish()
    lines = [json.loads(x) for x in hb.read_text().splitlines()]
    assert [x["done"] for x in lines] == [0, 1, 0, 1, 2]
    assert lines[-1]["cached"] == 1


def test_finish_idempotent_and_safe_before_start(tmp_path):
    r = reporter(total=1, heartbeat_path=str(tmp_path / "hb.jsonl"))
    r.finish()
    r.finish()
    r2 = reporter(total=1)
    r2.update(0, run_value())   # update auto-starts
    r2.finish()
    r2.finish()
    assert r2.done == 1


def test_throttling_skips_intermediate_draws():
    stream = io.StringIO()
    clock = FakeClock()
    r = reporter(total=10, stream=stream, live=True, clock=clock,
                 min_interval=10.0)
    r.start()
    for i in range(5):
        r.update(i, run_value())    # all within the throttle window
    assert stream.getvalue().count("\r") == 1   # only the start draw
    for i in range(5, 10):
        r.update(i, run_value())
    # completion forces a draw even inside the throttle window
    assert "10/10" in stream.getvalue()


# -- near-zero elapsed time (the divide-by-~0 guard) --------------------------


def test_zero_elapsed_reports_rates_and_eta_as_unknown():
    """A first result landing with ~0 elapsed wall-clock (cache hits are
    served synchronously at load) must not divide by near-zero: rates
    and ETA come back None instead of absurd numbers."""
    clock = FakeClock()
    r = reporter(total=4, clock=clock)
    r.start()
    r.update(0, run_value(), cached=True)   # elapsed is exactly 0.0
    snap = r.snapshot()
    assert snap["events_per_sec"] is None
    assert snap["eta_seconds"] is None
    assert snap["done"] == 1 and snap["elapsed_seconds"] == 0.0


def test_sub_epsilon_elapsed_is_still_guarded():
    clock = FakeClock()
    r = reporter(total=4, clock=clock)
    r.start()
    clock.t = 1e-9                          # below MIN_RATE_ELAPSED
    r.update(0, run_value())
    snap = r.snapshot()
    assert snap["events_per_sec"] is None and snap["eta_seconds"] is None
    line = r.render_line()                  # live line renders without rates
    assert "ev/s" not in line and "eta" not in line


def test_rates_return_once_real_time_has_passed():
    clock = FakeClock()
    r = reporter(total=4, clock=clock)
    r.start()
    r.update(0, run_value(events=100), cached=True)
    clock.t = 2.0
    r.update(1, run_value(events=100))
    snap = r.snapshot()
    assert snap["events_per_sec"] == 100.0  # 200 events / 2s
    assert snap["eta_seconds"] == 2.0       # 2 done in 2s, 2 remaining
