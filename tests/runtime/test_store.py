"""Content-addressed store: hashing, durability, and resumable_map."""

import json

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.runtime import RunSpec, SupervisedExecutor
from repro.runtime.store import ResultStore, resumable_map, spec_hash


class TestSpecHash:
    def test_equal_specs_hash_equal(self):
        a = RunSpec(graph="ring:4", seed=7, max_time=500.0)
        b = RunSpec(graph="ring:4", seed=7, max_time=500.0)
        assert spec_hash(a) == spec_hash(b)

    def test_construction_path_does_not_matter(self):
        kwargs = RunSpec(graph="ring:4", seed=7, crashes={"p1": 100.0})
        roundtrip = RunSpec.from_dict(json.loads(json.dumps(
            {"graph": "ring:4", "seed": 7, "crashes": {"p1": 100.0}})))
        assert spec_hash(kwargs) == spec_hash(roundtrip)

    def test_any_field_change_changes_the_hash(self):
        base = RunSpec(graph="ring:4", seed=7)
        assert spec_hash(base) != spec_hash(RunSpec(graph="ring:4", seed=8))
        assert spec_hash(base) != spec_hash(RunSpec(graph="ring:5", seed=7))
        assert spec_hash(base) != spec_hash(
            RunSpec(graph="ring:4", seed=7, trace="counters"))

    def test_hash_is_stable_across_sessions(self):
        # Pinned: a changed canonical encoding silently invalidates every
        # existing store, so it must show up as a test diff, not a
        # mystery cache miss.
        h = spec_hash(RunSpec(graph="ring:3", seed=1, max_time=100.0))
        assert len(h) == 64 and h == spec_hash(
            RunSpec(graph="ring:3", seed=1, max_time=100.0))

    def test_pre_detector_stores_stay_cache_hits(self):
        # Digests computed BEFORE the detector registry existed: specs
        # using the default detector with no parameter overrides must
        # keep hashing under the old salt with the detector fields
        # omitted, or every pre-registry store turns into a full re-run.
        pins = {
            spec_hash(RunSpec()):
                "a06716c2ce8c7b1cc8d0e001c6c3bcb4"
                "9adc0b0336ab08b32a0fd6e8cc7a29e2",
            spec_hash(RunSpec(graph="ring:4", seed=7,
                              crashes={"p1": 400.0})):
                "33a8d9f7ee3c9ff2276720e5c864c88f"
                "596410a225274e75cf03231ce311352f",
        }
        for got, expected in pins.items():
            assert got == expected

    def test_legacy_oracle_spec_keeps_its_key(self):
        # oracle="perfect" predates the registry; its stored results
        # must survive the deprecation of the knob.
        with pytest.warns(DeprecationWarning):
            spec = RunSpec(oracle="perfect")
        assert spec_hash(spec) == ("fe4fdc6cc0239e0aaa37eab1c2084ab5"
                                   "61fff2371c325f3570f4bebbb48aba6c")

    def test_chaos_built_spec_keeps_its_key(self):
        from repro.chaos import ChaosConfig, build_run
        spec = build_run(2885616951, ChaosConfig(max_time=400.0))
        assert spec_hash(spec) == ("a8784bef3ab9c8e6ffeccadb17ecf272"
                                   "55998aec986b6acb5297575e38c22c23")

    def test_non_default_detector_changes_the_key(self):
        base = RunSpec(graph="ring:4", seed=7)
        omega = RunSpec(graph="ring:4", seed=7, detector="omega")
        tuned = RunSpec(graph="ring:4", seed=7,
                        detector_params={"initial_timeout": 20})
        assert len({spec_hash(base), spec_hash(omega),
                    spec_hash(tuned)}) == 3

    def test_explicit_default_detector_is_the_default_key(self):
        # Spelling the default out must not fork the cache.
        assert spec_hash(RunSpec(detector="eventually_perfect")) == \
            spec_hash(RunSpec())


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.get("k") is None
        store.put("k", {"b": 2, "a": 1})
        assert store.get("k") == {"b": 2, "a": 1}
        assert "k" in store and len(store) == 1

    def test_payload_key_order_survives_reload(self, tmp_path):
        # Byte-identical resume depends on dict insertion order
        # round-tripping through the store (no sort_keys on payloads).
        path = tmp_path / "s.jsonl"
        ResultStore(path).put("k", {"zeta": 1, "alpha": 2})
        assert list(ResultStore(path).get("k")) == ["zeta", "alpha"]

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert ResultStore(path).get("k") == {"v": 2}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k1", {"v": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.store.v1", "key": "k2", "pay')
        reopened = ResultStore(path)
        assert reopened.get("k1") == {"v": 1}
        assert "k2" not in reopened
        assert reopened.metrics.snapshot().counters[
            "store.corrupt_lines"] == 1

    def test_corrupt_interior_line_is_an_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put("k1", {"v": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        store.put("k2", {"v": 2})  # the corruption is now interior
        with pytest.raises(ExecutionError, match="corrupt store line"):
            ResultStore(path)

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="is a directory"):
            ResultStore(tmp_path)

    def test_missing_parent_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            ResultStore(tmp_path / "nope" / "s.jsonl")

    def test_hit_miss_counters(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("k", {"v": 1})
        store.get("k")
        store.get("absent")
        stats = store.stats()
        assert stats["store.hits"] == 1
        assert stats["store.misses"] == 1
        assert stats["store.puts"] == 1


def _double(x):
    return {"value": 2 * x}


def _explode(x):
    raise AssertionError(f"cached item {x} must not be re-executed")


class TestResumableMap:
    def test_checkpoints_every_result(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        keys = [f"k{i}" for i in range(4)]
        out = resumable_map(_double, list(range(4)), keys,
                            encode=lambda r: r,
                            decode=lambda payload, i, item: payload,
                            store=store)
        assert out == [{"value": 2 * x} for x in range(4)]
        assert len(store) == 4

    def test_resume_serves_cached_without_executing(self, tmp_path):
        path = tmp_path / "s.jsonl"
        keys = [f"k{i}" for i in range(3)]
        resumable_map(_double, list(range(3)), keys,
                      encode=lambda r: r,
                      decode=lambda payload, i, item: payload,
                      store=ResultStore(path))
        store = ResultStore(path)
        out = resumable_map(_explode, list(range(3)), keys,
                            encode=lambda r: r,
                            decode=lambda payload, i, item: payload,
                            store=store, resume=True)
        assert out == [{"value": 2 * x} for x in range(3)]
        assert store.stats()["store.hits"] == 3

    def test_partial_store_executes_only_the_gap(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("k1", {"value": 2})
        executed = []

        def fn(x):
            executed.append(x)
            return {"value": 2 * x}

        out = resumable_map(fn, [0, 1, 2], ["k0", "k1", "k2"],
                            encode=lambda r: r,
                            decode=lambda payload, i, item: payload,
                            store=store, resume=True,
                            executor=SupervisedExecutor(workers=1))
        assert out == [{"value": 0}, {"value": 2}, {"value": 4}]
        assert executed == [0, 2]
        assert len(store) == 3

    def test_key_item_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="keys"):
            resumable_map(_double, [1, 2], ["k1"],
                          encode=lambda r: r,
                          decode=lambda payload, i, item: payload)

    def test_resume_requires_a_store(self):
        with pytest.raises(ConfigurationError, match="requires"):
            resumable_map(_double, [1], ["k1"],
                          encode=lambda r: r,
                          decode=lambda payload, i, item: payload,
                          resume=True)
