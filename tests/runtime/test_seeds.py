"""Tests for the campaign seed fanout (:mod:`repro.runtime.seeds`)."""

from repro.runtime.seeds import fanout_seeds


def test_deterministic():
    assert fanout_seeds(7, 5) == fanout_seeds(7, 5)


def test_prefix_stable():
    """Raising --campaigns keeps earlier run seeds unchanged, so run
    indices stay meaningful across campaign sizes."""
    assert fanout_seeds(7, 10)[:5] == fanout_seeds(7, 5)


def test_empty():
    assert fanout_seeds(3, 0) == []
    assert fanout_seeds(3, -1) == []


def test_no_duplicates_within_a_stream():
    seeds = fanout_seeds(11, 512)
    assert len(set(seeds)) == len(seeds)


def test_no_collisions_across_base_seeds():
    """Distinct base seeds must not produce overlapping child-seed
    streams: a run from campaign A must never silently alias a run from
    campaign B, or replay commands would reproduce the wrong scenario."""
    streams = {base: set(fanout_seeds(base, 256)) for base in range(32)}
    bases = sorted(streams)
    for i, a in enumerate(bases):
        for b in bases[i + 1:]:
            overlap = streams[a] & streams[b]
            assert not overlap, (
                f"base seeds {a} and {b} share child seeds {sorted(overlap)[:4]}"
            )


def test_chaos_reexport_is_the_runtime_fanout():
    """``repro.chaos.fanout_seeds`` stays importable and is the same
    function (one fanout definition, no drift)."""
    from repro import chaos

    assert chaos.fanout_seeds is fanout_seeds
