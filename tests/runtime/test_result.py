"""RunResult envelope: summary robustness and the obs snapshot field."""

import json
import pickle

from repro.obs.registry import MetricsRegistry
from repro.runtime.result import RunResult
from repro.sim.metrics import RunMetrics


def make_metrics(**over):
    base = dict(virtual_time=100.0, events_processed=10, messages_sent=5,
                messages_delivered=5, messages_by_kind={}, steps_by_process={},
                messages_dropped=1, messages_duplicated=2, retransmissions=3)
    base.update(over)
    return RunMetrics(**base)


class TestSummaryWithoutMetrics:
    """Regression: summary() used to dereference self.metrics
    unconditionally and crash on a metrics-less result."""

    def test_no_crash_and_nulls(self):
        summary = RunResult(name="bare", seed=7).summary()
        assert summary["messages_sent"] is None
        assert summary["messages_dropped"] is None
        assert summary["messages_duplicated"] is None
        assert summary["retransmissions"] is None
        assert summary["events_processed"] is None
        assert summary["ok"] is None

    def test_json_serializable(self):
        json.dumps(RunResult().summary())


class TestSummaryContent:
    def test_includes_duplicated_alongside_dropped(self):
        summary = RunResult(metrics=make_metrics()).summary()
        assert summary["messages_dropped"] == 1
        assert summary["messages_duplicated"] == 2
        assert summary["retransmissions"] == 3

    def test_convergence_fields_from_obs(self):
        reg = MetricsRegistry()
        reg.counter("oracle.wrongful_suspicions").inc(4)
        reg.counter("oracle.suspicion_churn").inc(9)
        reg.gauge("oracle.converged_at").set(123.5)
        result = RunResult(obs=reg.snapshot())
        assert result.convergence_time == 123.5
        assert result.wrongful_suspicions == 4
        assert result.suspicion_churn == 9
        summary = result.summary()
        assert summary["convergence_time"] == 123.5
        assert summary["wrongful_suspicions"] == 4
        assert summary["suspicion_churn"] == 9

    def test_convergence_fields_none_without_obs(self):
        summary = RunResult().summary()
        assert summary["convergence_time"] is None
        assert summary["wrongful_suspicions"] is None
        assert summary["suspicion_churn"] is None


class TestEnvelope:
    def test_obs_travels_through_view_fields(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        result = RunResult(name="v", obs=reg.snapshot())
        fields = RunResult.view_fields(result)
        assert fields["obs"] == result.obs

    def test_pickles_with_obs(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        result = RunResult(obs=reg.snapshot(), metrics=make_metrics())
        clone = pickle.loads(pickle.dumps(result))
        assert clone.obs == result.obs
        assert clone.summary() == result.summary()
