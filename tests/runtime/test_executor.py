"""Determinism suite: parallel execution must reproduce serial, per seed."""

import pytest

from repro.chaos import ChaosConfig, run_campaign
from repro.runtime import ParallelExecutor, RunSpec
from repro.runtime.executor import _execute_detached

#: Pinned campaign for the determinism contract: small enough to run four
#: times in the suite, hostile enough (drops, partitions, crash, slow
#: processes) that any nondeterminism in the parallel path would surface.
PINNED = ChaosConfig(campaigns=4, seed=13, max_time=400.0)


def _square(x):
    return x * x


class TestParallelExecutor:
    def test_serial_map_matches_python(self):
        assert ParallelExecutor(workers=1).map(_square, range(5)) == \
            [0, 1, 4, 9, 16]

    def test_parallel_map_preserves_order(self):
        assert ParallelExecutor(workers=3).map(_square, range(8)) == \
            [x * x for x in range(8)]

    def test_single_item_skips_the_pool(self):
        assert ParallelExecutor(workers=4).map(_square, [7]) == [49]

    def test_run_specs_parallel_matches_serial(self):
        specs = [RunSpec(name=f"s{seed}", graph="ring:3", seed=seed,
                         max_time=300.0) for seed in (1, 2, 3, 4)]
        serial = ParallelExecutor(workers=1).run_specs(specs)
        parallel = ParallelExecutor(workers=4).run_specs(specs)
        assert [r.summary() for r in serial] == \
            [r.detach_trace().summary() for r in parallel]

    def test_parallel_results_come_back_trace_detached(self):
        specs = [RunSpec(graph="ring:3", seed=s, max_time=200.0)
                 for s in (1, 2)]
        for r in ParallelExecutor(workers=2).run_specs(specs):
            assert r.trace is None
        for r in ParallelExecutor(workers=1).run_specs(specs):
            assert r.trace is not None

    def test_detached_worker_is_a_pure_function(self):
        spec = RunSpec(graph="ring:3", seed=9, max_time=300.0)
        assert _execute_detached(spec).summary() == \
            _execute_detached(spec).summary()


class TestCampaignDeterminism:
    def test_workers_4_reproduces_workers_1_per_seed(self):
        """The acceptance contract: a pinned chaos campaign run with
        ``--workers 4`` reproduces the serial run's per-seed verdicts
        exactly — summaries (verdicts, metrics, failures) byte-equal."""
        serial = run_campaign(PINNED, workers=1)
        parallel = run_campaign(PINNED, workers=4)
        assert [v.summary() for v in serial.verdicts] == \
            [v.summary() for v in parallel.verdicts]
        assert [v.failures for v in serial.verdicts] == \
            [v.failures for v in parallel.verdicts]

    def test_negative_campaign_failures_also_deterministic(self):
        """Invariant *failures* (raw lossy links) must replay identically
        across worker counts too — replay commands point at real runs."""
        cfg = ChaosConfig(campaigns=3, seed=1, transport=False,
                          drop_max=0.3, max_time=400.0)
        serial = run_campaign(cfg, workers=1)
        parallel = run_campaign(cfg, workers=3)
        assert serial.failed, "pinned negative campaign should fail"
        assert [v.summary() for v in serial.verdicts] == \
            [v.summary() for v in parallel.verdicts]

    def test_worker_count_does_not_leak_into_output(self):
        result = run_campaign(PINNED, workers=2)
        payload = result.to_json()
        assert payload["seed"] == PINNED.seed
        assert len(payload["runs"]) == PINNED.campaigns


class TestChaosCliWorkers:
    def test_workers_flag_runs_and_tallies(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--campaigns", "2", "--seed", "3",
                     "--workers", "2"]) == 0
        assert "2/2 passed" in capsys.readouterr().out

    def test_summary_reports_trace_mode(self):
        from repro.chaos import fanout_seeds, run_one

        verdict = run_one(0, fanout_seeds(3, 1)[0],
                          ChaosConfig(max_time=300.0))
        assert verdict.summary()["trace_mode"] == "full"


@pytest.mark.parametrize("workers", [1, 2])
def test_sweep_cli_workers(workers, capsys, tmp_path):
    import json

    from repro.cli import main

    path = tmp_path / "s.json"
    path.write_text(json.dumps({"name": "w", "graph": "ring:3",
                                "max_time": 400.0, "grace": 150.0}))
    assert main(["sweep", str(path), "--seeds", "2",
                 "--workers", str(workers)]) == 0
    assert "(n=2)" in capsys.readouterr().out
