"""Self-chaos suite: the supervisor must survive the faults it manages.

Fault injection rides the :class:`SupervisedExecutor` ``fault_hook`` —
a callable run *inside the worker* before each task, here used to
``os._exit`` (simulating OOM-kill / segfault) or hang (simulating a
wedged run) on chosen attempts.  First-attempt-only hooks coordinate
through marker files on disk, so the retried attempt sails through and
the map must still return exactly what an unsupervised run would.
"""

import os
import pathlib
import time

import pytest

from repro.chaos import ChaosConfig, run_campaign
from repro.runtime import RetryPolicy, SupervisedExecutor

#: Fast backoff so retry-path tests cost milliseconds, not seconds.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_initial=0.01,
                         backoff_max=0.02, jitter=0.25, seed=0)

#: Directory the fault hooks coordinate through; set by the fixture
#: before workers fork, inherited by them.
_MARKER_DIR = None


@pytest.fixture
def marker_dir(tmp_path):
    global _MARKER_DIR
    _MARKER_DIR = tmp_path
    yield tmp_path
    _MARKER_DIR = None


def _once(task_id: int) -> bool:
    """True exactly once per task id (marker file claims the attempt)."""
    marker = pathlib.Path(_MARKER_DIR) / f"task{task_id}"
    if marker.exists():
        return False
    marker.write_text("seen")
    return True


def _square(x):
    return x * x


def _crash_task0_once(worker_id, task_id):
    if task_id == 0 and _once(task_id):
        os._exit(137)  # simulated SIGKILL / OOM: no cleanup, no traceback


def _hang_task1_once(worker_id, task_id):
    if task_id == 1 and _once(task_id):
        time.sleep(60.0)


def _always_crash(worker_id, task_id):
    os._exit(137)


def _raise_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestCrashRecovery:
    def test_killed_worker_is_detected_and_task_retried(self, marker_dir):
        ex = SupervisedExecutor(workers=2, retry=FAST_RETRY,
                                fault_hook=_crash_task0_once)
        assert ex.map(_square, range(6)) == [x * x for x in range(6)]
        stats = ex.stats()
        assert stats["executor.worker_crashes"] >= 1
        assert stats["executor.retries"] >= 1
        assert stats["executor.tasks"] == 6

    def test_hung_worker_is_killed_and_task_retried(self, marker_dir):
        ex = SupervisedExecutor(workers=2, timeout=0.5, retry=FAST_RETRY,
                                fault_hook=_hang_task1_once)
        assert ex.map(_square, range(4)) == [x * x for x in range(4)]
        stats = ex.stats()
        assert stats["executor.timeouts"] >= 1
        assert stats["executor.retries"] >= 1

    def test_retry_exhaustion_falls_back_inline(self, marker_dir):
        # Every pooled attempt dies, so each task must eventually run
        # in-process: graceful degradation, never data loss.
        ex = SupervisedExecutor(workers=2, retry=FAST_RETRY,
                                degrade_after=1000,
                                fault_hook=_always_crash)
        assert ex.map(_square, range(3)) == [0, 1, 4]
        assert ex.stats()["executor.inline_fallbacks"] >= 1

    def test_irrecoverable_pool_degrades_to_serial(self, marker_dir):
        ex = SupervisedExecutor(workers=2, retry=FAST_RETRY,
                                degrade_after=2,
                                fault_hook=_always_crash)
        assert ex.map(_square, range(5)) == [x * x for x in range(5)]
        assert ex.stats()["executor.degraded"] == 1.0

    def test_clean_task_exception_is_not_retried(self):
        # A deterministic Python error would recur on retry; Pool.map
        # semantics: re-raise in the parent, zero retries burned.
        ex = SupervisedExecutor(workers=2, retry=FAST_RETRY)
        with pytest.raises(ValueError, match="three"):
            ex.map(_raise_on_three, range(6))
        assert ex.stats().get("executor.retries", 0) == 0


class TestCampaignUnderChaos:
    def test_crashed_worker_does_not_change_campaign_results(self,
                                                             marker_dir):
        """The acceptance contract: a campaign whose worker gets KILLed
        mid-flight reports byte-identical verdicts to an undisturbed one
        (tasks are pure functions of their seed; retries recompute)."""
        cfg = ChaosConfig(campaigns=4, seed=13, max_time=400.0)
        calm = run_campaign(cfg, workers=2)
        chaotic = run_campaign(
            cfg, executor=SupervisedExecutor(
                workers=2, retry=FAST_RETRY, fault_hook=_crash_task0_once))
        assert [v.summary() for v in calm.verdicts] == \
            [v.summary() for v in chaotic.verdicts]

    def test_worker_recycling_after_maxtasksperchild(self):
        ex = SupervisedExecutor(workers=2, maxtasksperchild=2,
                                retry=FAST_RETRY)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]
        assert ex.stats()["executor.workers_recycled"] >= 1
