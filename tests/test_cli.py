"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e12" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "e1"]) == 0
    out = capsys.readouterr().out
    assert "[E1]" in out and "PASS" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
