"""Tests for the CLI entry point."""

import json
import pstats

import pytest

from repro.cli import main


def _scenario_file(tmp_path, **overrides):
    spec = {"name": "cli-mini", "graph": "ring:3", "seed": 3,
            "max_time": 300.0}
    spec.update(overrides)
    path = tmp_path / "mini.json"
    path.write_text(json.dumps(spec))
    return str(path)


def _read_jsonl(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e12" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "e1"]) == 0
    out = capsys.readouterr().out
    assert "[E1]" in out and "PASS" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# -- the four normalized flags, one case per subcommand ----------------------


def test_scenario_normalized_flags(tmp_path, capsys):
    """scenario: --trace-sink/--metrics-out/--profile-out all take effect."""
    metrics = tmp_path / "m.jsonl"
    profile = tmp_path / "p.pstats"
    rc = main(["scenario", _scenario_file(tmp_path),
               "--trace-sink", "counters",
               "--metrics-out", str(metrics),
               "--profile-out", str(profile)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "metrics written to" in out
    (record,) = _read_jsonl(metrics)
    assert record["summary"]["name"] == "cli-mini"
    # counters sink = metrics-only run: no verdict in the record.
    assert record["summary"]["checked"] is False
    pstats.Stats(str(profile))  # valid cProfile dump


def test_sweep_normalized_flags(tmp_path, capsys):
    """sweep: --workers fanout is recorded per-seed in --metrics-out."""
    metrics = tmp_path / "m.jsonl"
    rc = main(["sweep", _scenario_file(tmp_path), "--seeds", "2",
               "--workers", "2", "--metrics-out", str(metrics)])
    assert rc == 0
    records = _read_jsonl(metrics)
    assert len(records) == 2
    assert len({r["summary"]["seed"] for r in records}) == 2
    assert "sweep: cli-mini" in capsys.readouterr().out


def test_chaos_normalized_flags(tmp_path, capsys):
    """chaos: shared flags compose with the campaign-specific ones."""
    metrics = tmp_path / "m.jsonl"
    profile = tmp_path / "p.pstats"
    rc = main(["chaos", "--campaigns", "2", "--seed", "5",
               "--max-time", "200", "--trace-sink", "counters",
               "--workers", "1",
               "--metrics-out", str(metrics),
               "--profile-out", str(profile)])
    assert rc == 0
    assert len(_read_jsonl(metrics)) == 2
    pstats.Stats(str(profile))
    capsys.readouterr()


def test_chaos_topology_flags(capsys):
    """chaos: --graphs/--pairs/--allow-disconnected select the sparse path."""
    rc = main(["chaos", "--campaigns", "2", "--seed", "3",
               "--graphs", "rgg:16:0.4:7", "tree:12:2",
               "--pairs", "neighbors", "--allow-disconnected",
               "--max-faulty", "1", "--max-time", "400"])
    assert rc == 0
    assert "2/2 passed" in capsys.readouterr().out


def test_chaos_bad_pairs_is_a_clean_cli_error(capsys):
    rc = main(["chaos", "--campaigns", "1", "--pairs", "everyone"])
    assert rc == 2
    assert "pair selection" in capsys.readouterr().err


def test_bench_scaling_writes_report(tmp_path, capsys):
    """bench --scaling: tiny curve lands in --out as valid JSON."""
    out = tmp_path / "scaling.json"
    rc = main(["bench", "--scaling", "--ns", "8", "16",
               "--workloads", "tree", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench.scaling.v1"
    points = payload["families"]["tree"]
    assert [p["n"] for p in points] == [8, 16]
    assert all(p["events_per_sec"] > 0 for p in points)
    assert "events/sec" in capsys.readouterr().out


def test_bench_scaling_unknown_family_is_a_clean_error(tmp_path, capsys):
    rc = main(["bench", "--scaling", "--workloads", "hypercube",
               "--out", str(tmp_path / "s.json")])
    assert rc == 2
    assert "hypercube" in capsys.readouterr().err


def test_run_normalized_flags(tmp_path, capsys):
    """run: --metrics-out writes experiment records; --trace-sink warns."""
    metrics = tmp_path / "m.jsonl"
    rc = main(["run", "e1", "--metrics-out", str(metrics),
               "--trace-sink", "counters"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "--trace-sink does not apply" in captured.err
    (record,) = _read_jsonl(metrics)
    assert record["name"] == "e1" and record["ok"] is True
