"""Tests for the CLI entry point."""

import json
import pstats

import pytest

from repro.cli import main


def _scenario_file(tmp_path, **overrides):
    spec = {"name": "cli-mini", "graph": "ring:3", "seed": 3,
            "max_time": 300.0}
    spec.update(overrides)
    path = tmp_path / "mini.json"
    path.write_text(json.dumps(spec))
    return str(path)


def _read_jsonl(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e12" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "e1"]) == 0
    out = capsys.readouterr().out
    assert "[E1]" in out and "PASS" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# -- the four normalized flags, one case per subcommand ----------------------


def test_scenario_normalized_flags(tmp_path, capsys):
    """scenario: --trace-sink/--metrics-out/--profile-out all take effect."""
    metrics = tmp_path / "m.jsonl"
    profile = tmp_path / "p.pstats"
    rc = main(["scenario", _scenario_file(tmp_path),
               "--trace-sink", "counters",
               "--metrics-out", str(metrics),
               "--profile-out", str(profile)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "metrics written to" in out
    (record,) = _read_jsonl(metrics)
    assert record["summary"]["name"] == "cli-mini"
    # counters sink = metrics-only run: no verdict in the record.
    assert record["summary"]["checked"] is False
    pstats.Stats(str(profile))  # valid cProfile dump


def test_sweep_normalized_flags(tmp_path, capsys):
    """sweep: --workers fanout is recorded per-seed in --metrics-out."""
    metrics = tmp_path / "m.jsonl"
    rc = main(["sweep", _scenario_file(tmp_path), "--seeds", "2",
               "--workers", "2", "--metrics-out", str(metrics)])
    assert rc == 0
    records = _read_jsonl(metrics)
    assert len(records) == 2
    assert len({r["summary"]["seed"] for r in records}) == 2
    assert "sweep: cli-mini" in capsys.readouterr().out


def test_chaos_normalized_flags(tmp_path, capsys):
    """chaos: shared flags compose with the campaign-specific ones."""
    metrics = tmp_path / "m.jsonl"
    profile = tmp_path / "p.pstats"
    rc = main(["chaos", "--campaigns", "2", "--seed", "5",
               "--max-time", "200", "--trace-sink", "counters",
               "--workers", "1",
               "--metrics-out", str(metrics),
               "--profile-out", str(profile)])
    assert rc == 0
    assert len(_read_jsonl(metrics)) == 2
    pstats.Stats(str(profile))
    capsys.readouterr()


def test_chaos_topology_flags(capsys):
    """chaos: --graphs/--pairs/--allow-disconnected select the sparse path."""
    rc = main(["chaos", "--campaigns", "2", "--seed", "3",
               "--graphs", "rgg:16:0.4:7", "tree:12:2",
               "--pairs", "neighbors", "--allow-disconnected",
               "--max-faulty", "1", "--max-time", "400"])
    assert rc == 0
    assert "2/2 passed" in capsys.readouterr().out


def test_chaos_bad_pairs_is_a_clean_cli_error(capsys):
    rc = main(["chaos", "--campaigns", "1", "--pairs", "everyone"])
    assert rc == 2
    assert "pair selection" in capsys.readouterr().err


def test_bench_scaling_writes_report(tmp_path, capsys):
    """bench --scaling: tiny curve lands in --out as valid JSON."""
    out = tmp_path / "scaling.json"
    rc = main(["bench", "--scaling", "--ns", "8", "16",
               "--workloads", "tree", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench.scaling.v1"
    points = payload["families"]["tree"]
    assert [p["n"] for p in points] == [8, 16]
    assert all(p["events_per_sec"] > 0 for p in points)
    assert "events/sec" in capsys.readouterr().out


def test_bench_scaling_unknown_family_is_a_clean_error(tmp_path, capsys):
    rc = main(["bench", "--scaling", "--workloads", "hypercube",
               "--out", str(tmp_path / "s.json")])
    assert rc == 2
    assert "hypercube" in capsys.readouterr().err


def test_run_normalized_flags(tmp_path, capsys):
    """run: --metrics-out writes experiment records; --trace-sink warns."""
    metrics = tmp_path / "m.jsonl"
    rc = main(["run", "e1", "--metrics-out", str(metrics),
               "--trace-sink", "counters"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "--trace-sink does not apply" in captured.err
    (record,) = _read_jsonl(metrics)
    assert record["name"] == "e1" and record["ok"] is True


# -- span export, timeline, and progress --------------------------------------


def test_scenario_spans_out_and_timeline(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    rc = main(["scenario", _scenario_file(tmp_path, crashes={"p1": 120.0}),
               "--spans-out", str(spans)])
    assert rc == 0
    assert "span records written to" in capsys.readouterr().out
    records = _read_jsonl(spans)
    assert records and all(r["schema"] == "repro.span.v1" for r in records)
    assert records[0]["run"]["seed"] == 3

    svg = tmp_path / "t.svg"
    assert main(["timeline", str(spans), "--svg-out", str(svg)]) == 0
    out = capsys.readouterr().out
    assert "timeline: cli-mini seed 3" in out
    assert "CDF |" in out
    assert svg.read_text().startswith("<svg")


def test_timeline_svg_byte_identical_between_renders(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    assert main(["chaos", "--campaigns", "2", "--seed", "5",
                 "--spans-out", str(spans)]) == 0
    capsys.readouterr()
    one, two = tmp_path / "one.svg", tmp_path / "two.svg"
    assert main(["timeline", str(spans), "--svg-out", str(one)]) == 0
    assert main(["timeline", str(spans), "--svg-out", str(two)]) == 0
    capsys.readouterr()
    assert one.read_bytes() == two.read_bytes()


def test_timeline_unknown_seed_is_clean_error(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    assert main(["scenario", _scenario_file(tmp_path),
                 "--spans-out", str(spans)]) == 0
    capsys.readouterr()
    assert main(["timeline", str(spans), "--seed", "999"]) == 2
    assert "available seeds" in capsys.readouterr().err


def test_timeline_empty_file_is_clean_error(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["timeline", str(empty)]) == 2
    assert "no repro.span.v1 records" in capsys.readouterr().err


def test_sweep_spans_out_collects_all_seeds(tmp_path, capsys):
    spans = tmp_path / "spans.jsonl"
    rc = main(["sweep", _scenario_file(tmp_path), "--seeds", "2",
               "--spans-out", str(spans)])
    assert rc == 0
    capsys.readouterr()
    seeds = {r["run"]["seed"] for r in _read_jsonl(spans)}
    assert len(seeds) == 2


def test_chaos_spans_out_identical_across_workers(tmp_path, capsys):
    serial, pooled = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
    assert main(["chaos", "--campaigns", "3", "--seed", "11",
                 "--spans-out", str(serial)]) == 0
    assert main(["chaos", "--campaigns", "3", "--seed", "11",
                 "--workers", "2", "--spans-out", str(pooled)]) == 0
    capsys.readouterr()
    assert serial.read_bytes() == pooled.read_bytes()


def test_chaos_progress_out_heartbeat(tmp_path, capsys):
    hb = tmp_path / "hb.jsonl"
    rc = main(["chaos", "--campaigns", "2", "--seed", "3",
               "--progress-out", str(hb)])
    assert rc == 0
    capsys.readouterr()
    lines = _read_jsonl(hb)
    assert lines[0]["schema"] == "repro.progress.v1"
    assert lines[-1]["done"] == 2 and lines[-1]["total"] == 2
    assert lines[-1]["converged"] + lines[-1]["unconverged"] == 2


def test_chaos_resume_extends_heartbeat_and_keeps_spans(tmp_path, capsys):
    hb = tmp_path / "hb.jsonl"
    store = tmp_path / "store"
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    assert main(["chaos", "--campaigns", "2", "--seed", "3", "--spans",
                 "--store", str(store), "--progress-out", str(hb),
                 "--spans-out", str(first)]) == 0
    assert main(["chaos", "--campaigns", "2", "--seed", "3", "--spans",
                 "--store", str(store), "--resume", "--progress-out",
                 str(hb), "--spans-out", str(second)]) == 0
    capsys.readouterr()
    # resumed campaign: byte-identical spans, appended heartbeat with
    # the second campaign served entirely from cache
    assert first.read_bytes() == second.read_bytes()
    lines = _read_jsonl(hb)
    assert lines[-1]["done"] == 2 and lines[-1]["cached"] == 2


def test_sweep_progress_flag_draws_live_line(tmp_path, capsys):
    rc = main(["sweep", _scenario_file(tmp_path), "--seeds", "2",
               "--progress"])
    assert rc == 0
    err = capsys.readouterr().err
    assert "\r" in err and "2/2 runs" in err


def test_spans_out_bad_path_fails_fast(tmp_path, capsys):
    rc = main(["chaos", "--campaigns", "1",
               "--spans-out", str(tmp_path)])   # a directory
    assert rc == 2
    assert "is a directory" in capsys.readouterr().err


def test_report_warns_on_records_without_metrics(tmp_path, capsys):
    path = tmp_path / "m.jsonl"
    path.write_text(json.dumps({"schema": "repro.run.v1",
                                "summary": {"ok": True},
                                "metrics": None}) + "\n")
    assert main(["report", str(path)]) == 0
    captured = capsys.readouterr()
    assert "warning: 1 record(s) without a usable metrics block" \
        in captured.err


# -- the campaign service commands (serve / submit / store ls) ----------------


def test_submit_against_embedded_service(tmp_path, capsys):
    """`repro submit` round-trips through a live service: queue, wait,
    resubmit as a cache hit."""
    from repro.service import EmbeddedService, ServiceConfig

    spec_path = _scenario_file(tmp_path)
    config = ServiceConfig(store_path=str(tmp_path / "store.jsonl"), port=0)
    with EmbeddedService(config) as (host, port):
        rc = main(["submit", spec_path, "--host", host,
                   "--port", str(port), "--wait"])
        first = capsys.readouterr()
        assert rc == 0
        assert "job j1 queued (run)" in first.out
        assert "job j1: done — 1/1 runs (0 cached, 0 failed)" in first.out

        rc = main(["submit", spec_path, "--host", host,
                   "--port", str(port), "--json"])
        second = capsys.readouterr()
        assert rc == 0
        resp = json.loads(second.out)
        assert resp["cached"] is True and resp["job"] is None


def test_submit_campaign_resubmit_is_all_cached(tmp_path, capsys):
    from repro.service import EmbeddedService, ServiceConfig

    spec_path = _scenario_file(tmp_path)
    config = ServiceConfig(store_path=str(tmp_path / "store.jsonl"), port=0)
    with EmbeddedService(config) as (host, port):
        args = ["submit", spec_path, "--host", host, "--port", str(port),
                "--campaign", "2", "--wait", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["final"]["done"] == 2 and first["final"]["cached"] == 0

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached_hint"] == 2
        assert second["final"]["cached"] == 2
        assert second["spec_keys"] == first["spec_keys"]


def test_submit_unreachable_service_fails_cleanly(tmp_path, capsys):
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    rc = main(["submit", _scenario_file(tmp_path), "--port", str(port)])
    assert rc == 2
    assert "unreachable" in capsys.readouterr().err


def test_submit_unreadable_spec_is_usage_error(tmp_path, capsys):
    rc = main(["submit", str(tmp_path / "missing.json")])
    assert rc == 2
    assert "cannot read spec" in capsys.readouterr().err


def test_store_ls_renders_table_and_counters(tmp_path, capsys):
    spec_path = _scenario_file(tmp_path)
    store = tmp_path / "store.jsonl"
    from repro.service import EmbeddedService, ServiceConfig

    with EmbeddedService(ServiceConfig(store_path=str(store),
                                       port=0)) as (host, port):
        assert main(["submit", spec_path, "--host", host,
                     "--port", str(port), "--wait"]) == 0
    capsys.readouterr()

    assert main(["store", "ls", str(store)]) == 0
    out = capsys.readouterr().out
    assert "store: " in out and "(1 result(s))" in out
    assert "cli-mini" in out
    assert "counters: hits 0, misses 0, puts 0, corrupt_lines 0" in out

    assert main(["store", "ls", str(store), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["entries"]) == 1
    entry = doc["entries"][0]
    assert entry["name"] == "cli-mini" and entry["ok"] is True
    assert len(entry["spec_key"]) == 64


def test_store_ls_missing_file_is_usage_error(tmp_path, capsys):
    rc = main(["store", "ls", str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "no store at" in capsys.readouterr().err


def test_serve_rejects_bad_config(tmp_path, capsys):
    rc = main(["serve", "--store", str(tmp_path / "s.jsonl"),
               "--queue-max", "0"])
    assert rc == 2
    assert "queue-max" in capsys.readouterr().err


# -- the comparison lattice (repro lattice) -----------------------------------


def test_chaos_detector_flag(capsys):
    rc = main(["chaos", "--campaigns", "1", "--seed", "3",
               "--max-time", "300", "--detector", "perfect"])
    assert rc == 0
    assert "chaos campaign: 1 runs" in capsys.readouterr().out
    # The replay recipe must carry the knob so failures reproduce under
    # the same detector.
    from repro.chaos import ChaosConfig
    assert "--detector perfect" in ChaosConfig(detector="perfect").cli_flags()


def test_chaos_unknown_detector_is_a_clean_cli_error(capsys):
    rc = main(["chaos", "--campaigns", "1", "--detector", "psychic"])
    assert rc == 2
    assert "registered detectors" in capsys.readouterr().err


def test_lattice_table_and_artifacts(tmp_path, capsys):
    out = tmp_path / "lattice.jsonl"
    svg = tmp_path / "grid.svg"
    rc = main(["lattice", "--graphs", "ring:4", "--seeds", "2",
               "--max-time", "400",
               "--detectors", "eventually_perfect", "flawed_cm",
               "--out", str(out), "--svg-out", str(svg)])
    text = capsys.readouterr().out
    assert rc == 0
    assert "detector lattice" in text and "dominance" in text
    assert "VIOLATED" in text  # flawed_cm's accuracy verdict
    recs = _read_jsonl(out)
    assert all(r["schema"] == "repro.lattice.v1" for r in recs)
    rows = {r["detector"]: r for r in recs if r["kind"] == "detector"}
    assert rows["eventually_perfect"]["ewx_ok"]
    assert not rows["flawed_cm"]["ewx_ok"]
    assert rows["flawed_cm"]["exclusion_violations"] > 0
    assert svg.read_text().startswith("<svg")


def test_lattice_json_mode(capsys):
    rc = main(["lattice", "--graphs", "ring:4", "--seeds", "1",
               "--max-time", "300", "--detectors", "perfect", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.lattice.v1"
    assert {r["detector"] for r in doc["records"]} == {"perfect"}


def test_lattice_workers_output_is_byte_identical(tmp_path, capsys):
    args = ["lattice", "--graphs", "ring:4", "--seeds", "2",
            "--max-time", "400", "--detectors", "perfect", "trusting"]
    assert main(args) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_lattice_unknown_detector_is_a_clean_cli_error(capsys):
    rc = main(["lattice", "--detectors", "psychic", "--seeds", "1"])
    assert rc == 2
    assert "registered detectors" in capsys.readouterr().err
