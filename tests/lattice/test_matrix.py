"""Unit tests for the lattice matrix layer, on synthetic run records."""

import pytest

from repro.errors import ConfigurationError
from repro.lattice.matrix import (
    EQ,
    GE,
    INCOMPARABLE,
    LATTICE_SCHEMA,
    LE,
    DetectorRow,
    LatticeCell,
    LatticeResult,
    cell_from_record,
    dominance_symbol,
)


def run_record(*, violations=0, last_violation_end=None, justified=True,
               checked=True, end_time=1000.0, label="boxfd",
               wrongful=0, churn=0, converged=None, seed=7,
               graph="ring:6", accuracy=True):
    """A minimal repro.run.v1-shaped record for cell_from_record."""
    counters = {}
    gauges = {}
    if wrongful:
        counters[f'oracle.wrongful_suspicions{{detector="{label}"}}'] = wrongful
        counters[f'oracle.suspicion_churn{{detector="{label}"}}'] = churn
    if converged is not None:
        gauges[f'oracle.converged_at{{detector="{label}"}}'] = converged
    return {
        "summary": {
            "checked": checked,
            "seed": seed,
            "end_time": end_time,
            "wait_free": True,
            "exclusion_violations": violations,
            "violations_justified": justified,
            "oracle_accuracy_ok": accuracy,
            "oracle_completeness_ok": True,
            "messages_sent": 100,
        },
        "verdict": {
            "run_seed": seed,
            "graph": graph,
            "last_violation_end": last_violation_end,
        },
        "metrics": {"counters": counters, "gauges": gauges},
    }


class TestCellVerdict:
    def test_clean_run_passes(self):
        cell = cell_from_record("d", "boxfd", run_record())
        assert cell.ewx_ok and cell.converged_at == 0.0

    def test_early_justified_violations_pass(self):
        # Violations that stop well before the horizon are the ◇WX shape.
        cell = cell_from_record("d", "boxfd", run_record(
            violations=3, last_violation_end=200.0))
        assert cell.ewx_ok

    def test_violation_in_quiet_suffix_fails(self):
        cell = cell_from_record("d", "boxfd", run_record(
            violations=3, last_violation_end=900.0))
        assert not cell.ewx_ok

    def test_quiet_fraction_is_tunable(self):
        rec = run_record(violations=1, last_violation_end=600.0)
        assert cell_from_record("d", "boxfd", rec).ewx_ok
        assert not cell_from_record("d", "boxfd", rec,
                                    quiet_fraction=0.5).ewx_ok

    def test_unjustified_violations_fail_even_when_quiet(self):
        cell = cell_from_record("d", "boxfd", run_record(
            violations=1, last_violation_end=100.0, justified=False))
        assert not cell.ewx_ok

    def test_unchecked_run_never_passes(self):
        cell = cell_from_record("d", "boxfd", run_record(checked=False))
        assert not cell.ewx_ok

    def test_pre_lattice_record_without_quiet_evidence_is_not_quiet(self):
        # Old stored verdicts lack last_violation_end: a violating run
        # must not silently pass the quiet-suffix condition.
        rec = run_record(violations=2)
        del rec["verdict"]["last_violation_end"]
        assert not cell_from_record("d", "boxfd", rec).ewx_ok

    def test_labeled_series_preferred_over_aggregates(self):
        rec = run_record(wrongful=5, churn=9, converged=120.0)
        rec["summary"]["wrongful_suspicions"] = 999  # aggregate decoy
        cell = cell_from_record("d", "boxfd", rec)
        assert cell.wrongful_suspicions == 5
        assert cell.suspicion_churn == 9
        assert cell.converged_at == 120.0

    def test_open_wrongful_suspicion_means_never_converged(self):
        # A labeled wrongful count with no converged gauge = still wrong
        # at the horizon.
        cell = cell_from_record("d", "omega", run_record(
            label="omega", wrongful=4, churn=4))
        assert cell.converged_at is None

    def test_to_record_shape(self):
        rec = cell_from_record("d", "boxfd", run_record()).to_record()
        assert rec["schema"] == LATTICE_SCHEMA and rec["kind"] == "cell"
        assert rec["detector"] == "d" and rec["run_seed"] == 7


class TestDominance:
    def test_symbols(self):
        a, b = frozenset({1, 2}), frozenset({1})
        assert dominance_symbol(a, a) == EQ
        assert dominance_symbol(a, b) == GE
        assert dominance_symbol(b, a) == LE
        assert dominance_symbol(frozenset({1}), frozenset({2})) \
            == INCOMPARABLE


def _row(name, seeds_pass, seeds_fail=()):
    row = DetectorRow(name=name, label="boxfd", summary=name)
    for s in seeds_pass:
        row.cells.append(cell_from_record(
            name, "boxfd", run_record(seed=s)))
    for s in seeds_fail:
        row.cells.append(cell_from_record(
            name, "boxfd", run_record(seed=s, violations=1,
                                      last_violation_end=990.0)))
    return row


class TestLatticeResult:
    def result(self):
        return LatticeResult(
            rows=[_row("dp", [1, 2]), _row("weak", [1], [2])],
            graphs=["ring:6"], seeds=2, seed=0)

    def test_row_lookup(self):
        res = self.result()
        assert res.row("dp").ewx_ok
        assert not res.row("weak").ewx_ok
        with pytest.raises(KeyError):
            res.row("nope")

    def test_dominance_grid(self):
        grid = self.result().dominance()
        assert grid[("dp", "weak")] == GE
        assert grid[("weak", "dp")] == LE
        assert grid[("dp", "dp")] == EQ

    def test_records_cells_then_aggregates(self):
        recs = self.result().to_records()
        kinds = [r["kind"] for r in recs]
        assert kinds == ["cell"] * 4 + ["detector"] * 2
        agg = {r["detector"]: r for r in recs if r["kind"] == "detector"}
        assert agg["dp"]["ewx_passes"] == 2 and agg["dp"]["ewx_ok"]
        assert agg["weak"]["ewx_passes"] == 1 and not agg["weak"]["ewx_ok"]

    def test_render_is_deterministic(self):
        res = self.result()
        text = res.render()
        assert text == self.result().render()
        assert "dp" in text and "2/2" in text and "1/2" in text
        assert ">=" in text  # the dominance grid rides along

    def test_svg_grid(self):
        svg = self.result().to_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "dp (2/2)" in svg and "weak (1/2)" in svg
        assert "&gt;=" in svg  # symbols are XML-escaped

    def test_mean_convergence_requires_all_seeds(self):
        row = _row("dp", [1, 2])
        assert row.mean_convergence() == 0.0
        open_cell = cell_from_record("dp", "omega", run_record(
            label="omega", wrongful=1, churn=1, seed=3))
        row.cells.append(open_cell)
        assert row.mean_convergence() is None
