"""Ω derived from dining: the sound extraction stabilizes, the flawed
one keeps flapping — the corrigendum's contrast at the leader level."""

import pytest

from repro.experiments.common import build_system, deferred_box, wf_box
from repro.lattice import (
    build_flawed_omega_extraction,
    build_omega_extraction,
    final_leader,
    leader_stability_spans,
)
from repro.oracles.properties import check_leader_agreement
from repro.sim.faults import CrashSchedule

PIDS = ["p1", "p2", "p3"]


def run_extraction(builder, box, crash=None, seed=11, max_time=2000.0):
    system = build_system(PIDS, seed=seed, max_time=max_time, crash=crash)
    electors = builder(system.engine, PIDS, box(system))
    system.engine.run()
    return system, electors


class TestSoundExtraction:
    def test_leaders_agree_on_smallest_correct(self):
        system, electors = run_extraction(build_omega_extraction, wf_box)
        report = check_leader_agreement(system.engine.trace, PIDS,
                                        system.schedule)
        assert report.ok
        for pid in PIDS:
            assert final_leader(system.engine.trace, pid) == "p1"
            assert electors[pid].leader == "p1"

    def test_crash_of_leader_forces_reelection(self):
        crash = CrashSchedule({"p1": 600.0})
        system, _ = run_extraction(build_omega_extraction, wf_box,
                                   crash=crash)
        correct = [p for p in PIDS if p != "p1"]
        report = check_leader_agreement(system.engine.trace, PIDS,
                                        system.schedule)
        assert report.ok
        for pid in correct:
            assert final_leader(system.engine.trace, pid) == "p2"

    def test_stability_spans_end_with_an_unbounded_suffix(self):
        system, _ = run_extraction(build_omega_extraction, wf_box)
        end = system.engine.now
        for pid in PIDS:
            spans = leader_stability_spans(system.engine.trace, pid, end)
            assert spans, f"{pid} never elected a leader"
            leader, start, stop = spans[-1]
            assert leader == "p1" and stop == end
            # The final span must cover a real suffix, not a last-moment
            # flip.
            assert stop - start > 100.0


class TestFlawedExtraction:
    def test_flawed_leader_never_stabilizes(self):
        # Over the adversarial-but-legal deferred box, the [8] extraction
        # wrongfully suspects forever, so the derived leader keeps
        # flapping: many short spans all the way to the horizon, against
        # the sound extraction's single long suffix.
        sound, _ = run_extraction(build_omega_extraction, wf_box)
        flawed, _ = run_extraction(build_flawed_omega_extraction,
                                   deferred_box)
        end_s, end_f = sound.engine.now, flawed.engine.now

        def last_span_len(system, end):
            spans = leader_stability_spans(system.engine.trace, "p2", end)
            assert spans
            leader, start, stop = spans[-1]
            return stop - start, len(spans)

        sound_len, sound_spans = last_span_len(sound, end_s)
        flawed_len, flawed_spans = last_span_len(flawed, end_f)
        assert flawed_spans > sound_spans
        assert sound_len > flawed_len

    def test_flawed_flapping_continues_into_the_suffix(self):
        system, _ = run_extraction(build_flawed_omega_extraction,
                                   deferred_box)
        end = system.engine.now
        # p1 trivially elects itself forever (it never self-suspects);
        # the flapping shows at the owners above it in the id order.
        spans = leader_stability_spans(system.engine.trace, "p3", end)
        # Leader changes keep happening in the last quarter of the run —
        # the quiet-suffix condition the lattice checks can never hold.
        late = [s for s in spans if s[1] > end * 0.75]
        assert len(late) >= 2
