"""The comparison campaign runner, end to end on small scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.lattice import compare, lattice_config
from repro.runtime.store import ResultStore


class TestValidation:
    def test_no_detectors_rejected(self):
        with pytest.raises(ConfigurationError, match="no detectors"):
            compare(detectors=[])

    def test_unknown_detector_rejected(self):
        with pytest.raises(ConfigurationError, match="registered detectors"):
            compare(detectors=["psychic"])

    def test_params_for_unselected_detector_rejected(self):
        with pytest.raises(ConfigurationError, match="unselected"):
            compare(detectors=["perfect"],
                    detector_params={"omega": {}})

    def test_nonpositive_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="seeds"):
            compare(detectors=["perfect"], seeds=0)

    def test_lattice_config_is_benign_chaos(self):
        cfg = lattice_config("omega", graphs=("ring:6",), seeds=4, seed=0,
                             max_time=600.0, client="periodic",
                             drop_max=0.1, pairs="all")
        assert cfg.detector == "omega"
        assert cfg.partition_prob == 0.0 and cfg.duplicate_max == 0.0


class TestCompare:
    # Two detectors are enough to exercise the full pipeline: the
    # positive reference (◇P) and the corrigendum's negative one.
    NAMES = ["eventually_perfect", "flawed_cm"]

    def run(self, **kw):
        kw.setdefault("graphs", ("ring:4",))
        kw.setdefault("seeds", 2)
        kw.setdefault("max_time", 400.0)
        return compare(detectors=self.NAMES, **kw)

    def test_canonical_verdict_shape(self):
        res = self.run()
        dp = res.row("eventually_perfect")
        flawed = res.row("flawed_cm")
        assert dp.ewx_ok and dp.accuracy_ok
        assert not flawed.ewx_ok and flawed.ewx_failures
        assert not flawed.accuracy_ok
        assert flawed.violations_total > 0

    def test_identical_scenarios_across_detectors(self):
        # The detector knob must not perturb scenario generation: both
        # rows see the same (graph, seed) cells.
        res = self.run()
        keys = [[(c.graph, c.run_seed) for c in r.cells] for r in res.rows]
        assert keys[0] == keys[1]

    def test_parallel_is_bit_identical_to_serial(self):
        serial = self.run()
        parallel = self.run(workers=2)
        assert serial.to_records() == parallel.to_records()
        assert serial.render() == parallel.render()

    def test_store_resume_serves_cached_cells(self, tmp_path):
        path = tmp_path / "lattice.store.jsonl"
        first = compare(detectors=["perfect"], graphs=("ring:4",),
                        seeds=2, max_time=400.0,
                        store=ResultStore(path))
        store = ResultStore(path)
        again = compare(detectors=["perfect"], graphs=("ring:4",),
                        seeds=2, max_time=400.0, store=store, resume=True)
        assert store.stats().get("store.hits", 0) >= 2
        assert first.to_records() == again.to_records()

    def test_on_result_streams_completions(self):
        seen = []
        self.run(on_result=lambda name, i, v, cached:
                 seen.append((name, i, cached)))
        assert len(seen) == 4  # 2 detectors x 2 seeds
        assert {n for n, _, _ in seen} == set(self.NAMES)

    def test_detector_params_flow_through(self):
        res = compare(detectors=["eventually_perfect"], graphs=("ring:4",),
                      seeds=1, max_time=400.0,
                      detector_params={"eventually_perfect":
                                       {"initial_timeout": 30}})
        base = compare(detectors=["eventually_perfect"], graphs=("ring:4",),
                       seeds=1, max_time=400.0)
        tuned_cell = res.rows[0].cells[0]
        base_cell = base.rows[0].cells[0]
        # A slower initial timeout cannot *increase* wrongful suspicions.
        assert tuned_cell.wrongful_suspicions \
            <= base_cell.wrongful_suspicions
