"""Unit tests for Figure-1 session analysis."""

import pytest

from repro.analysis.sessions import (
    check_handoff_overlap,
    check_witness_throttling,
    render_ascii_timeline,
    sessions_after,
)


class TestSessionsAfter:
    def test_filters_by_start(self):
        ivs = [(1.0, 2.0), (5.0, 6.0)]
        assert sessions_after(ivs, 3.0) == [(5.0, 6.0)]

    def test_boundary_inclusive(self):
        assert sessions_after([(3.0, 4.0)], 3.0) == [(3.0, 4.0)]


class TestThrottling:
    def test_ok_subject_between_witness_sessions(self):
        witness = [(0.0, 1.0), (4.0, 5.0), (8.0, 9.0)]
        subject = [(2.0, 3.0), (6.0, 7.0)]
        ok, checked = check_witness_throttling(witness, subject, after=0.0)
        assert ok and checked == 2

    def test_fails_without_intervening_subject(self):
        witness = [(0.0, 1.0), (2.0, 3.0)]
        subject = [(10.0, 11.0)]
        ok, _ = check_witness_throttling(witness, subject, after=0.0)
        assert not ok

    def test_suffix_restriction(self):
        # Violation in the prefix, clean suffix.
        witness = [(0.0, 1.0), (2.0, 3.0), (10.0, 11.0), (14.0, 15.0)]
        subject = [(12.0, 13.0)]
        assert not check_witness_throttling(witness, subject, after=0.0)[0]
        assert check_witness_throttling(witness, subject, after=9.0)[0]

    def test_single_session_trivially_ok(self):
        ok, checked = check_witness_throttling([(1.0, 2.0)], [], after=0.0)
        assert ok and checked == 0


class TestHandoff:
    def test_ok_when_sessions_overlap_pairwise(self):
        s0 = [(0.0, 4.0), (6.0, 10.0)]
        s1 = [(3.0, 7.0), (9.0, 13.0)]
        ok, checked = check_handoff_overlap(s0, s1, after=0.0)
        assert ok and checked == 4

    def test_fails_on_isolated_session(self):
        s0 = [(0.0, 1.0)]
        s1 = [(5.0, 6.0)]
        assert not check_handoff_overlap(s0, s1, after=0.0)[0]

    def test_suffix_restriction(self):
        s0 = [(0.0, 1.0), (6.0, 10.0)]
        s1 = [(9.0, 12.0)]
        assert not check_handoff_overlap(s0, s1, after=0.0)[0]
        assert check_handoff_overlap(s0, s1, after=5.0)[0]


class TestRender:
    def test_rows_and_ruler(self):
        out = render_ascii_timeline({"a": [(0.0, 5.0)], "b": []},
                                    0.0, 10.0, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert "█" in lines[0] and "█" not in lines[1]

    def test_full_interval_fills_row(self):
        out = render_ascii_timeline({"a": [(0.0, 10.0)]}, 0.0, 10.0, width=10)
        assert out.splitlines()[0].count("█") == 10

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            render_ascii_timeline({}, 5.0, 5.0)

    def test_fixed_width(self):
        out = render_ascii_timeline({"x": [(1.0, 2.0)]}, 0.0, 4.0, width=40)
        row = out.splitlines()[0]
        assert row.count("█") + row.count("·") == 40
