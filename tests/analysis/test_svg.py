"""Tests for the SVG timeline renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import render_svg_timeline, save_svg
from repro.errors import ConfigurationError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str):
    return ET.fromstring(svg)


def test_output_is_wellformed_xml():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    root = parse(svg)
    assert root.tag == f"{SVG_NS}svg"


def test_one_rect_per_interval_plus_background():
    svg = render_svg_timeline({"a": [(1.0, 2.0), (4.0, 5.0)], "b": []},
                              0.0, 10.0)
    root = parse(svg)
    rects = root.findall(f"{SVG_NS}rect")
    assert len(rects) == 1 + 2   # background + two sessions


def test_intervals_outside_window_clipped_away():
    svg = render_svg_timeline({"a": [(100.0, 200.0)]}, 0.0, 10.0)
    root = parse(svg)
    assert len(root.findall(f"{SVG_NS}rect")) == 1   # background only


def test_partial_overlap_clipped_to_window():
    svg = render_svg_timeline({"a": [(8.0, 20.0)]}, 0.0, 10.0, width=900,
                              label_width=100)
    root = parse(svg)
    session = root.findall(f"{SVG_NS}rect")[1]
    x = float(session.get("x"))
    w = float(session.get("width"))
    assert x + w <= 900 - 20 + 1e-6


def test_title_and_marker_rendered():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0,
                              title="T <escaped>", marker=5.0,
                              marker_label="conv")
    assert "T &lt;escaped&gt;" in svg
    assert "conv" in svg
    assert "stroke-dasharray" in svg


def test_empty_window_rejected():
    with pytest.raises(ConfigurationError):
        render_svg_timeline({"a": []}, 5.0, 5.0)


def test_no_tracks_rejected():
    with pytest.raises(ConfigurationError):
        render_svg_timeline({}, 0.0, 10.0)


def test_save_svg_roundtrip(tmp_path):
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    path = save_svg(svg, tmp_path / "nested" / "fig.svg")
    assert path.exists()
    parse(path.read_text())


def test_axis_has_six_tick_labels():
    svg = render_svg_timeline({"a": []}, 0.0, 100.0)
    root = parse(svg)
    labels = [t.text for t in root.findall(f"{SVG_NS}text")]
    assert sum(1 for x in labels if x and x.isdigit()) == 6


def test_zero_length_interval_skipped():
    svg = render_svg_timeline({"a": [(3.0, 3.0)]}, 0.0, 10.0)
    root = parse(svg)
    assert len(root.findall(f"{SVG_NS}rect")) == 1   # background only


def test_marker_beyond_window_omitted():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0,
                              marker=50.0, marker_label="late")
    assert "late" not in svg
    assert "stroke-dasharray" not in svg


def test_byte_identical_across_renders():
    tracks = {"a": [(1.0, 2.0), (4.0, 5.5)], "b": [(0.5, 9.0)]}
    one = render_svg_timeline(tracks, 0.0, 10.0, title="t", marker=5.0)
    two = render_svg_timeline(dict(tracks), 0.0, 10.0, title="t", marker=5.0)
    assert one == two


def test_kind_colors_style_styled_intervals():
    svg = render_svg_timeline(
        {"a": [(1.0, 2.0, "wrongful"), (3.0, 4.0)]}, 0.0, 10.0,
        kind_colors={"wrongful": "#c0392b"})
    root = parse(svg)
    fills = [r.get("fill") for r in root.findall(f"{SVG_NS}rect")]
    assert "#c0392b" in fills
    # the unstyled interval keeps the default palette colour
    assert len([f for f in fills if f == "#c0392b"]) == 1


def test_unknown_kind_falls_back_to_track_color():
    plain = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    styled = render_svg_timeline({"a": [(1.0, 2.0, "mystery")]}, 0.0, 10.0,
                                 kind_colors={"wrongful": "#c0392b"})
    assert plain == styled


def test_cdf_panel_renders_steps():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0,
                              cdf=[(2.0, 0.5), (6.0, 1.0)],
                              cdf_label="convergence CDF")
    assert "polyline" in svg
    assert "convergence CDF" in svg


def test_cdf_alone_without_tracks_allowed():
    svg = render_svg_timeline({}, 0.0, 10.0, cdf=[(5.0, 1.0)])
    parse(svg)
    assert "polyline" in svg


def test_default_render_unchanged_by_new_parameters():
    # Opt-in extensions must not perturb the legacy default output.
    base = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    explicit = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0,
                                   kind_colors=None, cdf=None)
    assert base == explicit
