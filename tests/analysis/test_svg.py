"""Tests for the SVG timeline renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import render_svg_timeline, save_svg
from repro.errors import ConfigurationError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str):
    return ET.fromstring(svg)


def test_output_is_wellformed_xml():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    root = parse(svg)
    assert root.tag == f"{SVG_NS}svg"


def test_one_rect_per_interval_plus_background():
    svg = render_svg_timeline({"a": [(1.0, 2.0), (4.0, 5.0)], "b": []},
                              0.0, 10.0)
    root = parse(svg)
    rects = root.findall(f"{SVG_NS}rect")
    assert len(rects) == 1 + 2   # background + two sessions


def test_intervals_outside_window_clipped_away():
    svg = render_svg_timeline({"a": [(100.0, 200.0)]}, 0.0, 10.0)
    root = parse(svg)
    assert len(root.findall(f"{SVG_NS}rect")) == 1   # background only


def test_partial_overlap_clipped_to_window():
    svg = render_svg_timeline({"a": [(8.0, 20.0)]}, 0.0, 10.0, width=900,
                              label_width=100)
    root = parse(svg)
    session = root.findall(f"{SVG_NS}rect")[1]
    x = float(session.get("x"))
    w = float(session.get("width"))
    assert x + w <= 900 - 20 + 1e-6


def test_title_and_marker_rendered():
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0,
                              title="T <escaped>", marker=5.0,
                              marker_label="conv")
    assert "T &lt;escaped&gt;" in svg
    assert "conv" in svg
    assert "stroke-dasharray" in svg


def test_empty_window_rejected():
    with pytest.raises(ConfigurationError):
        render_svg_timeline({"a": []}, 5.0, 5.0)


def test_no_tracks_rejected():
    with pytest.raises(ConfigurationError):
        render_svg_timeline({}, 0.0, 10.0)


def test_save_svg_roundtrip(tmp_path):
    svg = render_svg_timeline({"a": [(1.0, 2.0)]}, 0.0, 10.0)
    path = save_svg(svg, tmp_path / "nested" / "fig.svg")
    assert path.exists()
    parse(path.read_text())


def test_axis_has_six_tick_labels():
    svg = render_svg_timeline({"a": []}, 0.0, 100.0)
    root = parse(svg)
    labels = [t.text for t in root.findall(f"{SVG_NS}text")]
    assert sum(1 for x in labels if x and x.isdigit()) == 6
