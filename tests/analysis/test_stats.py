"""Tests for seed-sweep statistics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import SweepStats, sweep, sweep_many


def test_basic_stats():
    s = SweepStats("x", (1.0, 2.0, 3.0))
    assert s.n == 3 and s.mean == 2.0
    assert s.min == 1.0 and s.max == 3.0
    assert s.std == 1.0


def test_single_value_std_zero():
    assert SweepStats("x", (5.0,)).std == 0.0


def test_empty_stats_are_nan():
    s = SweepStats("x", ())
    assert math.isnan(s.mean) and s.n == 0


def test_summary_format():
    text = SweepStats("x", (1.0, 3.0)).summary()
    assert "±" in text and "(n=2)" in text


def test_sweep_skips_none():
    s = sweep(lambda seed: None if seed % 2 else float(seed), range(6))
    assert s.values == (0.0, 2.0, 4.0)


def test_sweep_many_aggregates_per_metric():
    stats = sweep_many(
        lambda seed: {"a": float(seed), "b": None if seed == 0 else 1.0},
        [0, 1, 2],
    )
    assert stats["a"].n == 3
    assert stats["b"].n == 2


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
def test_min_le_mean_le_max(values):
    s = SweepStats("x", tuple(values))
    assert s.min <= s.mean <= s.max or math.isclose(s.min, s.max)
