"""Unit tests for the table formatter."""

import pytest

from repro.analysis.report import Table


def test_renders_header_and_rows():
    t = Table(["name", "ok"])
    t.add_row(["alpha", True])
    out = t.render()
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "alpha" in lines[2] and "yes" in lines[2]


def test_title_rendered_first():
    t = Table(["a"], title="My Table")
    t.add_row([1])
    assert t.render().splitlines()[0] == "My Table"


def test_column_count_enforced():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_float_formatting():
    t = Table(["x"])
    t.add_row([3.14159])
    assert "3.14" in t.render()


def test_bool_and_none_formatting():
    t = Table(["x", "y"])
    t.add_row([False, None])
    body = t.render().splitlines()[-1]
    assert "no" in body and "-" in body


def test_columns_aligned():
    t = Table(["col"])
    t.add_row(["short"])
    t.add_row(["a-much-longer-cell"])
    lines = t.render().splitlines()
    assert len(lines[-1]) == len(lines[-2])


def test_empty_table_renders_header_only():
    t = Table(["a", "b"])
    out = t.render()
    assert len(out.splitlines()) == 2
