"""Integration tests for the ◇P-based WF-◇WX dining algorithm."""

import pytest

from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import clique, pair_graph, ring, star
from repro.sim.faults import CrashSchedule
from tests.dining.helpers import INSTANCE, run_dining


def assert_wait_free(eng, sched, graph, grace=80.0):
    rep = check_wait_freedom(eng.trace, graph, INSTANCE, sched, eng.now,
                             grace=grace)
    assert rep.ok, rep.format_table()
    return rep


def assert_eventually_exclusive(eng, sched, graph, by_fraction=0.7):
    rep = check_exclusion(eng.trace, graph, INSTANCE, sched, eng.now)
    assert rep.eventually_exclusive_by(eng.now * by_fraction), \
        rep.format_table()
    return rep


class TestFailureFree:
    def test_pair_alternates(self):
        g = pair_graph("a", "b")
        eng, sched, _, diners = run_dining(g, seed=10)
        wf = assert_wait_free(eng, sched, g)
        assert all(n > 10 for n in wf.sessions.values())
        assert_eventually_exclusive(eng, sched, g)

    def test_ring(self):
        g = ring(5)
        eng, sched, _, _ = run_dining(g, seed=11)
        wf = assert_wait_free(eng, sched, g)
        assert all(n > 5 for n in wf.sessions.values())
        assert_eventually_exclusive(eng, sched, g)

    def test_clique(self):
        g = clique(4)
        eng, sched, _, _ = run_dining(g, seed=12)
        assert_wait_free(eng, sched, g)
        assert_eventually_exclusive(eng, sched, g)

    def test_star_hub_not_starved(self):
        g = star(4)
        eng, sched, _, _ = run_dining(g, seed=13, max_time=1500.0)
        wf = assert_wait_free(eng, sched, g, grace=150.0)
        assert wf.sessions["hub"] > 3


class TestWithCrashes:
    def test_single_crash_on_ring(self):
        g = ring(4)
        sched = CrashSchedule.single("p1", 400.0)
        eng, sched, _, _ = run_dining(g, seed=14, crash=sched)
        assert_wait_free(eng, sched, g)
        assert_eventually_exclusive(eng, sched, g)

    def test_crash_while_eating_does_not_block_neighbors(self):
        # p1 crashes early; neighbors must keep eating via suspicion.
        g = ring(4)
        sched = CrashSchedule.single("p1", 60.0)
        eng, sched, _, _ = run_dining(g, seed=15, crash=sched,
                                      max_time=1500.0)
        wf = assert_wait_free(eng, sched, g)
        for pid in ("p0", "p2", "p3"):
            assert wf.sessions[pid] > 10

    def test_multiple_crashes_on_clique(self):
        g = clique(5)
        sched = CrashSchedule({"p0": 200.0, "p3": 500.0})
        eng, sched, _, _ = run_dining(g, seed=16, crash=sched,
                                      max_time=2000.0)
        assert_wait_free(eng, sched, g, grace=150.0)
        assert_eventually_exclusive(eng, sched, g)

    def test_all_but_one_crash(self):
        g = ring(3)
        sched = CrashSchedule({"p1": 150.0, "p2": 300.0})
        eng, sched, _, diners = run_dining(g, seed=17, crash=sched,
                                           max_time=1500.0)
        wf = assert_wait_free(eng, sched, g)
        assert wf.sessions["p0"] > 20   # survivor keeps cycling alone


class TestTokenDiscipline:
    """The hygienic invariants: one fork + one token per edge."""

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_fork_token_conservation(self, seed):
        g = ring(4)
        eng, sched, inst, diners = run_dining(g, seed=seed, max_time=600.0)
        # At quiescence-ish end of run, for every edge: the fork is held by
        # exactly one side or in transit; never duplicated.
        in_flight = eng.network.sent - eng.network.delivered
        for u, v in g.edges:
            forks = int(diners[u].fork[v]) + int(diners[v].fork[u])
            tokens = int(diners[u].token[v]) + int(diners[v].token[u])
            assert forks <= 1, f"duplicated fork on edge {u}-{v}"
            assert tokens <= 1, f"duplicated token on edge {u}-{v}"
            if in_flight == 0:
                assert forks == 1 and tokens == 1

    def test_initial_orientation_lower_id_holds_dirty_fork(self):
        g = pair_graph("a", "b")
        eng, _, inst, diners = run_dining(g, seed=23, max_time=0.0,
                                          attach_clients=False)
        assert diners["a"].fork["b"] and diners["a"].dirty["b"]
        assert not diners["b"].fork["a"] and diners["b"].token["a"]
        assert not diners["a"].token["b"]

    def test_suspicion_override_lets_diner_eat_without_fork(self):
        # b crashes holding nothing; a's fork for edge is with a... make a
        # crash instead: a holds the initial fork; b must eat via suspicion.
        g = pair_graph("a", "b")
        sched = CrashSchedule.single("a", 40.0)
        eng, sched, _, diners = run_dining(g, seed=24, crash=sched,
                                           max_time=1000.0)
        wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                grace=80.0)
        assert wf.ok
        assert wf.sessions["b"] > 5


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        g = ring(4)
        runs = []
        for _ in range(2):
            eng, sched, _, _ = run_dining(g, seed=30, max_time=400.0)
            rows = [(r.time, r.pid, r["state"])
                    for r in eng.trace.records(kind="state")]
            runs.append(rows)
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        g = ring(4)
        eng1, *_ = run_dining(g, seed=31, max_time=400.0)
        eng2, *_ = run_dining(g, seed=32, max_time=400.0)
        r1 = [(r.time, r.pid) for r in eng1.trace.records(kind="state")]
        r2 = [(r.time, r.pid) for r in eng2.trace.records(kind="state")]
        assert r1 != r2


@pytest.mark.parametrize("seed", range(40, 46))
def test_property_sweep_wait_freedom_and_eventual_exclusion(seed):
    """Across random crash schedules, both dining properties hold."""
    import numpy as np

    g = ring(4)
    rng = np.random.default_rng(seed)
    sched = CrashSchedule.random(sorted(g.nodes), max_faulty=2,
                                 horizon=500.0, rng=rng)
    eng, sched, _, _ = run_dining(g, seed=seed, crash=sched, max_time=1600.0)
    assert_wait_free(eng, sched, g, grace=150.0)
    rep = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
    # ◇WX: no violations in the last quarter of the run.
    assert rep.eventually_exclusive_by(eng.now * 0.75), rep.format_table()


class TestStaleGrantRegression:
    """Regression: a fork granted for an already-satisfied request must land
    dirty.  Before the fix, a diner that ate via suspicion and got hungry
    again would receive the late fork CLEAN, granting it priority over a
    neighbor that ate less recently — corrupting the hygienic precedence
    order into clean-fork deadlock cycles (observed on ring(3), seed 8,
    via the fairness wrapper)."""

    def test_ring3_seed8_no_deadlock(self):
        from repro.dining.client import EagerClient
        from repro.dining.fair_wrapper import FairDining
        from repro.experiments.common import build_system
        from repro.graphs import ring as ring_graph

        g = ring_graph(3)
        pids = sorted(g.nodes)
        system = build_system(pids, seed=8, max_time=800.0)
        from repro.dining.wf_ewx import WaitFreeEWXDining as Box

        inner = lambda iid, gr: Box(iid, gr, system.provider)  # noqa: E731
        inst = FairDining("SCENARIO", g, inner, system.provider, k=2)
        diners = inst.attach(system.engine)
        for pid in pids:
            system.engine.process(pid).add_component(
                EagerClient("client", diners[pid], eat_steps=2))
        system.engine.run()
        assert all(d.sessions_eaten > 5 for d in diners.values())

    def test_stale_fork_lands_dirty(self):
        """Unit-level: a fork answering a previous session's request is
        dirty on arrival even if the diner is hungry again."""
        from repro.graphs import pair_graph
        from repro.types import DinerState, Message
        from tests.conftest import make_engine
        from repro.dining.wf_ewx import WaitFreeEWXDining

        eng = make_engine()
        eng.add_process("a")
        eng.add_process("b")
        inst = WaitFreeEWXDining("DX", pair_graph("a", "b"),
                                 lambda pid: (lambda q: True))  # suspect all
        diners = inst.attach(eng)
        b = diners["b"]   # b starts without the fork, with the token
        b.become_hungry()
        b.request_missing_forks()          # request in session 0
        b.enter_critical_section()         # eats via suspicion, no fork
        b.exit_eating()
        b.finish_exiting()
        b.become_hungry()                  # session 1
        # The stale grant for session 0 arrives now.
        b.on_fork(Message("a", "b", "DX:diner", "fork"))
        assert b.fork["a"] and b.dirty["a"]

    def test_current_session_fork_lands_clean(self):
        from repro.graphs import pair_graph
        from repro.types import Message
        from tests.conftest import make_engine
        from repro.dining.wf_ewx import WaitFreeEWXDining

        eng = make_engine()
        eng.add_process("a")
        eng.add_process("b")
        inst = WaitFreeEWXDining("DX", pair_graph("a", "b"),
                                 lambda pid: (lambda q: False))
        diners = inst.attach(eng)
        b = diners["b"]
        b.become_hungry()
        b.request_missing_forks()
        b.on_fork(Message("a", "b", "DX:diner", "fork"))
        assert b.fork["a"] and not b.dirty["a"]


class TestMealRecencyRule:
    """The clean/dirty decision on fork arrival follows meal recency: the
    fork lands clean only at a hungry receiver that has eaten *less
    recently* than the sender (never-eaten oldest; then earlier last-meal
    time; pid as a tie-break matching the initial orientation).  Found by
    the chaos runner: the session-bookkeeping rule this replaces let a
    late-arriving fork grant priority to the *more* recent eater, closing
    clean-fork cycles into deadlock (run seed 321059914)."""

    @staticmethod
    def make_pair(suspect=False):
        from repro.graphs import pair_graph
        from tests.conftest import make_engine
        from repro.dining.wf_ewx import WaitFreeEWXDining

        eng = make_engine()
        eng.add_process("a")
        eng.add_process("b")
        inst = WaitFreeEWXDining("DX", pair_graph("a", "b"),
                                 lambda pid: (lambda q: suspect))
        return inst.attach(eng)

    def test_recent_eater_gets_fork_dirty_despite_fresh_request(self):
        """The chaos-bug shape: b ate (via suspicion), is hungry again,
        and has a live request outstanding — but a, the fork's sender, has
        never eaten, so the fork must still land dirty at b."""
        from repro.types import Message

        diners = self.make_pair(suspect=True)
        b = diners["b"]
        b.become_hungry()
        b.request_missing_forks()
        b.enter_critical_section()      # eats via suspicion override
        b.exit_eating()
        b.finish_exiting()
        b.become_hungry()
        b.request_missing_forks()       # fresh request, current session
        b.on_fork(Message("a", "b", "DX:diner", "fork",
                          payload={"last_meal": (0, 0.0)}))
        assert b.fork["a"] and b.dirty["a"]

    def test_older_eater_gets_fork_clean(self):
        """Symmetric case: the sender ate more recently, so the hungry
        receiver outranks it and the fork lands clean."""
        from repro.types import Message

        diners = self.make_pair()
        b = diners["b"]
        b.become_hungry()
        b.request_missing_forks()
        b.on_fork(Message("a", "b", "DX:diner", "fork",
                          payload={"last_meal": (1, 50.0)}))
        assert b.fork["a"] and not b.dirty["a"]

    def test_earlier_meal_time_outranks(self):
        from repro.types import Message

        diners = self.make_pair(suspect=True)
        b = diners["b"]
        b.become_hungry()
        b.enter_critical_section()      # b's meal at env time 0
        b.exit_eating()
        b.finish_exiting()
        b.become_hungry()
        b.on_fork(Message("a", "b", "DX:diner", "fork",
                          payload={"last_meal": (1, 75.0)}))
        assert b.fork["a"] and not b.dirty["a"]   # b's meal is older

    def test_not_hungry_never_lands_clean(self):
        from repro.types import Message

        diners = self.make_pair()
        b = diners["b"]                 # THINKING
        b.on_fork(Message("a", "b", "DX:diner", "fork",
                          payload={"last_meal": (1, 10.0)}))
        assert b.fork["a"] and b.dirty["a"]

    def test_tiebreak_matches_initial_orientation(self):
        """Two never-eaten diners tie on meal recency; the higher pid
        counts as older, mirroring the seed state where forks start dirty
        at the lower pid (which therefore must yield)."""
        from repro.types import Message

        diners = self.make_pair()
        b = diners["b"]
        b.become_hungry()
        b.on_fork(Message("a", "b", "DX:diner", "fork",
                          payload={"last_meal": (0, 0.0)}))
        assert not b.dirty["a"]         # "b" > "a": b outranks, fork clean
