"""Tests for the fault-intolerant hygienic baseline."""

from repro.dining.hygienic import HygienicDining, never_suspect
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import pair_graph, ring
from repro.sim.faults import CrashSchedule
from tests.dining.helpers import INSTANCE, run_dining


def run_hygienic(graph, **kw):
    # HygienicDining takes no provider; adapt the helper's signature.
    class Adapter(HygienicDining):
        def __init__(self, instance_id, g, provider):
            super().__init__(instance_id, g)

    return run_dining(graph, instance_cls=Adapter, **kw)


def test_never_suspect_provider():
    suspect = never_suspect("p")
    assert not suspect("anyone")


def test_perpetual_exclusion_failure_free():
    g = ring(4)
    eng, sched, _, _ = run_dining(g, seed=50, instance_cls=lambda i, gr, p:
                                  HygienicDining(i, gr))
    rep = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
    assert rep.perpetual_ok          # zero violations, ever


def test_starvation_freedom_failure_free():
    g = ring(4)
    eng, sched, _, _ = run_hygienic(g, seed=51)
    rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                             grace=80.0)
    assert rep.ok


def test_crash_starves_neighbors():
    """The motivating failure: a crashed fork-holder blocks its neighbors
    forever without a failure detector."""
    g = pair_graph("a", "b")
    sched = CrashSchedule.single("a", 50.0)   # 'a' holds the initial fork
    eng, sched, _, _ = run_hygienic(g, seed=52, crash=sched, max_time=1200.0)
    rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                             grace=80.0)
    assert not rep.ok
    assert "b" in rep.starving


def test_crash_on_ring_blocks_at_least_neighbors():
    g = ring(4)
    sched = CrashSchedule.single("p0", 60.0)
    eng, sched, _, _ = run_hygienic(g, seed=53, crash=sched, max_time=1500.0)
    rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                             grace=100.0)
    assert not rep.ok                # someone correct starves
    assert set(rep.starving) & {"p1", "p3"}
