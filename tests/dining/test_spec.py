"""Unit tests for the dining specification checkers, on synthetic traces."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dining.spec import (
    check_exclusion,
    check_wait_freedom,
    eating_intervals,
    eventual_k_fairness,
    hungry_intervals,
    overtake_samples,
)
from repro.graphs import pair_graph, path
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace


def synth_trace(rows, instance="I"):
    """rows: (time, pid, state_str)."""
    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    for time, pid, state in rows:
        clock["now"] = time
        t.record("state", pid=pid, instance=instance, state=state)
    return t


class TestIntervals:
    def test_eating_intervals_basic(self):
        t = synth_trace([(0.0, "p", "thinking"), (1.0, "p", "eating"),
                         (3.0, "p", "exiting")])
        assert eating_intervals(t, "I", "p", 10.0) == [(1.0, 3.0)]

    def test_eating_clipped_at_crash(self):
        t = synth_trace([(1.0, "p", "eating")])
        sched = CrashSchedule.single("p", 5.0)
        assert eating_intervals(t, "I", "p", 10.0, sched) == [(1.0, 5.0)]

    def test_eating_after_crash_dropped(self):
        t = synth_trace([(7.0, "p", "eating")])
        sched = CrashSchedule.single("p", 5.0)
        assert eating_intervals(t, "I", "p", 10.0, sched) == []

    def test_hungry_intervals(self):
        t = synth_trace([(1.0, "p", "hungry"), (4.0, "p", "eating")])
        assert hungry_intervals(t, "I", "p", 10.0) == [(1.0, 4.0)]

    def test_instance_filtering(self):
        t = synth_trace([(1.0, "p", "eating")], instance="OTHER")
        assert eating_intervals(t, "I", "p", 10.0) == []


class TestExclusion:
    G = pair_graph("p", "q")

    def test_no_overlap_no_violations(self):
        t = synth_trace([(1.0, "p", "eating"), (2.0, "p", "thinking"),
                         (3.0, "q", "eating"), (4.0, "q", "thinking")])
        rep = check_exclusion(t, self.G, "I", CrashSchedule.none(), 10.0)
        assert rep.perpetual_ok and rep.count == 0
        assert rep.last_violation_end is None
        assert rep.eventually_exclusive_by(0.0)

    def test_overlap_detected_with_bounds(self):
        t = synth_trace([(1.0, "p", "eating"), (2.0, "q", "eating"),
                         (3.0, "p", "thinking"), (5.0, "q", "thinking")])
        rep = check_exclusion(t, self.G, "I", CrashSchedule.none(), 10.0)
        assert rep.count == 1
        v = rep.violations[0]
        assert (v.start, v.end) == (2.0, 3.0)
        assert not rep.perpetual_ok
        assert rep.eventually_exclusive_by(3.0)
        assert not rep.eventually_exclusive_by(2.5)

    def test_crashed_neighbor_overlap_not_a_violation(self):
        t = synth_trace([(1.0, "p", "eating"), (2.0, "q", "eating")])
        sched = CrashSchedule.single("q", 2.0)   # q dead from 2.0 on
        rep = check_exclusion(t, self.G, "I", sched, 10.0)
        assert rep.count == 0

    def test_non_neighbors_never_conflict(self):
        g = path(3)   # p0-p1-p2: p0 and p2 are not neighbors
        t = synth_trace([(1.0, "p0", "eating"), (1.5, "p2", "eating")])
        rep = check_exclusion(t, g, "I", CrashSchedule.none(), 10.0)
        assert rep.count == 0

    def test_violations_sorted_by_time(self):
        t = synth_trace([
            (1.0, "p", "eating"), (2.0, "q", "eating"), (3.0, "q", "thinking"),
            (5.0, "q", "eating"), (6.0, "q", "thinking"),
            (7.0, "p", "thinking"),
        ])
        rep = check_exclusion(t, self.G, "I", CrashSchedule.none(), 10.0)
        starts = [v.start for v in rep.violations]
        assert starts == sorted(starts) and rep.count == 2


class TestWaitFreedom:
    G = pair_graph("p", "q")

    def test_served_hunger_ok(self):
        t = synth_trace([(1.0, "p", "hungry"), (3.0, "p", "eating"),
                         (4.0, "p", "thinking")])
        rep = check_wait_freedom(t, self.G, "I", CrashSchedule.none(), 10.0)
        assert rep.ok and rep.max_wait == 2.0
        assert rep.sessions["p"] == 1

    def test_starvation_detected(self):
        t = synth_trace([(1.0, "p", "hungry")])
        rep = check_wait_freedom(t, self.G, "I", CrashSchedule.none(), 100.0)
        assert not rep.ok and rep.starving == ["p"]

    def test_grace_window_excuses_fresh_hunger(self):
        t = synth_trace([(95.0, "p", "hungry")])
        rep = check_wait_freedom(t, self.G, "I", CrashSchedule.none(), 100.0,
                                 grace=10.0)
        assert rep.ok

    def test_faulty_diners_not_protected(self):
        t = synth_trace([(1.0, "q", "hungry")])
        sched = CrashSchedule.single("q", 50.0)
        rep = check_wait_freedom(t, self.G, "I", sched, 100.0)
        assert rep.ok


class TestFairness:
    G = pair_graph("p", "q")

    def test_overtakes_counted_inside_hungry_interval(self):
        t = synth_trace([
            (1.0, "p", "hungry"),
            (2.0, "q", "eating"), (3.0, "q", "thinking"),
            (4.0, "q", "eating"), (5.0, "q", "thinking"),
            (6.0, "p", "eating"),
        ])
        samples = overtake_samples(t, self.G, "I", 10.0)
        p_waits = [s for s in samples if s.waiter == "p" and s.eater == "q"]
        assert len(p_waits) == 1 and p_waits[0].count == 2

    def test_eating_outside_interval_not_counted(self):
        t = synth_trace([
            (0.5, "q", "eating"), (0.8, "q", "thinking"),   # before hunger
            (1.0, "p", "hungry"), (2.0, "p", "eating"),
        ])
        samples = overtake_samples(t, self.G, "I", 10.0)
        p_waits = [s for s in samples if s.waiter == "p" and s.eater == "q"]
        assert p_waits[0].count == 0

    def test_eventual_k_fairness_suffix(self):
        t = synth_trace([
            (1.0, "p", "hungry"),
            (2.0, "q", "eating"), (3.0, "q", "thinking"),
            (4.0, "q", "eating"), (5.0, "q", "thinking"),
            (6.0, "q", "eating"), (7.0, "q", "thinking"),
            (8.0, "p", "eating"), (9.0, "p", "thinking"),
            (20.0, "p", "hungry"),
            (21.0, "q", "eating"), (22.0, "q", "thinking"),
            (23.0, "p", "eating"),
        ])
        samples = overtake_samples(t, self.G, "I", 30.0)
        ok_all, worst_all = eventual_k_fairness(samples, k=1)
        assert not ok_all and worst_all == 3
        ok_suffix, worst_suffix = eventual_k_fairness(samples, k=1, after=15.0)
        assert ok_suffix and worst_suffix == 1


@given(st.lists(
    st.tuples(st.floats(0, 50),
              st.sampled_from(["p", "q"]),
              st.sampled_from(["thinking", "hungry", "eating", "exiting"])),
    max_size=30,
))
def test_exclusion_checker_never_crashes_and_orders_violations(rows):
    rows = sorted(rows, key=lambda r: r[0])
    t = synth_trace(rows)
    rep = check_exclusion(t, pair_graph("p", "q"), "I",
                          CrashSchedule.none(), 60.0)
    assert all(v.start <= v.end for v in rep.violations)
    starts = [v.start for v in rep.violations]
    assert starts == sorted(starts)
