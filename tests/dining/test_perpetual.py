"""Tests for the perpetual-WX box and its oracle providers."""

import networkx as nx

from repro.dining.client import EagerClient
from repro.dining.perpetual import (
    PerpetualDining,
    accurate_provider,
    trusting_plus_strong_provider,
)
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import ring
from repro.oracles import (
    PerfectDetector,
    StrongDetector,
    TrustingDetector,
    attach_detectors,
)
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule

INSTANCE = "PX"


def run_perpetual(provider_kind, seed=1, crash=None, max_time=1500.0):
    g = ring(4)
    pids = sorted(g.nodes)
    sched = crash or CrashSchedule.none()
    eng = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=PartialSynchronyDelays(gst=100.0, delta=1.5),
        crash_schedule=sched,
    )
    for pid in pids:
        eng.add_process(pid)
    if provider_kind == "perfect":
        mods = attach_detectors(
            eng, pids, lambda o, p: PerfectDetector("P", p, sched))
        provider = accurate_provider(mods)
    else:
        t_mods = attach_detectors(
            eng, pids,
            lambda o, p: TrustingDetector("T", p, sched,
                                          registration_delay=15.0))
        s_mods = attach_detectors(
            eng, pids,
            lambda o, p: StrongDetector("S", p, sched, anchor="p0",
                                        noise_until=0.0))
        provider = trusting_plus_strong_provider(t_mods, s_mods)
    inst = PerpetualDining(INSTANCE, g, provider)
    diners = inst.attach(eng)
    for pid in pids:
        eng.process(pid).add_component(
            EagerClient("client", diners[pid], eat_steps=2))
    eng.run()
    return eng, sched, g


class TestWithPerfectSubstrate:
    def test_perpetual_exclusion_failure_free(self):
        eng, sched, g = run_perpetual("perfect", seed=70)
        assert check_exclusion(eng.trace, g, INSTANCE, sched,
                               eng.now).perpetual_ok

    def test_perpetual_exclusion_under_crash(self):
        eng, sched, g = run_perpetual(
            "perfect", seed=71, crash=CrashSchedule.single("p1", 300.0))
        assert check_exclusion(eng.trace, g, INSTANCE, sched,
                               eng.now).perpetual_ok

    def test_wait_freedom_under_crash(self):
        eng, sched, g = run_perpetual(
            "perfect", seed=72, crash=CrashSchedule.single("p2", 250.0))
        rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                 grace=100.0)
        assert rep.ok, rep.format_table()


class TestWithTrustingPlusStrong:
    def test_perpetual_exclusion_failure_free(self):
        eng, sched, g = run_perpetual("ts", seed=73)
        assert check_exclusion(eng.trace, g, INSTANCE, sched,
                               eng.now).perpetual_ok

    def test_perpetual_exclusion_under_crash(self):
        eng, sched, g = run_perpetual(
            "ts", seed=74, crash=CrashSchedule.single("p1", 400.0))
        assert check_exclusion(eng.trace, g, INSTANCE, sched,
                               eng.now).perpetual_ok

    def test_wait_freedom_with_late_crash(self):
        # The crashed process registered with T first, so revocation-based
        # suspicion recovers its forks.
        eng, sched, g = run_perpetual(
            "ts", seed=75, crash=CrashSchedule.single("p3", 400.0))
        rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                 grace=120.0)
        assert rep.ok, rep.format_table()
