"""Tests for fairness measurement and the k-fairness of the algorithm."""

from repro.dining.fairness import FairnessReport, measure_fairness
from repro.dining.spec import OvertakeSample, check_exclusion
from repro.graphs import clique, ring
from repro.sim.faults import CrashSchedule
from tests.dining.helpers import INSTANCE, run_dining


class TestFairnessReport:
    def samples(self):
        return [
            OvertakeSample("p", "q", 1.0, 5),
            OvertakeSample("p", "q", 10.0, 1),
            OvertakeSample("q", "p", 12.0, 0),
        ]

    def test_worst_overall(self):
        rep = FairnessReport("I", self.samples())
        assert rep.worst_overall() == 5

    def test_worst_after(self):
        rep = FairnessReport("I", self.samples())
        assert rep.worst_after(5.0) == 1

    def test_convergence_to_k(self):
        rep = FairnessReport("I", self.samples())
        conv = rep.convergence_to_k(1)
        assert conv is not None and conv > 1.0

    def test_convergence_when_always_fair(self):
        rep = FairnessReport("I", [OvertakeSample("p", "q", 1.0, 1)])
        assert rep.convergence_to_k(1) == 0.0

    def test_convergence_fails_when_suffix_unfair(self):
        rep = FairnessReport("I", [OvertakeSample("p", "q", 99.0, 7)])
        assert rep.convergence_to_k(1) is None

    def test_per_pair_worst(self):
        rep = FairnessReport("I", self.samples())
        assert rep.per_pair_worst()[("p", "q")] == 5

    def test_empty_report(self):
        rep = FairnessReport("I", [])
        assert rep.worst_overall() == 0
        assert rep.eventual_k(0.0) == 0


class TestMeasuredFairness:
    def test_eventual_bounded_overtaking_on_clique(self):
        g = clique(3)
        eng, sched, _, _ = run_dining(g, seed=80, max_time=2000.0)
        excl = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
        conv = (excl.last_violation_end or 0.0) + 200.0
        rep = measure_fairness(eng.trace, g, INSTANCE, eng.now, sched)
        assert rep.worst_after(conv) <= 2    # eventual 2-fairness

    def test_crashed_waiters_excluded(self):
        g = ring(4)
        sched = CrashSchedule.single("p1", 300.0)
        eng, sched, _, _ = run_dining(g, seed=81, crash=sched)
        rep = measure_fairness(eng.trace, g, INSTANCE, eng.now, sched)
        assert all(s.waiter != "p1" for s in rep.samples)

    def test_format_table_lists_pairs(self):
        g = clique(3)
        eng, sched, _, _ = run_dining(g, seed=82, max_time=600.0)
        rep = measure_fairness(eng.trace, g, INSTANCE, eng.now, sched)
        text = rep.format_table()
        assert "overtook" in text
