"""Shared builders for dining-layer tests."""

from __future__ import annotations

import networkx as nx

from repro.dining.client import EagerClient
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule

INSTANCE = "DX"


def run_dining(
    graph: nx.Graph,
    seed: int = 1,
    max_time: float = 1200.0,
    gst: float = 120.0,
    crash: CrashSchedule | None = None,
    instance_cls=WaitFreeEWXDining,
    eat_steps: int = 2,
    attach_clients: bool = True,
    **instance_kwargs,
):
    """Build and run one dining instance with heartbeat ◇P and eager clients.

    Returns ``(engine, schedule, instance, diners)``.
    """
    pids = sorted(graph.nodes)
    sched = crash or CrashSchedule.none()
    eng = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=PartialSynchronyDelays(gst=gst, delta=1.5,
                                           pre_gst_max=25.0),
        crash_schedule=sched,
    )
    for pid in pids:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, pids,
        lambda o, peers: EventuallyPerfectDetector(
            "fd", peers, heartbeat_period=4, initial_timeout=10),
    )
    provider = lambda pid: (lambda q, m=mods[pid]: m.suspected(q))  # noqa: E731
    instance = instance_cls(INSTANCE, graph, provider, **instance_kwargs)
    diners = instance.attach(eng)
    if attach_clients:
        for pid in pids:
            eng.process(pid).add_component(
                EagerClient("client", diners[pid], eat_steps=eat_steps)
            )
    eng.run()
    return eng, sched, instance, diners
