"""Tests for the eventually k-fair dining wrapper (Section 8 construction)."""

import pytest

from repro.dining.client import EagerClient
from repro.dining.fair_wrapper import FairDiner, FairDining
from repro.dining.fairness import measure_fairness
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError
from repro.experiments.common import build_system
from repro.graphs import clique, ring
from repro.sim.faults import CrashSchedule

INSTANCE = "FAIR"


def run_fair(graph, seed=1, k=2, crash=None, max_time=2000.0):
    pids = sorted(graph.nodes)
    system = build_system(pids, seed=seed, max_time=max_time, crash=crash)
    inner = lambda iid, g: WaitFreeEWXDining(iid, g, system.provider)  # noqa: E731
    inst = FairDining(INSTANCE, graph, inner, system.provider, k=k)
    diners = inst.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    system.engine.run()
    return system, diners


def test_k_validated():
    with pytest.raises(ConfigurationError):
        FairDiner("f", "I", ("q",), inner=None, suspect=None, k=0)


def test_wait_freedom_preserved():
    g = clique(3)
    system, _ = run_fair(g, seed=310, k=2)
    rep = check_wait_freedom(system.engine.trace, g, INSTANCE,
                             system.schedule, system.engine.now, grace=150.0)
    assert rep.ok, rep.format_table()


def test_exclusion_preserved():
    g = clique(3)
    system, _ = run_fair(g, seed=311, k=2)
    rep = check_exclusion(system.engine.trace, g, INSTANCE, system.schedule,
                          system.engine.now)
    assert rep.eventually_exclusive_by(system.engine.now * 0.5)


@pytest.mark.parametrize("k", [1, 2])
def test_suffix_overtaking_bounded_by_k(k):
    g = clique(3)
    system, _ = run_fair(g, seed=312, k=k, max_time=2500.0)
    eng = system.engine
    excl = check_exclusion(eng.trace, g, INSTANCE, system.schedule, eng.now)
    conv = (excl.last_violation_end or 0.0) + 250.0
    rep = measure_fairness(eng.trace, g, INSTANCE, eng.now, system.schedule)
    assert rep.worst_after(conv) <= k


def test_smaller_k_trades_throughput_for_fairness():
    g = clique(3)
    s1, d1 = run_fair(g, seed=313, k=1)
    s2, d2 = run_fair(g, seed=313, k=3)
    strict = sum(d.sessions_eaten for d in d1.values())
    loose = sum(d.sessions_eaten for d in d2.values())
    assert strict < loose


def test_crashed_neighbor_does_not_block_entitlement():
    g = ring(4)
    system, diners = run_fair(g, seed=314, k=1,
                              crash=CrashSchedule.single("p1", 400.0),
                              max_time=2000.0)
    rep = check_wait_freedom(system.engine.trace, g, INSTANCE,
                             system.schedule, system.engine.now, grace=150.0)
    assert rep.ok, rep.format_table()
    # Survivors kept eating well past the crash.
    assert all(rep.sessions[p] > 15 for p in ("p0", "p2", "p3"))


def test_wants_cleared_after_service():
    g = clique(3)
    system, diners = run_fair(g, seed=315, k=2, max_time=800.0)
    # At end of run no diner should hold a want for a diner that is
    # currently thinking with no pending announcement in flight.
    in_flight = system.engine.network.sent - system.engine.network.delivered
    if in_flight == 0:
        from repro.types import DinerState

        for pid, diner in diners.items():
            for q, _ in diner._wants.items():
                assert diners[q].state is not DinerState.THINKING


def test_deferrals_happen_under_contention():
    g = clique(3)
    system, diners = run_fair(g, seed=316, k=1)
    assert sum(d.deferrals for d in diners.values()) > 0
