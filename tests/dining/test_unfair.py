"""Tests for the VIP-biased (legal) dining box."""

import pytest

from repro.dining.client import EagerClient
from repro.dining.fairness import measure_fairness
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.dining.unfair import UnfairManagerDining
from repro.errors import ConfigurationError
from repro.experiments.common import build_system
from repro.graphs import clique

INSTANCE = "U"


def run_unfair(seed=77, vip="p0", burst=3, max_time=2000.0):
    g = clique(3)
    pids = sorted(g.nodes)
    system = build_system(pids, seed=seed, max_time=max_time)
    inst = UnfairManagerDining(INSTANCE, g, system.provider, vip=vip,
                               burst=burst)
    diners = inst.attach(system.engine)
    for pid in pids:
        system.engine.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    system.engine.run()
    return system, g


def test_validation():
    from repro.dining.manager import ManagerRole  # noqa: F401 - context
    from repro.graphs import pair_graph

    with pytest.raises(ConfigurationError):
        UnfairManagerDining("U", pair_graph("a", "b"), None, vip="ghost")


def test_burst_validation():
    from repro.dining.unfair import UnfairManagerRole
    from repro.graphs import pair_graph

    with pytest.raises(ConfigurationError):
        UnfairManagerRole("m", pair_graph("a", "b"), lambda q: False,
                          diner_tag="d", vip="a", burst=0)


def test_still_wait_free_despite_bias():
    system, g = run_unfair()
    rep = check_wait_freedom(system.engine.trace, g, INSTANCE,
                             system.schedule, system.engine.now, grace=150.0)
    assert rep.ok, rep.format_table()


def test_vip_gets_disproportionate_service():
    system, g = run_unfair()
    rep = check_wait_freedom(system.engine.trace, g, INSTANCE,
                             system.schedule, system.engine.now, grace=150.0)
    others = [rep.sessions[p] for p in ("p1", "p2")]
    assert rep.sessions["p0"] > 1.5 * max(others)


def test_overtaking_bounded_by_burst():
    system, g = run_unfair(burst=3)
    fairness = measure_fairness(system.engine.trace, g, INSTANCE,
                                system.engine.now, system.schedule)
    worst = fairness.per_pair_worst()
    # Non-VIPs are overtaken by the VIP at most ~burst times per hunger.
    assert worst.get(("p1", "p0"), 0) <= 3
    assert worst.get(("p2", "p0"), 0) <= 3


def test_still_eventually_exclusive():
    system, g = run_unfair()
    rep = check_exclusion(system.engine.trace, g, INSTANCE, system.schedule,
                          system.engine.now)
    assert rep.eventually_exclusive_by(system.engine.now * 0.6)
