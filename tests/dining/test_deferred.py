"""Tests for the adversarial-but-legal deferred-exclusion box."""

from repro.dining.deferred import DeferredExclusionDining, SessionLedger
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import pair_graph, ring
from repro.sim.faults import CrashSchedule
from tests.dining.helpers import INSTANCE, run_dining


class TestSessionLedger:
    def test_open_close(self):
        led = SessionLedger()
        assert led.open_since("p") is None
        led.opened("p", 3.0)
        assert led.open_since("p") == 3.0
        led.closed("p")
        assert led.open_since("p") is None

    def test_close_unknown_is_noop(self):
        SessionLedger().closed("ghost")


def test_still_wait_free():
    g = ring(4)
    eng, sched, _, _ = run_dining(g, seed=60,
                                  instance_cls=DeferredExclusionDining,
                                  mistake_horizon=150.0)
    rep = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                             grace=80.0)
    assert rep.ok


def test_still_eventually_exclusive_when_sessions_finite():
    """The legality claim: with finite eating sessions the box satisfies
    ◇WX — violations stop once pre-horizon sessions close."""
    g = ring(4)
    eng, sched, _, _ = run_dining(g, seed=61, max_time=1500.0,
                                  instance_cls=DeferredExclusionDining,
                                  mistake_horizon=150.0)
    rep = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
    assert rep.eventually_exclusive_by(eng.now * 0.5), rep.format_table()


def test_ledger_keeps_crashed_eater_open():
    g = pair_graph("a", "b")
    sched = CrashSchedule.single("a", 100.0)
    eng, sched, inst, _ = run_dining(g, seed=62, crash=sched,
                                     max_time=400.0,
                                     instance_cls=DeferredExclusionDining,
                                     mistake_horizon=150.0)
    # If 'a' was eating when it crashed, its session never closes.
    a_rows = [r for r in eng.trace.records(kind="state", pid="a")
              if r["state"] == "eating"]
    if a_rows and inst.ledger.open_since("a") is not None:
        assert inst.ledger.open_since("a") <= 100.0


def test_violations_exceed_well_behaved_box():
    """The adversarial box misbehaves more than the base algorithm during
    the horizon window (that is its purpose)."""
    g = ring(4)
    base_eng, base_sched, _, _ = run_dining(g, seed=63, max_time=800.0)
    adv_eng, adv_sched, _, _ = run_dining(
        g, seed=63, max_time=800.0,
        instance_cls=DeferredExclusionDining, mistake_horizon=300.0,
    )
    base = check_exclusion(base_eng.trace, g, INSTANCE, base_sched,
                           base_eng.now)
    adv = check_exclusion(adv_eng.trace, g, INSTANCE, adv_sched, adv_eng.now)
    assert adv.count > base.count
