"""Tests for the diner state machine and instance factory contract."""

import networkx as nx
import pytest

from repro.dining.base import DinerComponent, DiningInstance
from repro.errors import ConfigurationError, SpecificationViolation
from repro.graphs import pair_graph
from repro.types import DinerState
from tests.conftest import make_engine


class PassiveDiner(DinerComponent):
    """A diner whose algorithm never schedules anyone (for state tests)."""


class PassiveInstance(DiningInstance):
    def build_diner(self, pid, neighbors):
        return PassiveDiner(self.component_name(), self.instance_id, neighbors)


def attached_diner():
    eng = make_engine()
    eng.add_process("p")
    eng.add_process("q")
    inst = PassiveInstance("I", pair_graph("p", "q"))
    diners = inst.attach(eng)
    return eng, inst, diners["p"]


def test_initial_state_thinking():
    _, _, d = attached_diner()
    assert d.state is DinerState.THINKING


def test_become_hungry_legal():
    _, _, d = attached_diner()
    d.become_hungry()
    assert d.state is DinerState.HUNGRY


def test_become_hungry_twice_illegal():
    _, _, d = attached_diner()
    d.become_hungry()
    with pytest.raises(SpecificationViolation):
        d.become_hungry()


def test_exit_without_eating_illegal():
    _, _, d = attached_diner()
    with pytest.raises(SpecificationViolation):
        d.exit_eating()


def test_exit_from_eating_legal():
    _, _, d = attached_diner()
    d.become_hungry()
    d._set_state(DinerState.EATING)   # algorithm-side transition
    d.exit_eating()
    assert d.state is DinerState.EXITING


def test_sessions_counted_on_eating():
    _, _, d = attached_diner()
    d.become_hungry()
    d._set_state(DinerState.EATING)
    assert d.sessions_eaten == 1


def test_state_changes_recorded():
    eng, _, d = attached_diner()
    d.become_hungry()
    rows = eng.trace.records(kind="state", pid="p")
    assert [r["state"] for r in rows] == ["thinking", "hungry"]
    assert all(r["instance"] == "I" for r in rows)


def test_instance_requires_nonempty_id():
    with pytest.raises(ConfigurationError):
        PassiveInstance("", pair_graph("p", "q"))


def test_instance_rejects_double_attach():
    eng = make_engine()
    eng.add_process("p")
    eng.add_process("q")
    inst = PassiveInstance("I", pair_graph("p", "q"))
    inst.attach(eng)
    with pytest.raises(ConfigurationError):
        inst.attach(eng)


def test_diner_lookup():
    _, inst, d = attached_diner()
    assert inst.diner("p") is d
    with pytest.raises(ConfigurationError):
        inst.diner("ghost")


def test_neighbors_come_from_graph():
    g = nx.Graph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    eng = make_engine()
    for pid in "abc":
        eng.add_process(pid)
    inst = PassiveInstance("I", g)
    diners = inst.attach(eng)
    assert diners["a"].neighbors == ("b", "c")
    assert diners["b"].neighbors == ("a",)


def test_component_name_embeds_instance_id():
    inst = PassiveInstance("XYZ", pair_graph("p", "q"))
    assert inst.component_name() == "XYZ:diner"
