"""Negative controls: the checkers must convict the guilty mutants.

Each mutant violates exactly one specification clause; the corresponding
checker must flag it, and the clauses the mutant respects must pass —
otherwise our green results elsewhere prove nothing.
"""

from repro.dining.client import EagerClient
from repro.dining.mutants import LateDining, RecklessDining, SnobbishDining
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import clique, ring
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule

INSTANCE = "MUT"


def run_mutant(instance, graph, seed=1, max_time=1000.0):
    pids = sorted(graph.nodes)
    eng = Engine(SimConfig(seed=seed, max_time=max_time),
                 delay_model=PartialSynchronyDelays(gst=100.0, delta=1.5))
    for pid in pids:
        eng.add_process(pid)
    diners = instance.attach(eng)
    for pid in pids:
        eng.process(pid).add_component(
            EagerClient("cl", diners[pid], eat_steps=2))
    eng.run()
    sched = CrashSchedule.none()
    wf = check_wait_freedom(eng.trace, graph, INSTANCE, sched, eng.now,
                            grace=80.0)
    ex = check_exclusion(eng.trace, graph, INSTANCE, sched, eng.now)
    return wf, ex, eng


class TestReckless:
    def test_wait_freedom_passes(self):
        g = clique(3)
        wf, ex, _ = run_mutant(RecklessDining(INSTANCE, g), g, seed=601)
        assert wf.ok

    def test_exclusion_convicted(self):
        g = clique(3)
        wf, ex, eng = run_mutant(RecklessDining(INSTANCE, g), g, seed=602)
        assert ex.count > 50
        # Violations keep happening: no eventual convergence either.
        assert not ex.eventually_exclusive_by(eng.now * 0.9)


class TestSnobbish:
    def test_victim_convicted_starving(self):
        g = ring(4)
        wf, ex, _ = run_mutant(SnobbishDining(INSTANCE, g, victim="p2"), g,
                               seed=603)
        assert not wf.ok
        assert "p2" in wf.starving

    def test_starvation_propagates_from_victim(self):
        g = ring(4)
        wf, ex, _ = run_mutant(SnobbishDining(INSTANCE, g, victim="p2"), g,
                               seed=604, max_time=1500.0)
        # The victim never eats, and its permanently-clean forks freeze the
        # whole ring (the E16 chain-starvation phenomenon, without a crash).
        assert wf.sessions["p2"] == 0
        assert len(wf.starving) >= 2

    def test_exclusion_still_clean(self):
        g = ring(4)
        wf, ex, _ = run_mutant(SnobbishDining(INSTANCE, g, victim="p2"), g,
                               seed=605)
        assert ex.perpetual_ok


class TestLate:
    def test_everyone_starves_after_cutoff(self):
        g = clique(3)
        wf, ex, eng = run_mutant(LateDining(INSTANCE, g, cutoff=200.0), g,
                                 seed=606, max_time=1200.0)
        assert not wf.ok
        assert len(wf.starving) == 3

    def test_pre_cutoff_service_happened(self):
        g = clique(3)
        wf, ex, _ = run_mutant(LateDining(INSTANCE, g, cutoff=200.0), g,
                               seed=607)
        assert all(n > 0 for n in wf.sessions.values())

    def test_grace_window_does_not_hide_real_starvation(self):
        g = clique(3)
        wf, ex, eng = run_mutant(LateDining(INSTANCE, g, cutoff=200.0), g,
                                 seed=608, max_time=1500.0)
        # Even a generous grace window cannot excuse hunger from t~200.
        from repro.dining.spec import check_wait_freedom

        lenient = check_wait_freedom(eng.trace, g, INSTANCE,
                                     CrashSchedule.none(), eng.now,
                                     grace=300.0)
        assert not lenient.ok
