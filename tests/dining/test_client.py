"""Tests for the diner client drivers."""

import numpy as np
import pytest

from repro.dining.client import EagerClient, PeriodicClient, ScriptedClient
from repro.dining.hygienic import HygienicDining
from repro.dining.spec import eating_intervals, state_series
from repro.errors import ConfigurationError
from repro.graphs import pair_graph
from repro.sim import Engine, FixedDelays, SimConfig
from repro.types import DinerState


def build(client_factory, seed=1, max_time=400.0):
    g = pair_graph("a", "b")
    eng = Engine(SimConfig(seed=seed, max_time=max_time),
                 delay_model=FixedDelays(1.0))
    for pid in ("a", "b"):
        eng.add_process(pid)
    inst = HygienicDining("DX", g)
    diners = inst.attach(eng)
    clients = {}
    for pid in ("a", "b"):
        clients[pid] = eng.process(pid).add_component(
            client_factory(pid, diners[pid], eng))
    eng.run()
    return eng, diners, clients


def test_eager_client_validates_eat_steps():
    with pytest.raises(ConfigurationError):
        EagerClient("c", diner=None, eat_steps=0)


def test_eager_client_cycles():
    eng, diners, _ = build(lambda pid, d, e: EagerClient("c", d, eat_steps=2))
    assert diners["a"].sessions_eaten > 10
    assert diners["b"].sessions_eaten > 10


def test_eager_client_max_sessions():
    eng, diners, _ = build(
        lambda pid, d, e: EagerClient("c", d, eat_steps=1, max_sessions=3))
    assert diners["a"].sessions_eaten == 3
    assert diners["b"].sessions_eaten == 3


def test_periodic_client_respects_time_ranges():
    eng, diners, _ = build(
        lambda pid, d, e: PeriodicClient(
            "c", d, rng=np.random.default_rng(hash(pid) % 2**32),
            think_time=(5.0, 10.0), eat_time=(2.0, 4.0)))
    ivs = eating_intervals(eng.trace, "DX", "a", eng.now)
    assert ivs
    # Sessions last at least the minimum eat time (modulo one step delay).
    assert all(b - a >= 1.5 for a, b in ivs[:-1])


def test_periodic_client_validates_ranges():
    with pytest.raises(ConfigurationError):
        PeriodicClient("c", None, np.random.default_rng(0),
                       think_time=(5.0, 1.0))


def test_scripted_client_hungry_at_times():
    eng, diners, clients = build(
        lambda pid, d, e: ScriptedClient(
            "c", d, hungry_times=[50.0, 200.0] if pid == "a" else [],
            eat_time=3.0))
    series = state_series(eng.trace, "DX", "a")
    hungry_times = [t for t, s in series if s == DinerState.HUNGRY.value]
    assert len(hungry_times) == 2
    assert hungry_times[0] >= 50.0 and hungry_times[1] >= 200.0
    assert diners["a"].sessions_eaten == 2


def test_scripted_client_exhausts_script():
    eng, diners, _ = build(
        lambda pid, d, e: ScriptedClient("c", d, hungry_times=[10.0]))
    assert diners["a"].sessions_eaten == 1
    assert diners["a"].state is DinerState.THINKING
