"""Tests for the coordinator-based dining box."""

import pytest

from repro.dining.manager import ManagerDining
from repro.dining.spec import check_exclusion, check_wait_freedom
from repro.graphs import clique, ring
from repro.sim.faults import CrashSchedule
from tests.dining.helpers import INSTANCE, run_dining


def run_managed(graph, **kw):
    return run_dining(graph, instance_cls=ManagerDining, **kw)


class TestFailureFree:
    def test_ring_wait_free_and_exclusive(self):
        g = ring(4)
        eng, sched, _, _ = run_managed(g, seed=420)
        wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                grace=100.0)
        assert wf.ok, wf.format_table()
        ex = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
        assert ex.eventually_exclusive_by(eng.now * 0.6)

    def test_clique_everyone_served(self):
        g = clique(4)
        eng, sched, _, _ = run_managed(g, seed=421)
        wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                grace=100.0)
        assert wf.ok and all(n > 10 for n in wf.sessions.values())

    def test_stable_manager_is_min_vertex(self):
        g = ring(4)
        eng, _, inst, _ = run_managed(g, seed=422, max_time=800.0)
        # After convergence, only the min vertex should be issuing grants.
        # (Early grants from transient self-beliefs are allowed.)
        totals = {pid: m.grants_issued for pid, m in inst.managers.items()}
        assert totals["p0"] == max(totals.values())
        assert totals["p0"] > 20


class TestWithCrashes:
    def test_manager_crash_migrates_role(self):
        g = ring(4)
        sched = CrashSchedule.single("p0", 300.0)   # p0 is the manager
        eng, sched, inst, _ = run_managed(g, seed=423, crash=sched,
                                          max_time=2000.0)
        wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                grace=150.0)
        assert wf.ok, wf.format_table()
        # The successor (p1) took over grant duty.
        assert inst.managers["p1"].grants_issued > 10

    def test_grant_holder_crash_is_reclaimed(self):
        g = ring(4)
        sched = CrashSchedule.single("p2", 250.0)
        eng, sched, _, _ = run_managed(g, seed=424, crash=sched,
                                       max_time=2000.0)
        wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                                grace=150.0)
        assert wf.ok, wf.format_table()

    def test_eventual_exclusion_despite_manager_churn(self):
        g = clique(4)
        sched = CrashSchedule({"p0": 200.0, "p1": 600.0})
        eng, sched, _, _ = run_managed(g, seed=425, crash=sched,
                                       max_time=2500.0)
        ex = check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
        assert ex.eventually_exclusive_by(eng.now * 0.75), ex.format_table()


class TestReductionOverManagerBox:
    @pytest.mark.parametrize("crashed", [False, True])
    def test_extraction_properties(self, crashed):
        from repro.core.extraction import build_full_extraction
        from repro.experiments.common import build_system, manager_box
        from repro.oracles.properties import (
            check_eventual_strong_accuracy,
            check_strong_completeness,
        )

        crash = CrashSchedule.single("q", 600.0) if crashed else None
        system = build_system(["p", "q"], seed=426 + crashed,
                              max_time=2500.0, crash=crash)
        build_full_extraction(system.engine, ["p", "q"],
                              manager_box(system), monitors=[("p", "q")],
                              monitor_invariants=True)
        system.engine.run()
        if crashed:
            rep = check_strong_completeness(
                system.engine.trace, ["p"], ["q"], system.schedule,
                detector="extracted")
        else:
            rep = check_eventual_strong_accuracy(
                system.engine.trace, ["p"], ["q"], system.schedule,
                detector="extracted")
        assert rep.ok, rep.format_table()


def test_starvation_resistance_head_of_queue():
    """The blocked-set rule: a diner whose neighbors keep requesting is not
    starved by younger compatible requests (ring topology regression)."""
    g = ring(4)
    eng, sched, _, _ = run_managed(g, seed=427, max_time=2000.0)
    wf = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                            grace=120.0)
    assert wf.ok
    sessions = list(wf.sessions.values())
    assert max(sessions) <= 3 * min(sessions)   # roughly balanced service
