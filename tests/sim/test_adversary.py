"""Tests for adversarial delay models and speed helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.adversary import (
    DelayRule,
    TargetedDelays,
    by_endpoint,
    by_kind,
    by_tag_prefix,
    slow_process,
)
from repro.sim.network import FixedDelays
from repro.types import Message

RNG = np.random.default_rng(0)


def msg(kind="data", sender="a", receiver="b", tag="t"):
    return Message(sender=sender, receiver=receiver, tag=tag, kind=kind)


class TestPredicates:
    def test_by_kind(self):
        pred = by_kind("ping", "ack")
        assert pred(msg("ping")) and pred(msg("ack"))
        assert not pred(msg("fork"))

    def test_by_endpoint_matches_both_directions(self):
        pred = by_endpoint("v")
        assert pred(msg(sender="v"))
        assert pred(msg(receiver="v"))
        assert not pred(msg())

    def test_by_tag_prefix(self):
        pred = by_tag_prefix("R[p>q]")
        assert pred(msg(tag="R[p>q]:w0"))
        assert not pred(msg(tag="other"))


class TestTargetedDelays:
    def test_untargeted_messages_unchanged(self):
        model = TargetedDelays(FixedDelays(2.0),
                               [DelayRule(by_kind("ping"), factor=10.0)])
        assert model.delay(msg("fork"), 0.0, RNG) == 2.0

    def test_factor_multiplies(self):
        model = TargetedDelays(FixedDelays(2.0),
                               [DelayRule(by_kind("ping"), factor=10.0)])
        assert model.delay(msg("ping"), 0.0, RNG) == 20.0

    def test_extra_delay_added(self):
        model = TargetedDelays(FixedDelays(1.0),
                               [DelayRule(by_kind("ping"), extra_max=5.0)])
        d = model.delay(msg("ping"), 0.0, RNG)
        assert 1.0 <= d <= 6.0

    def test_rule_expiry(self):
        model = TargetedDelays(FixedDelays(1.0),
                               [DelayRule(by_kind("ping"), factor=10.0,
                                          until=100.0)])
        assert model.delay(msg("ping"), 50.0, RNG) == 10.0
        assert model.delay(msg("ping"), 100.0, RNG) == 1.0

    def test_rules_compose(self):
        model = TargetedDelays(FixedDelays(1.0), [
            DelayRule(by_kind("ping"), factor=2.0),
            DelayRule(by_endpoint("b"), factor=3.0),
        ])
        assert model.delay(msg("ping", receiver="b"), 0.0, RNG) == 6.0

    def test_speedup_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            TargetedDelays(FixedDelays(1.0),
                           [DelayRule(by_kind("x"), factor=0.5)])


class TestDelayRuleUntilBoundary:
    """``until`` is an exclusive deadline: a rule covers sends in
    [0, until) and is dead at exactly ``now == until``."""

    RULE = DelayRule(by_kind("ping"), factor=2.0, until=100.0)

    def test_applies_strictly_before(self):
        assert self.RULE.applies(msg("ping"), 99.999)

    def test_dead_at_exact_deadline(self):
        assert not self.RULE.applies(msg("ping"), 100.0)

    def test_dead_after_deadline(self):
        assert not self.RULE.applies(msg("ping"), 100.001)

    def test_none_means_forever(self):
        rule = DelayRule(by_kind("ping"), factor=2.0, until=None)
        assert rule.applies(msg("ping"), 1e12)

    def test_predicate_still_gates_before_deadline(self):
        assert not self.RULE.applies(msg("fork"), 50.0)


def test_slow_process_helper():
    assert slow_process("q", 6.0) == {"q": 6.0}
    with pytest.raises(ConfigurationError):
        slow_process("q", 0.5)


class TestOutageDelays:
    def test_validation(self):
        from repro.sim.adversary import OutageDelays

        with pytest.raises(ConfigurationError):
            OutageDelays(growth=1.0)
        with pytest.raises(ConfigurationError):
            OutageDelays(initial_duration=0.0)

    def test_quiet_period_uses_base_delay(self):
        from repro.sim.adversary import OutageDelays
        from repro.sim.network import FixedDelays

        model = OutageDelays(base=FixedDelays(1.0), first_outage=100.0)
        assert model.delay(msg(), 10.0, RNG) == 1.0

    def test_outage_holds_messages_until_it_ends(self):
        from repro.sim.adversary import OutageDelays
        from repro.sim.network import FixedDelays

        model = OutageDelays(base=FixedDelays(1.0), first_outage=100.0,
                             initial_duration=25.0)
        d = model.delay(msg(), 110.0, RNG)
        assert 110.0 + d == pytest.approx(125.0 + 1.0)   # end + base

    def test_outages_grow_geometrically(self):
        from repro.sim.adversary import OutageDelays

        model = OutageDelays(first_outage=100.0, initial_duration=10.0,
                             recovery=50.0, growth=2.0)
        outages = model.outages_before(2000.0)
        durations = [e - s for s, e in outages]
        assert len(durations) >= 3
        for a, b in zip(durations, durations[1:]):
            assert b == pytest.approx(2.0 * a)

    def test_delays_always_finite_positive(self):
        from repro.sim.adversary import OutageDelays

        model = OutageDelays()
        for t in (0.0, 130.0, 500.0, 5000.0):
            d = model.delay(msg(), t, RNG)
            assert 0 < d < 1e9

    def test_outages_before_extends_lazily(self):
        """The schedule materializes only as far as queried, and earlier
        windows never move when the horizon grows."""
        from repro.sim.adversary import OutageDelays

        model = OutageDelays(first_outage=100.0, initial_duration=10.0,
                             recovery=50.0, growth=2.0)
        early = model.outages_before(200.0)
        late = model.outages_before(3000.0)
        assert len(late) > len(early)
        assert late[:len(early)] == early

    def test_outages_before_is_strict(self):
        """``t`` itself is excluded: a window starting at exactly ``t``
        does not count as "before" it."""
        from repro.sim.adversary import OutageDelays

        model = OutageDelays(first_outage=100.0, initial_duration=10.0,
                             recovery=50.0, growth=2.0)
        assert model.outages_before(100.0) == []
        assert model.outages_before(100.1) == [(100.0, 110.0)]

    def test_outages_before_idempotent(self):
        from repro.sim.adversary import OutageDelays

        model = OutageDelays(first_outage=100.0, initial_duration=10.0,
                             recovery=50.0, growth=2.0)
        assert model.outages_before(1000.0) == model.outages_before(1000.0)
