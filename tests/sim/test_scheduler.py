"""Tests for step-scheduling policies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.scheduler import BurstySteps, GSTSteps, UniformSteps

RNG = np.random.default_rng(0)


class TestUniform:
    def test_range_respected(self):
        pol = UniformSteps(0.5, 1.5)
        draws = [pol.next_delay("p", 0.0, RNG) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in draws)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformSteps(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            UniformSteps(0.0, 1.0)


class TestBursty:
    def test_pauses_occur(self):
        pol = BurstySteps(pause_prob=0.3, pause_lo=20.0, pause_hi=30.0)
        draws = [pol.next_delay("p", 0.0, RNG) for _ in range(300)]
        assert any(d >= 20.0 for d in draws)
        assert any(d <= 0.6 for d in draws)

    def test_all_delays_finite_positive(self):
        pol = BurstySteps(pause_prob=0.5)
        assert all(0 < pol.next_delay("p", 0.0, RNG) < 1e6
                   for _ in range(300))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstySteps(pause_prob=1.0)
        with pytest.raises(ConfigurationError):
            BurstySteps(pause_lo=5.0, pause_hi=1.0)


class TestGST:
    def test_bounded_after_gst(self):
        pol = GSTSteps(gst=100.0, lo=0.4, hi=1.2)
        draws = [pol.next_delay("p", 150.0, RNG) for _ in range(200)]
        assert all(0.4 <= d <= 1.2 for d in draws)

    def test_chaos_before_gst(self):
        pol = GSTSteps(gst=1000.0, pre_gst_max=50.0, pause_prob=0.5)
        draws = [pol.next_delay("p", 0.0, RNG) for _ in range(300)]
        assert max(draws) > 5.0

    def test_pre_gst_stall_cannot_overshoot_far(self):
        pol = GSTSteps(gst=100.0, pre_gst_max=500.0, pause_prob=1.0)
        for _ in range(100):
            d = pol.next_delay("p", 90.0, RNG)
            assert 90.0 + d <= 100.0 + pol.uniform.hi + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GSTSteps(gst=10.0, pre_gst_max=0.0)


def test_engine_integration_bursty_still_fair():
    """Bursty scheduling slows processes but never stops them."""
    from repro.sim import Engine, FixedDelays, SimConfig
    from repro.sim.component import Component, action

    class Ticker(Component):
        def __init__(self):
            super().__init__("t")
            self.n = 0

        @action(guard=lambda self: True)
        def tick(self):
            self.n += 1

    eng = Engine(
        SimConfig(seed=4, max_time=500.0,
                  step_policy=BurstySteps(pause_prob=0.1)),
        delay_model=FixedDelays(1.0),
    )
    tickers = [eng.add_process(f"p{i}").add_component(Ticker())
               for i in range(3)]
    eng.run()
    assert all(t.n > 50 for t in tickers)


def test_engine_integration_policy_is_deterministic():
    from repro.sim import Engine, FixedDelays, SimConfig
    from repro.sim.component import Component, action

    class Ticker(Component):
        def __init__(self):
            super().__init__("t")
            self.n = 0

        @action(guard=lambda self: True)
        def tick(self):
            self.n += 1

    def world():
        eng = Engine(
            SimConfig(seed=5, max_time=200.0,
                      step_policy=BurstySteps(pause_prob=0.2)),
            delay_model=FixedDelays(1.0),
        )
        t = eng.add_process("p").add_component(Ticker())
        eng.run()
        return t.n

    assert world() == world()
