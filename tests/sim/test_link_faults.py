"""Tests for the link-fault layer: drops, duplication, partitions, fairness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Engine, FixedDelays, LinkFaultModel, Partition, SimConfig
from repro.sim.component import Component, action, receive
from repro.types import Message

RNG = np.random.default_rng(0)


def msg(kind="data", sender="a", receiver="b", tag="t"):
    return Message(sender=sender, receiver=receiver, tag=tag, kind=kind)


class TestValidation:
    def test_probabilities_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            LinkFaultModel(drop=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaultModel(duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            LinkFaultModel(drop_by_kind={"ping": 2.0})

    def test_partition_window_must_be_nonempty(self):
        with pytest.raises(ConfigurationError):
            Partition.of(["a"], start=10.0, end=10.0)
        with pytest.raises(ConfigurationError):
            Partition.of([], start=0.0, end=1.0)

    def test_fairness_floor_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFaultModel(max_consecutive_drops=0)


class TestPartition:
    def test_severs_only_crossing_traffic_in_window(self):
        part = Partition.of(["a"], start=10.0, end=20.0)
        assert part.severs(msg(sender="a", receiver="b"), 15.0)
        assert part.severs(msg(sender="b", receiver="a"), 15.0)
        assert not part.severs(msg(sender="b", receiver="c"), 15.0)

    def test_window_boundaries_half_open(self):
        part = Partition.of(["a"], start=10.0, end=20.0)
        crossing = msg(sender="a", receiver="b")
        assert not part.severs(crossing, 9.999)
        assert part.severs(crossing, 10.0)
        assert not part.severs(crossing, 20.0)


class TestFate:
    def test_no_faults_means_one_copy(self):
        fate = LinkFaultModel().fate(msg(), 0.0, RNG)
        assert fate.copies == 1 and fate.reason is None

    def test_drop_rate_respected(self):
        model = LinkFaultModel(drop=0.5, max_consecutive_drops=None)
        fates = [model.fate(msg(), 0.0, RNG) for _ in range(2000)]
        dropped = sum(f.dropped for f in fates)
        assert 850 < dropped < 1150
        assert all(f.reason == "loss" for f in fates if f.dropped)

    def test_duplication_rate_respected(self):
        model = LinkFaultModel(duplicate=0.3)
        fates = [model.fate(msg(), 0.0, RNG) for _ in range(2000)]
        dups = sum(f.duplicated for f in fates)
        assert 480 < dups < 720
        assert all(f.copies == 2 for f in fates if f.duplicated)

    def test_drop_by_kind_targets_only_that_kind(self):
        model = LinkFaultModel(drop_by_kind={"ping": 1.0},
                               max_consecutive_drops=None)
        assert model.fate(msg("ping"), 0.0, RNG).dropped
        assert not model.fate(msg("fork"), 0.0, RNG).dropped

    def test_drop_by_link_is_directional(self):
        model = LinkFaultModel(drop_by_link={("a", "b"): 1.0},
                               max_consecutive_drops=None)
        assert model.fate(msg(sender="a", receiver="b"), 0.0, RNG).dropped
        assert not model.fate(msg(sender="b", receiver="a"), 0.0, RNG).dropped

    def test_effective_probability_is_max_of_layers(self):
        model = LinkFaultModel(drop=0.1, drop_by_kind={"ping": 0.6},
                               drop_by_link={("a", "b"): 0.3})
        assert model.drop_probability(msg("ping")) == 0.6
        assert model.drop_probability(msg("fork")) == 0.3
        assert model.drop_probability(msg("fork", sender="b", receiver="a")) == 0.1

    def test_partition_drop_is_deterministic_and_labelled(self):
        model = LinkFaultModel(
            partitions=[Partition.of(["a"], start=0.0, end=100.0)])
        for _ in range(50):
            fate = model.fate(msg(sender="a", receiver="b"), 50.0, RNG)
            assert fate.dropped and fate.reason == "partition"
        assert not model.fate(msg(sender="a", receiver="b"), 200.0, RNG).dropped


class TestFairness:
    def test_consecutive_random_drops_are_capped(self):
        model = LinkFaultModel(drop=1.0, max_consecutive_drops=5)
        fates = [model.fate(msg(), 0.0, RNG) for _ in range(60)]
        streak = longest = 0
        for f in fates:
            streak = streak + 1 if f.dropped else 0
            longest = max(longest, streak)
        assert longest == 5
        assert sum(not f.dropped for f in fates) == 10

    def test_streaks_tracked_per_link(self):
        model = LinkFaultModel(drop=1.0, max_consecutive_drops=3)
        for _ in range(3):
            assert model.fate(msg(sender="a", receiver="b"), 0.0, RNG).dropped
        # A different link's streak is independent: still dropping.
        assert model.fate(msg(sender="a", receiver="c"), 0.0, RNG).dropped
        # The saturated a->b link is forced through.
        assert not model.fate(msg(sender="a", receiver="b"), 0.0, RNG).dropped

    def test_partition_drops_do_not_consume_fairness_credit(self):
        model = LinkFaultModel(
            drop=1.0, max_consecutive_drops=2,
            partitions=[Partition.of(["a"], start=100.0, end=200.0)])
        crossing = msg(sender="a", receiver="b")
        assert model.fate(crossing, 0.0, RNG).dropped   # loss (streak 1)
        assert model.fate(crossing, 0.0, RNG).dropped   # loss (streak 2)
        # Inside the window the partition must hold even though the random
        # streak is saturated.
        assert model.fate(crossing, 150.0, RNG).reason == "partition"
        # After the window the saturated streak forces delivery.
        assert not model.fate(crossing, 250.0, RNG).dropped


class Receiver(Component):
    def __init__(self):
        super().__init__("rx")
        self.got = []

    @receive("data")
    def on_data(self, msg):
        self.got.append(msg.payload["n"])


class Burster(Component):
    def __init__(self, n):
        super().__init__("tx")
        self.n = n
        self.sent = 0

    @action(guard=lambda self: self.sent < self.n)
    def fire(self):
        self.send("b", "rx", "data", n=self.sent)
        self.sent += 1


def lossy_engine(fault_model, seed=1, max_time=400.0):
    eng = Engine(SimConfig(seed=seed, max_time=max_time),
                 delay_model=FixedDelays(1.0), fault_model=fault_model)
    return eng


class TestNetworkIntegration:
    def test_raw_channel_loses_messages_and_counts_them(self):
        eng = lossy_engine(LinkFaultModel(drop=0.4))
        eng.add_process("a").add_component(Burster(200))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert eng.network.dropped > 0
        assert eng.network.dropped_by_kind["data"] == eng.network.dropped
        assert len(rx.got) == 200 - eng.network.dropped
        assert eng.network.delivered == len(rx.got)

    def test_duplicates_reach_the_application_without_a_transport(self):
        eng = lossy_engine(LinkFaultModel(duplicate=0.5))
        eng.add_process("a").add_component(Burster(100))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert eng.network.duplicated > 0
        assert len(rx.got) == 100 + eng.network.duplicated
        assert len(set(rx.got)) == 100

    def test_partition_blackout_then_recovery(self):
        part = Partition.of(["a"], start=0.0, end=50.0)
        eng = lossy_engine(LinkFaultModel(partitions=[part]), max_time=60.0)
        eng.add_process("a").add_component(Burster(1000))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run(until=50.0)
        assert rx.got == []            # nothing crosses the cut
        eng.run(until=60.0)
        assert len(rx.got) > 0         # healed

    def test_drop_events_traced_when_recording(self):
        eng = Engine(SimConfig(seed=3, max_time=100.0, record_messages=True),
                     delay_model=FixedDelays(1.0),
                     fault_model=LinkFaultModel(drop=0.5))
        eng.add_process("a").add_component(Burster(50))
        eng.add_process("b").add_component(Receiver())
        eng.run()
        drops = list(eng.trace.records(kind="drop"))
        assert len(drops) == eng.network.dropped > 0
        assert all(r["reason"] == "loss" for r in drops)

    def test_faulty_runs_replay_bit_for_bit(self):
        def world(seed):
            eng = lossy_engine(
                LinkFaultModel(drop=0.3, duplicate=0.1), seed=seed)
            eng.add_process("a").add_component(Burster(100))
            rx = eng.add_process("b").add_component(Receiver())
            eng.run()
            return (tuple(rx.got), eng.network.dropped,
                    eng.network.duplicated)

        assert world(7) == world(7)
        assert world(7) != world(8)
