"""Tests for the event loop: runs, crashes, determinism, callbacks."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Engine, FixedDelays, SimConfig
from repro.sim.component import Component, action
from repro.sim.faults import CrashSchedule
from tests.conftest import make_engine


class Stepper(Component):
    def __init__(self):
        super().__init__("s")
        self.count = 0

    @action(guard=lambda self: True)
    def go(self):
        self.count += 1


def test_duplicate_process_rejected(engine):
    engine.add_process("p")
    with pytest.raises(ConfigurationError):
        engine.add_process("p")


def test_unknown_process_lookup_raises(engine):
    with pytest.raises(ConfigurationError):
        engine.process("ghost")


def test_run_advances_clock_to_horizon(engine):
    engine.add_process("p")
    engine.run(until=100.0)
    assert engine.now == 100.0


def test_processes_step_repeatedly():
    eng = make_engine(max_time=100.0)
    s = eng.add_process("p").add_component(Stepper())
    eng.run()
    # step delays are uniform(0.4, 1.2) => roughly 125 steps in 100 time units
    assert 60 < s.count < 300


def test_scheduled_crash_stops_process():
    eng = make_engine(crash=CrashSchedule.single("p", 20.0), max_time=100.0)
    s = eng.add_process("p").add_component(Stepper())
    eng.run()
    count_at_crash = s.count
    assert eng.process("p").crashed
    eng2 = make_engine(crash=CrashSchedule.single("p", 20.0), max_time=100.0)
    s2 = eng2.add_process("p").add_component(Stepper())
    eng2.run(until=20.0)
    assert s2.count == count_at_crash  # no steps after the crash


def test_crash_recorded_in_trace():
    eng = make_engine(crash=CrashSchedule.single("p", 10.0), max_time=50.0)
    eng.add_process("p")
    eng.run()
    assert eng.trace.crash_times() == {"p": 10.0}


def test_inject_crash_dynamic():
    eng = make_engine(max_time=100.0)
    s = eng.add_process("p").add_component(Stepper())
    eng.schedule_call(30.0, lambda: eng.inject_crash("p"))
    eng.run()
    assert eng.process("p").crashed
    assert abs(eng.trace.crash_times()["p"] - 30.0) < 1e-9


def test_schedule_call_runs_at_time():
    eng = make_engine(max_time=100.0)
    eng.add_process("p")
    seen = []
    eng.schedule_call(42.0, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [42.0]


def test_stop_when_halts_early():
    eng = make_engine(max_time=1000.0)
    s = eng.add_process("p").add_component(Stepper())
    eng.run(stop_when=lambda: s.count >= 10, check_every_events=1)
    assert 10 <= s.count < 15
    assert eng.now < 1000.0


def test_stop_method_halts_loop():
    eng = make_engine(max_time=1000.0)
    eng.add_process("p")
    eng.schedule_call(5.0, eng.stop)
    eng.run()
    assert eng.now == 5.0


def test_runs_resume_without_time_travel():
    eng = make_engine(max_time=100.0)
    s = eng.add_process("p").add_component(Stepper())
    eng.run(until=50.0)
    mid = s.count
    eng.run(until=100.0)
    assert s.count > mid


def test_determinism_same_seed():
    def world(seed):
        eng = make_engine(seed=seed, max_time=80.0)
        s = eng.add_process("p").add_component(Stepper())
        eng.add_process("q").add_component(Stepper())
        eng.run()
        return s.count, eng.events_processed

    assert world(9) == world(9)
    assert world(9) != world(10)


def test_event_cap_raises():
    eng = Engine(SimConfig(seed=0, max_time=1e9, max_events=100),
                 delay_model=FixedDelays(1.0))
    eng.add_process("p").add_component(Stepper())
    with pytest.raises(SimulationError):
        eng.run()


def test_live_pids_excludes_crashed():
    eng = make_engine(crash=CrashSchedule.single("p", 5.0), max_time=50.0)
    eng.add_process("p")
    eng.add_process("q")
    eng.run()
    assert eng.live_pids() == ["q"]


def test_record_messages_traces_send_and_deliver():
    from repro.sim.component import receive

    class Rx(Component):
        @receive("x")
        def on_x(self, msg):
            pass

    eng = make_engine(max_time=50.0, record_messages=True)

    class Tx(Component):
        def __init__(self):
            super().__init__("tx")
            self.done = False

        @action(guard=lambda self: not self.done)
        def go(self):
            self.done = True
            self.send("b", "rx", "x")

    eng.add_process("a").add_component(Tx())
    eng.add_process("b").add_component(Rx("rx"))
    eng.run()
    kinds = eng.trace.kinds()
    assert kinds.get("send") == 1 and kinds.get("deliver") == 1
