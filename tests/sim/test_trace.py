"""Tests for trace recording, queries, and interval extraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.trace import (
    Trace,
    intervals_overlap,
    overlapping_pairs,
    state_intervals,
)


def make_trace(rows):
    """rows: (time, kind, pid, data) tuples."""
    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    for time, kind, pid, data in rows:
        clock["now"] = time
        t.record(kind, pid=pid, **data)
    return t


def test_empty_trace():
    t = Trace()
    assert len(t) == 0 and t.last_time() == 0.0


def test_record_stamps_clock_time():
    t = make_trace([(5.0, "x", "p", {})])
    assert t.records()[0].time == 5.0


def test_records_filter_by_kind_and_pid():
    t = make_trace([
        (1.0, "a", "p", {}),
        (2.0, "b", "p", {}),
        (3.0, "a", "q", {}),
    ])
    assert len(t.records(kind="a")) == 2
    assert len(t.records(pid="p")) == 2
    assert len(t.records(kind="a", pid="q")) == 1


def test_records_filter_by_predicate():
    t = make_trace([(1.0, "a", "p", {"v": 1}), (2.0, "a", "p", {"v": 2})])
    assert len(t.records(where=lambda r: r["v"] > 1)) == 1


def test_series_extraction():
    t = make_trace([(1.0, "s", "p", {"x": "A"}), (4.0, "s", "p", {"x": "B"})])
    assert t.series("s", "x") == [(1.0, "A"), (4.0, "B")]


def test_kinds_histogram():
    t = make_trace([(1.0, "a", "p", {}), (2.0, "a", "p", {}),
                    (3.0, "b", "p", {})])
    assert t.kinds() == {"a": 2, "b": 1}


def test_crash_times():
    t = make_trace([(7.0, "crash", "p", {}), (9.0, "crash", "q", {})])
    assert t.crash_times() == {"p": 7.0, "q": 9.0}


def test_record_getitem_and_get():
    t = make_trace([(1.0, "a", "p", {"v": 3})])
    r = t.records()[0]
    assert r["v"] == 3 and r.get("missing", 0) == 0


class TestStateIntervals:
    def test_basic_closed_interval(self):
        events = [(0.0, "thinking"), (2.0, "eating"), (5.0, "thinking")]
        assert state_intervals(events, "eating", 10.0) == [(2.0, 5.0)]

    def test_open_interval_closed_at_end(self):
        events = [(0.0, "thinking"), (3.0, "eating")]
        assert state_intervals(events, "eating", 10.0) == [(3.0, 10.0)]

    def test_multiple_intervals(self):
        events = [(0.0, "e"), (1.0, "x"), (2.0, "e"), (3.0, "x")]
        assert state_intervals(events, "e", 5.0) == [(0.0, 1.0), (2.0, 3.0)]

    def test_never_in_state(self):
        assert state_intervals([(0.0, "a")], "b", 5.0) == []

    def test_consecutive_same_state_merged(self):
        events = [(0.0, "e"), (1.0, "e"), (2.0, "x")]
        assert state_intervals(events, "e", 5.0) == [(0.0, 2.0)]


class TestOverlap:
    def test_overlapping(self):
        assert intervals_overlap((0.0, 2.0), (1.0, 3.0))

    def test_touching_does_not_overlap(self):
        assert not intervals_overlap((0.0, 2.0), (2.0, 3.0))

    def test_disjoint(self):
        assert not intervals_overlap((0.0, 1.0), (2.0, 3.0))

    def test_containment_overlaps(self):
        assert intervals_overlap((0.0, 10.0), (3.0, 4.0))

    def test_overlapping_pairs_finds_all(self):
        xs = [(0.0, 2.0), (5.0, 6.0)]
        ys = [(1.0, 3.0), (5.5, 7.0)]
        assert len(overlapping_pairs(xs, ys)) == 2

    @given(
        a0=st.floats(0, 100), alen=st.floats(0.01, 50),
        b0=st.floats(0, 100), blen=st.floats(0.01, 50),
    )
    def test_overlap_is_symmetric(self, a0, alen, b0, blen):
        a, b = (a0, a0 + alen), (b0, b0 + blen)
        assert intervals_overlap(a, b) == intervals_overlap(b, a)

    @given(a0=st.floats(0, 100), alen=st.floats(0.01, 50))
    def test_interval_overlaps_itself(self, a0, alen):
        a = (a0, a0 + alen)
        assert intervals_overlap(a, a)


@given(st.lists(
    st.tuples(st.floats(0, 100), st.sampled_from(["a", "b", "c"])),
    max_size=30,
))
def test_state_intervals_are_disjoint_and_ordered(events):
    events = sorted(events, key=lambda e: e[0])
    ivs = state_intervals(events, "a", 200.0)
    for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
        assert e1 <= s2
    assert all(s <= e for s, e in ivs)
