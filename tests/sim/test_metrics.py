"""Tests for run metrics collection."""

from repro.sim.component import Component, action, receive
from repro.sim.metrics import RunMetrics, collect_metrics
from tests.conftest import make_engine


class Chatter(Component):
    def __init__(self, peer):
        super().__init__("chat")
        self.peer = peer
        self.n = 0

    @action(guard=lambda self: self.n < 5)
    def talk(self):
        self.n += 1
        self.send(self.peer, "chat", "gossip")

    @receive("gossip")
    def on_gossip(self, msg):
        pass


def test_collect_metrics_counts():
    eng = make_engine(seed=3, max_time=100.0)
    eng.add_process("a").add_component(Chatter("b"))
    eng.add_process("b").add_component(Chatter("a"))
    eng.run()
    m = collect_metrics(eng)
    assert m.messages_sent == 10
    assert m.messages_delivered == 10
    assert m.messages_by_kind == {"gossip": 10}
    assert m.virtual_time == 100.0
    assert m.total_steps == sum(m.steps_by_process.values()) > 0
    assert m.events_processed == eng.events_processed


def test_messages_per_time():
    m = RunMetrics(virtual_time=10.0, events_processed=0, messages_sent=20,
                   messages_delivered=20, messages_by_kind={},
                   steps_by_process={})
    assert m.messages_per_time() == 2.0


def test_messages_per_time_zero_guard():
    m = RunMetrics(virtual_time=0.0, events_processed=0, messages_sent=5,
                   messages_delivered=5, messages_by_kind={},
                   steps_by_process={})
    assert m.messages_per_time() == 0.0


def test_format_table_mentions_kinds():
    eng = make_engine(seed=3, max_time=50.0)
    eng.add_process("a").add_component(Chatter("b"))
    eng.add_process("b").add_component(Chatter("a"))
    eng.run()
    text = collect_metrics(eng).format_table()
    assert "gossip" in text and "messages sent" in text
