"""Tests for run metrics collection."""

from repro.sim.component import Component, action, receive
from repro.sim.metrics import RunMetrics, collect_metrics
from tests.conftest import make_engine


class Chatter(Component):
    def __init__(self, peer):
        super().__init__("chat")
        self.peer = peer
        self.n = 0

    @action(guard=lambda self: self.n < 5)
    def talk(self):
        self.n += 1
        self.send(self.peer, "chat", "gossip")

    @receive("gossip")
    def on_gossip(self, msg):
        pass


def test_collect_metrics_counts():
    eng = make_engine(seed=3, max_time=100.0)
    eng.add_process("a").add_component(Chatter("b"))
    eng.add_process("b").add_component(Chatter("a"))
    eng.run()
    m = collect_metrics(eng)
    assert m.messages_sent == 10
    assert m.messages_delivered == 10
    assert m.messages_by_kind == {"gossip": 10}
    assert m.virtual_time == 100.0
    assert m.total_steps == sum(m.steps_by_process.values()) > 0
    assert m.events_processed == eng.events_processed


def test_messages_per_time():
    m = RunMetrics(virtual_time=10.0, events_processed=0, messages_sent=20,
                   messages_delivered=20, messages_by_kind={},
                   steps_by_process={})
    assert m.messages_per_time() == 2.0


def test_messages_per_time_zero_guard():
    m = RunMetrics(virtual_time=0.0, events_processed=0, messages_sent=5,
                   messages_delivered=5, messages_by_kind={},
                   steps_by_process={})
    assert m.messages_per_time() == 0.0


def test_metrics_is_a_view_over_the_registry_snapshot():
    """The fold: RunMetrics reads the same counters every exporter sees."""
    eng = make_engine(seed=3, max_time=100.0)
    eng.add_process("a").add_component(Chatter("b"))
    eng.add_process("b").add_component(Chatter("a"))
    eng.run()
    m = collect_metrics(eng)
    snap = m.snapshot
    assert m.messages_sent == snap.counter_value("net.messages_sent")
    assert m.virtual_time == snap.gauge_value("sim.virtual_time")
    assert m.events_processed == snap.gauge_value("sim.events_processed")
    assert m.steps_by_process["a"] == \
        snap.gauge_value('sim.steps{process="a"}')
    assert m.messages_by_kind["gossip"] == \
        snap.counter_value('net.messages_sent{kind="gossip"}')


def test_legacy_kwargs_and_from_values_agree():
    legacy = RunMetrics(virtual_time=10.0, events_processed=4,
                        messages_sent=20, messages_delivered=18,
                        messages_by_kind={"x": 20}, steps_by_process={"p": 7},
                        messages_dropped=2, retransmissions=1)
    explicit = RunMetrics.from_values(
        virtual_time=10.0, events_processed=4, messages_sent=20,
        messages_delivered=18, messages_by_kind={"x": 20},
        steps_by_process={"p": 7}, messages_dropped=2, retransmissions=1)
    assert legacy == explicit
    assert legacy.messages_dropped == 2
    assert legacy.total_steps == 7


def test_format_table_mentions_kinds():
    eng = make_engine(seed=3, max_time=50.0)
    eng.add_process("a").add_component(Chatter("b"))
    eng.add_process("b").add_component(Chatter("a"))
    eng.run()
    text = collect_metrics(eng).format_table()
    assert "gossip" in text and "messages sent" in text
