"""Unit tests for the process step loop (atomic steps, fairness, crashes)."""

import pytest

from repro.errors import ConfigurationError, CrashedProcessError
from repro.sim.component import Component, action, receive
from repro.sim.process import Process
from repro.types import Message


class Ticker(Component):
    def __init__(self, name="t"):
        super().__init__(name)
        self.fired = []

    @action(guard=lambda self: True)
    def a1(self):
        self.fired.append("a1")

    @action(guard=lambda self: True)
    def a2(self):
        self.fired.append("a2")

    @receive("m")
    def on_m(self, msg):
        self.fired.append(f"m:{msg.payload['n']}")


def proc_with(component):
    p = Process("p")
    p.add_component(component)
    return p


def test_duplicate_component_rejected():
    p = Process("p")
    p.add_component(Ticker("x"))
    with pytest.raises(ConfigurationError):
        p.add_component(Ticker("x"))


def test_unknown_component_lookup_raises():
    with pytest.raises(ConfigurationError):
        Process("p").component("nope")


def test_step_executes_one_action_only():
    t = Ticker()
    p = proc_with(t)
    p.step()
    assert len(t.fired) == 1


def test_round_robin_rotation_is_weakly_fair():
    t = Ticker()
    p = proc_with(t)
    for _ in range(6):
        p.step()
    # Both always-enabled actions fire alternately; neither starves.
    assert t.fired.count("a1") == 3
    assert t.fired.count("a2") == 3


def test_step_with_no_enabled_action_is_noop():
    class Idle(Component):
        @action(guard=lambda self: False)
        def never(self):
            raise AssertionError

    p = proc_with(Idle("i"))
    assert p.step() is None


def test_step_returns_qualified_action_name():
    p = proc_with(Ticker("tick"))
    assert p.step() == "tick.a1"


def test_at_most_one_message_consumed_per_step():
    t = Ticker()
    p = proc_with(t)
    p.deliver(Message("q", "p", "t", "m", payload={"n": 1}))
    p.deliver(Message("q", "p", "t", "m", payload={"n": 2}))
    # The receive action is one of three; rotation reaches it once per cycle
    # and consumes exactly one message then.
    for _ in range(3):
        p.step()
    assert p.inbox_size() == 1


def test_messages_consumed_in_arrival_order_per_action():
    t = Ticker()
    p = proc_with(t)
    for n in (1, 2, 3):
        p.deliver(Message("q", "p", "t", "m", payload={"n": n}))
    for _ in range(9):
        p.step()
    got = [f for f in t.fired if f.startswith("m:")]
    assert got == ["m:1", "m:2", "m:3"]


def test_crashed_process_cannot_step():
    p = proc_with(Ticker())
    p.crash(at=1.0)
    with pytest.raises(CrashedProcessError):
        p.step()


def test_crashed_process_drops_deliveries():
    p = proc_with(Ticker())
    p.crash(at=1.0)
    p.deliver(Message("q", "p", "t", "m", payload={"n": 1}))
    assert p.inbox_size() == 0


def test_crash_records_time():
    p = proc_with(Ticker())
    p.crash(at=42.0)
    assert p.crashed and p.crash_time == 42.0


def test_messages_for_other_components_not_consumed():
    t = Ticker("t")
    p = proc_with(t)
    p.deliver(Message("q", "p", "other", "m", payload={"n": 9}))
    for _ in range(5):
        p.step()
    assert p.inbox_size() == 1
    assert not any(f.startswith("m:") for f in t.fired)


def test_steps_taken_counter():
    p = proc_with(Ticker())
    for _ in range(4):
        p.step()
    assert p.steps_taken == 4


def test_interleaving_across_components():
    a, b = Ticker("a"), Ticker("b")
    p = Process("p")
    p.add_component(a)
    p.add_component(b)
    for _ in range(12):
        p.step()
    # Both components' always-enabled actions got turns.
    assert len(a.fired) == 6 and len(b.fired) == 6
