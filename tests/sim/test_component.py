"""Unit tests for guarded-action components."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.component import Component, FunctionalComponent, action, receive
from repro.sim.process import Process
from repro.types import Message


class Counter(Component):
    def __init__(self, name="counter", limit=3):
        super().__init__(name)
        self.count = 0
        self.limit = limit
        self.received = []

    @action(guard=lambda self: self.count < self.limit)
    def bump(self):
        self.count += 1

    @receive("poke")
    def on_poke(self, msg):
        self.received.append(msg.payload.get("n"))


def test_component_requires_name():
    with pytest.raises(ConfigurationError):
        Counter(name="")


def test_bound_actions_collected_in_order():
    names = [a.name for a in Counter().bound_actions()]
    assert names == ["bump", "on_poke"]


def test_action_kinds():
    actions = {a.name: a for a in Counter().bound_actions()}
    assert actions["bump"].kind == "internal"
    assert actions["on_poke"].kind == "receive"
    assert actions["on_poke"].message_kind == "poke"


def test_qualified_name():
    acts = Counter("c1").bound_actions()
    assert acts[0].qualified_name() == "c1.bump"


def test_detached_component_cannot_send():
    c = Counter()
    with pytest.raises(SimulationError):
        c.send("q", "t", "k")


def test_detached_component_has_no_pid():
    with pytest.raises(SimulationError):
        _ = Counter().pid


def test_subclass_inherits_base_actions():
    class Extended(Counter):
        @action(guard=lambda self: True)
        def extra(self):
            pass

    names = {a.name for a in Extended().bound_actions()}
    assert {"bump", "on_poke", "extra"} <= names


def test_functional_component_actions():
    log = []
    comp = FunctionalComponent(
        "f",
        internal=[("go", lambda c: True, lambda: log.append("go"))],
        receives=[("msg", "ping", lambda m: log.append("ping"))],
    )
    acts = comp.bound_actions()
    assert [a.kind for a in acts] == ["internal", "receive"]


def test_other_component_lookup():
    proc = Process("p")
    a = Counter("a")
    b = Counter("b")
    proc.add_component(a)
    proc.add_component(b)
    assert a.other_component("b") is b


def test_other_component_missing_raises():
    proc = Process("p")
    a = proc.add_component(Counter("a"))
    with pytest.raises(ConfigurationError):
        a.other_component("nope")


def test_receive_guard_defers_message(engine):
    class Gated(Component):
        def __init__(self):
            super().__init__("gated")
            self.open = False
            self.got = 0

        @receive("knock", guard=lambda self, msg: self.open)
        def on_knock(self, msg):
            self.got += 1

    proc = engine.add_process("p")
    g = proc.add_component(Gated())
    proc.deliver(Message("q", "p", "gated", "knock"))
    proc.step()
    assert g.got == 0 and proc.inbox_size() == 1  # deferred, not dropped
    g.open = True
    proc.step()
    assert g.got == 1 and proc.inbox_size() == 0
