"""Tests for ReliableTransport: exactly-once delivery over fair-lossy links."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    Engine,
    FixedDelays,
    LinkFaultModel,
    Partition,
    ReliableTransport,
    RetransmitPolicy,
    SimConfig,
)
from repro.sim.component import Component, action, receive
from repro.sim.faults import CrashSchedule
from repro.sim.network import AsynchronousDelays


class Receiver(Component):
    def __init__(self):
        super().__init__("rx")
        self.got = []

    @receive("data")
    def on_data(self, msg):
        self.got.append(msg.payload["n"])


class Burster(Component):
    def __init__(self, n, to="b"):
        super().__init__("tx")
        self.n = n
        self.to = to
        self.sent = 0

    @action(guard=lambda self: self.sent < self.n)
    def fire(self):
        self.send(self.to, "rx", "data", n=self.sent)
        self.sent += 1


def build(fault_model=None, seed=1, max_time=2000.0, delay=None,
          policy=None, crash=None):
    eng = Engine(SimConfig(seed=seed, max_time=max_time),
                 delay_model=delay or FixedDelays(1.0),
                 crash_schedule=crash or CrashSchedule.none(),
                 fault_model=fault_model)
    transport = ReliableTransport(policy or RetransmitPolicy(
        rto_initial=4.0, rto_max=40.0)).install(eng)
    return eng, transport


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(rto_initial=0.0)
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(rto_initial=10.0, rto_max=5.0)
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(jitter=1.0)

    def test_double_install_rejected(self):
        eng, transport = build()
        with pytest.raises(ConfigurationError):
            transport.install(eng)
        with pytest.raises(ConfigurationError):
            ReliableTransport().install(eng)


class TestReliableDelivery:
    def test_exactly_once_under_heavy_loss(self):
        eng, transport = build(LinkFaultModel(drop=0.5), max_time=3000.0)
        eng.add_process("a").add_component(Burster(100))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(100))   # all delivered...
        assert len(rx.got) == 100                   # ...exactly once
        assert transport.retransmissions > 0
        assert transport.in_flight() == 0           # everything acked

    def test_exactly_once_under_duplication(self):
        eng, transport = build(LinkFaultModel(duplicate=0.4))
        eng.add_process("a").add_component(Burster(80))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(80))
        assert len(rx.got) == 80
        assert transport.duplicates_suppressed > 0

    def test_lost_acks_recovered_by_reack(self):
        # Drop only acks: data always arrives, every retransmission is a
        # wire duplicate the receiver must suppress and re-ack.
        eng, transport = build(
            LinkFaultModel(drop_by_kind={"rtp.ack": 0.6}), max_time=3000.0)
        eng.add_process("a").add_component(Burster(50))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(50)) and len(rx.got) == 50
        assert transport.duplicates_suppressed > 0
        assert transport.in_flight() == 0

    def test_delivery_through_a_partition_window(self):
        part = Partition.of(["a"], start=20.0, end=120.0)
        eng, transport = build(LinkFaultModel(partitions=[part]),
                               max_time=1000.0)
        eng.add_process("a").add_component(Burster(60))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run(until=119.0)
        assert len(rx.got) < 60            # cut traffic is missing...
        eng.run()
        assert sorted(rx.got) == list(range(60))   # ...and recovered after heal

    def test_reliable_but_still_non_fifo(self):
        eng, transport = build(
            LinkFaultModel(drop=0.2),
            delay=AsynchronousDelays(straggler_prob=0.3, straggler_max=30.0),
            max_time=3000.0)
        eng.add_process("a").add_component(Burster(60))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(60))
        assert rx.got != sorted(rx.got)    # ordering stays arbitrary

    def test_clean_channel_is_passthrough_with_acks_only(self):
        eng, transport = build(fault_model=None)
        eng.add_process("a").add_component(Burster(30))
        rx = eng.add_process("b").add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(30))
        assert transport.retransmissions == 0
        assert transport.acks_sent == 30
        # App-level metrics unchanged by the transport:
        assert eng.network.sent == 30 and eng.network.delivered == 30


class TestBackoff:
    def test_rto_grows_and_caps(self):
        policy = RetransmitPolicy(rto_initial=2.0, rto_max=16.0, backoff=2.0,
                                  jitter=0.0)
        eng, transport = build(LinkFaultModel(drop=1.0,
                                              max_consecutive_drops=None),
                               policy=policy, max_time=200.0)
        eng.add_process("a")
        eng.add_process("b").add_component(Receiver())
        eng.process("a").add_component(Burster(1))
        eng.run()
        entry = next(iter(transport._pending.values()))
        assert entry.rto == 16.0                      # capped
        assert transport.retransmissions >= 6

    def test_retry_traffic_stays_bounded(self):
        # A saturated dead link must not blow the event budget: backoff
        # caps the retry rate at ~1/rto_max per pending message.
        policy = RetransmitPolicy(rto_initial=2.0, rto_max=50.0, jitter=0.0)
        eng, transport = build(LinkFaultModel(drop=1.0,
                                              max_consecutive_drops=None),
                               policy=policy, max_time=5000.0)
        eng.add_process("a").add_component(Burster(5))
        eng.add_process("b").add_component(Receiver())
        eng.run()
        assert transport.retransmissions < 5 * (5000 / 50 + 10)


class TestCrashes:
    def test_retries_to_crashed_receiver_are_abandoned(self):
        eng, transport = build(LinkFaultModel(drop=0.9),
                               crash=CrashSchedule.single("b", 10.0),
                               max_time=1000.0)
        eng.add_process("a").add_component(Burster(20))
        eng.add_process("b").add_component(Receiver())
        eng.run()
        assert transport.in_flight() == 0
        assert transport.abandoned > 0

    def test_sender_crash_stops_its_retry_chains(self):
        eng, transport = build(LinkFaultModel(drop=0.9),
                               crash=CrashSchedule.single("a", 15.0),
                               max_time=1000.0)
        eng.add_process("a").add_component(Burster(50))
        eng.add_process("b").add_component(Receiver())
        eng.run()
        assert transport.in_flight() == 0


class TestDeterminism:
    def test_same_seed_same_wire_history(self):
        def world(seed):
            eng, transport = build(LinkFaultModel(drop=0.4, duplicate=0.1),
                                   seed=seed, max_time=1500.0)
            eng.add_process("a").add_component(Burster(40))
            rx = eng.add_process("b").add_component(Receiver())
            eng.run()
            s = transport.stats()
            return (tuple(rx.got), s.retransmissions, s.acks_sent,
                    s.duplicates_suppressed, eng.network.dropped)

        assert world(11) == world(11)
        assert world(11) != world(12)
