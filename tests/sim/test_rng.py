"""Unit tests for deterministic RNG streams."""

import numpy as np

from repro.sim.rng import RngRegistry, _stream_key


def test_same_name_returns_cached_stream():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_different_names_give_independent_streams():
    reg = RngRegistry(seed=1)
    a = reg.stream("a").random(8)
    b = reg.stream("b").random(8)
    assert not np.allclose(a, b)


def test_same_seed_reproduces_streams():
    xs = RngRegistry(seed=7).stream("net").random(16)
    ys = RngRegistry(seed=7).stream("net").random(16)
    assert np.array_equal(xs, ys)


def test_different_seeds_differ():
    xs = RngRegistry(seed=7).stream("net").random(16)
    ys = RngRegistry(seed=8).stream("net").random(16)
    assert not np.array_equal(xs, ys)


def test_stream_independent_of_creation_order():
    r1 = RngRegistry(seed=3)
    r1.stream("x")
    a = r1.stream("y").random(4)
    r2 = RngRegistry(seed=3)
    b = r2.stream("y").random(4)   # no prior "x" stream
    assert np.array_equal(a, b)


def test_fork_gives_uncorrelated_registry():
    base = RngRegistry(seed=5)
    forked = base.fork("replica")
    assert forked.seed != base.seed
    a = base.stream("s").random(8)
    b = forked.stream("s").random(8)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic():
    a = RngRegistry(seed=5).fork("x").stream("s").random(4)
    b = RngRegistry(seed=5).fork("x").stream("s").random(4)
    assert np.array_equal(a, b)


def test_stream_key_is_stable():
    assert _stream_key("network") == _stream_key("network")
    assert _stream_key("network") != _stream_key("networl")
