"""Unit tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock


def test_starts_at_zero_by_default():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(start=5.5).now == 5.5


def test_advance_moves_forward():
    c = Clock()
    c.advance_to(3.0)
    assert c.now == 3.0


def test_advance_to_same_time_is_allowed():
    c = Clock(start=2.0)
    c.advance_to(2.0)
    assert c.now == 2.0


def test_advance_backwards_raises():
    c = Clock(start=10.0)
    with pytest.raises(SimulationError):
        c.advance_to(9.999)


def test_many_small_advances_accumulate():
    c = Clock()
    for i in range(100):
        c.advance_to(i * 0.5)
    assert c.now == 49.5


def test_integer_start_becomes_float():
    c = Clock(start=3)
    assert isinstance(c.now, float)
