"""Tests for the shared-memory register bank."""

from repro.sim.shm import SharedMemory


def test_unwritten_reads_default():
    shm = SharedMemory()
    assert shm.read("x") is None
    assert shm.read("x", default=7) == 7


def test_write_then_read():
    shm = SharedMemory()
    shm.write("x", 42)
    assert shm.read("x") == 42


def test_cas_success():
    shm = SharedMemory()
    shm.write("x", 1)
    assert shm.cas("x", 1, 2)
    assert shm.read("x") == 2


def test_cas_failure_leaves_value():
    shm = SharedMemory()
    shm.write("x", 1)
    assert not shm.cas("x", 99, 2)
    assert shm.read("x") == 1


def test_cas_on_unwritten_register_uses_default():
    shm = SharedMemory()
    assert shm.cas("orec", None, "tx1")   # default None matches
    assert shm.read("orec") == "tx1"


def test_tuple_register_names():
    shm = SharedMemory()
    shm.write(("val", "counter"), (3, 1))
    assert shm.read(("val", "counter")) == (3, 1)


def test_op_counters():
    shm = SharedMemory()
    shm.read("x")
    shm.write("x", 1)
    shm.cas("x", 1, 2)
    shm.cas("x", 99, 3)
    counts = shm.op_counts()
    assert counts == {"reads": 1, "writes": 1, "cas_attempts": 2,
                      "cas_successes": 1}


def test_snapshot_is_a_copy():
    shm = SharedMemory()
    shm.write("x", 1)
    snap = shm.snapshot()
    snap["x"] = 99
    assert shm.read("x") == 1
