"""Tests for trace save/load round-trips."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.persistence import load_trace, save_trace
from repro.sim.trace import Trace


def sample_trace():
    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    clock["now"] = 1.5
    t.record("state", pid="p", instance="I", state="hungry")
    clock["now"] = 3.0
    t.record("suspect", pid="p", target="q", suspected=True, detector="fd")
    clock["now"] = 9.0
    t.record("crash", pid="q")
    return t


def test_roundtrip_preserves_records(tmp_path):
    t = sample_trace()
    path = tmp_path / "run.jsonl"
    assert save_trace(t, path, metadata={"seed": 7}) == 3
    loaded, meta = load_trace(path)
    assert meta == {"seed": 7}
    assert len(loaded) == len(t)
    for a, b in zip(loaded, t):
        assert (a.time, a.kind, a.pid, dict(a.data)) == \
               (b.time, b.kind, b.pid, dict(b.data))


def test_checkers_work_on_loaded_trace(tmp_path):
    from repro.oracles.properties import suspicion_series

    path = tmp_path / "run.jsonl"
    save_trace(sample_trace(), path)
    loaded, _ = load_trace(path)
    assert suspicion_series(loaded, "p", "q") == [(3.0, True)]
    assert loaded.crash_times() == {"q": 9.0}


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ConfigurationError):
        load_trace(path)


def test_wrong_schema_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": 99, "records": 0}\n')
    with pytest.raises(ConfigurationError):
        load_trace(path)


def test_truncation_detected(tmp_path):
    t = sample_trace()
    path = tmp_path / "run.jsonl"
    save_trace(t, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")   # drop last record
    with pytest.raises(ConfigurationError):
        load_trace(path)


def test_real_run_roundtrip(tmp_path):
    """Save a genuine simulation trace and re-run a checker on it."""
    from repro.dining.spec import check_wait_freedom
    from repro.graphs import pair_graph
    from tests.dining.helpers import INSTANCE, run_dining

    g = pair_graph("a", "b")
    eng, sched, _, _ = run_dining(g, seed=77, max_time=400.0)
    live = check_wait_freedom(eng.trace, g, INSTANCE, sched, eng.now,
                              grace=60.0)
    path = tmp_path / "dining.jsonl"
    save_trace(eng.trace, path)
    loaded, _ = load_trace(path)
    replayed = check_wait_freedom(loaded, g, INSTANCE, sched, eng.now,
                                  grace=60.0)
    assert replayed.ok == live.ok
    assert replayed.sessions == live.sessions
