"""Tests for crash schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.faults import CrashSchedule


def test_none_schedule_is_failure_free():
    s = CrashSchedule.none()
    assert s.faulty == frozenset()
    assert s.last_crash_time() == 0.0


def test_single():
    s = CrashSchedule.single("p", 3.0)
    assert s.is_faulty("p") and not s.is_faulty("q")
    assert s.crash_time("p") == 3.0 and s.crash_time("q") is None


def test_negative_crash_time_rejected():
    with pytest.raises(ConfigurationError):
        CrashSchedule({"p": -1.0})


def test_live_at_semantics():
    s = CrashSchedule.single("p", 5.0)
    assert s.is_live_at("p", 4.999)
    assert not s.is_live_at("p", 5.0)
    assert s.is_live_at("q", 1e9)


def test_correct_subset():
    s = CrashSchedule({"a": 1.0, "c": 2.0})
    assert s.correct(["a", "b", "c", "d"]) == frozenset({"b", "d"})


def test_last_crash_time():
    s = CrashSchedule({"a": 1.0, "b": 9.0})
    assert s.last_crash_time() == 9.0


def test_random_respects_max_faulty():
    rng = np.random.default_rng(0)
    pids = [f"p{i}" for i in range(10)]
    for _ in range(50):
        s = CrashSchedule.random(pids, max_faulty=3, horizon=100.0, rng=rng)
        assert len(s.faulty) <= 3
        assert all(0 <= t < 100.0 for _, t in s.items())


def test_random_is_seed_deterministic():
    pids = ["a", "b", "c", "d"]
    s1 = CrashSchedule.random(pids, 2, 50.0, np.random.default_rng(42))
    s2 = CrashSchedule.random(pids, 2, 50.0, np.random.default_rng(42))
    assert dict(s1.items()) == dict(s2.items())


def test_items_iterates_crashes():
    s = CrashSchedule({"a": 1.0})
    assert list(s.items()) == [("a", 1.0)]
