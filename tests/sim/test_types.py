"""Unit tests for shared value types."""

import pytest

from repro.types import DINER_CYCLE, DinerState, Message


class TestMessage:
    def test_uids_are_unique(self):
        a = Message("p", "q", "t", "k")
        b = Message("p", "q", "t", "k")
        assert a.uid != b.uid

    def test_matches_tag_only(self):
        m = Message("p", "q", "dining", "fork")
        assert m.matches("dining")
        assert not m.matches("other")

    def test_matches_tag_and_kind(self):
        m = Message("p", "q", "dining", "fork")
        assert m.matches("dining", "fork")
        assert not m.matches("dining", "req")

    def test_payload_defaults_empty(self):
        assert dict(Message("p", "q", "t", "k").payload) == {}

    def test_payload_carried(self):
        m = Message("p", "q", "t", "k", payload={"round": 3})
        assert m.payload["round"] == 3

    def test_frozen(self):
        m = Message("p", "q", "t", "k")
        with pytest.raises(AttributeError):
            m.sender = "x"  # type: ignore[misc]


class TestDinerState:
    def test_cycle_has_four_phases(self):
        assert len(DINER_CYCLE) == 4

    def test_cycle_order(self):
        assert DINER_CYCLE == (
            DinerState.THINKING, DinerState.HUNGRY,
            DinerState.EATING, DinerState.EXITING,
        )

    def test_str_is_value(self):
        assert str(DinerState.EATING) == "eating"
