"""Tests for temporal operators over finite series."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.temporal import (
    always,
    change_times,
    convergence_time,
    count_violations,
    eventually_always,
    holds_at_end,
    leads_to,
    stable_suffix_start,
    value_at,
)

BOOLS = st.lists(st.tuples(st.floats(0, 1000), st.booleans()), max_size=40)


def sorted_series(raw):
    return sorted(raw, key=lambda x: x[0])


class TestValueAt:
    def test_step_function_semantics(self):
        s = [(1.0, "a"), (5.0, "b")]
        assert value_at(s, 0.5, default="z") == "z"
        assert value_at(s, 1.0) == "a"
        assert value_at(s, 4.9) == "a"
        assert value_at(s, 5.0) == "b"
        assert value_at(s, 100.0) == "b"

    def test_empty_series_gives_default(self):
        assert value_at([], 3.0, default=7) == 7


class TestConvergence:
    def test_converges_at_last_flip(self):
        s = [(1.0, False), (2.0, True), (3.0, False), (4.0, True)]
        assert convergence_time(s, lambda v: v) == 4.0

    def test_holds_throughout(self):
        s = [(1.0, True), (2.0, True)]
        assert convergence_time(s, lambda v: v) == 1.0

    def test_never_converges(self):
        s = [(1.0, True), (2.0, False)]
        assert convergence_time(s, lambda v: v) is None

    def test_initial_value_considered(self):
        assert convergence_time([], lambda v: v, initial=True) == 0.0
        assert convergence_time([], lambda v: v, initial=False) is None

    def test_empty_series_no_initial(self):
        assert convergence_time([], lambda v: v) is None


class TestOperators:
    def test_eventually_always(self):
        assert eventually_always([(1.0, False), (2.0, True)], lambda v: v)
        assert not eventually_always([(1.0, True), (2.0, False)], lambda v: v)

    def test_always(self):
        assert always([(1.0, True), (2.0, True)], lambda v: v)
        assert not always([(1.0, True), (2.0, False)], lambda v: v)

    def test_always_with_initial(self):
        assert not always([(1.0, True)], lambda v: v, initial=False)

    def test_holds_at_end(self):
        assert holds_at_end([(1.0, False), (2.0, True)], lambda v: v)
        assert not holds_at_end([], lambda v: v)

    def test_count_violations(self):
        s = [(1.0, True), (2.0, False), (3.0, False), (4.0, True)]
        assert count_violations(s, lambda v: v) == 2

    def test_change_times(self):
        s = [(1.0, "a"), (2.0, "a"), (3.0, "b"), (4.0, "b"), (5.0, "a")]
        assert change_times(s) == [1.0, 3.0, 5.0]

    def test_stable_suffix_start(self):
        s = [(1.0, "a"), (3.0, "b"), (4.0, "b")]
        assert stable_suffix_start(s) == 3.0
        assert stable_suffix_start([]) is None


class TestLeadsTo:
    def test_every_trigger_answered(self):
        assert leads_to([1.0, 5.0], [2.0, 6.0])

    def test_unanswered_trigger(self):
        assert not leads_to([1.0, 5.0], [2.0])

    def test_response_must_be_strictly_later(self):
        assert not leads_to([3.0], [3.0])

    def test_within_bound(self):
        assert leads_to([1.0], [2.5], within=2.0)
        assert not leads_to([1.0], [4.0], within=2.0)

    def test_no_triggers_trivially_true(self):
        assert leads_to([], [])


@given(BOOLS)
def test_convergence_implies_final_value_holds(raw):
    s = sorted_series(raw)
    conv = convergence_time(s, lambda v: v)
    if conv is not None and s:
        assert s[-1][1]


@given(BOOLS)
def test_eventually_always_consistent_with_convergence(raw):
    s = sorted_series(raw)
    assert eventually_always(s, lambda v: v) == (
        convergence_time(s, lambda v: v) is not None
    )


@given(BOOLS)
def test_always_implies_eventually_always(raw):
    s = sorted_series(raw)
    if s and always(s, lambda v: v):
        assert eventually_always(s, lambda v: v)
