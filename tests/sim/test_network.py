"""Tests for channels and delay models: reliability, non-FIFO, GST bounds."""

import numpy as np
import pytest

from repro.sim.component import Component, action, receive
from repro.sim.network import (
    AsynchronousDelays,
    FixedDelays,
    PartialSynchronyDelays,
    mean_delay_estimate,
)
from repro.types import Message
from tests.conftest import make_engine

PROBE = Message("a", "b", "t", "probe")


class TestDelayModels:
    def test_fixed_delay_constant(self):
        rng = np.random.default_rng(0)
        model = FixedDelays(2.5)
        assert all(model.delay(PROBE, t, rng) == 2.5 for t in (0.0, 10.0, 99.0))

    def test_fixed_delay_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedDelays(0.0)

    def test_async_delays_positive(self):
        rng = np.random.default_rng(1)
        model = AsynchronousDelays()
        assert all(model.delay(PROBE, 0.0, rng) > 0 for _ in range(200))

    def test_async_delays_have_stragglers(self):
        rng = np.random.default_rng(2)
        model = AsynchronousDelays(median=1.0, straggler_prob=0.2,
                                   straggler_max=50.0)
        draws = [model.delay(PROBE, 0.0, rng) for _ in range(500)]
        assert max(draws) > 10.0  # heavy tail present

    def test_partial_synchrony_bounded_after_gst(self):
        rng = np.random.default_rng(3)
        model = PartialSynchronyDelays(gst=100.0, delta=2.0)
        assert all(model.delay(PROBE, 100.0 + t, rng) <= 2.0
                   for t in range(100))

    def test_partial_synchrony_pre_gst_delivery_by_gst_plus_delta(self):
        rng = np.random.default_rng(4)
        model = PartialSynchronyDelays(gst=100.0, delta=2.0, pre_gst_max=500.0)
        for now in (0.0, 50.0, 99.0):
            for _ in range(50):
                deliver_at = now + model.delay(PROBE, now, rng)
                assert deliver_at <= 102.0 + 1e-9

    def test_partial_synchrony_chaotic_before_gst(self):
        rng = np.random.default_rng(5)
        model = PartialSynchronyDelays(gst=1000.0, delta=1.0, pre_gst_max=300.0)
        draws = [model.delay(PROBE, 0.0, rng) for _ in range(300)]
        assert max(draws) > 50.0

    def test_partial_synchrony_validation(self):
        with pytest.raises(ValueError):
            PartialSynchronyDelays(gst=10.0, delta=0.0)

    def test_mean_delay_estimate(self):
        assert mean_delay_estimate(FixedDelays(3.0), now=0.0) == pytest.approx(3.0)


class Receiver(Component):
    def __init__(self):
        super().__init__("rx")
        self.got = []

    @receive("data")
    def on_data(self, msg):
        self.got.append(msg.payload["n"])


class Burster(Component):
    def __init__(self, n):
        super().__init__("tx")
        self.n = n
        self.sent = 0

    @action(guard=lambda self: self.sent < self.n)
    def fire(self):
        self.send("b", "rx", "data", n=self.sent)
        self.sent += 1


class TestNetworkSemantics:
    def test_every_message_delivered_to_correct_process(self):
        eng = make_engine(seed=2, max_time=300.0)
        a = eng.add_process("a")
        b = eng.add_process("b")
        a.add_component(Burster(20))
        rx = b.add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(20))
        assert eng.network.delivered == 20

    def test_non_fifo_reordering_occurs(self):
        from repro.sim import Engine, SimConfig

        eng = Engine(SimConfig(seed=3, max_time=600.0),
                     delay_model=AsynchronousDelays(straggler_prob=0.3,
                                                    straggler_max=30.0))
        a = eng.add_process("a")
        b = eng.add_process("b")
        a.add_component(Burster(40))
        rx = b.add_component(Receiver())
        eng.run()
        assert sorted(rx.got) == list(range(40))  # reliable
        assert rx.got != sorted(rx.got)           # but reordered

    def test_messages_to_crashed_process_are_dropped(self):
        from repro.sim.faults import CrashSchedule

        eng = make_engine(seed=4, max_time=200.0,
                          crash=CrashSchedule.single("b", 5.0))
        a = eng.add_process("a")
        b = eng.add_process("b")
        a.add_component(Burster(50))
        rx = b.add_component(Receiver())
        eng.run()
        assert len(rx.got) < 50
        assert eng.network.delivered < eng.network.sent

    def test_sent_by_kind_counts(self):
        eng = make_engine(seed=5, max_time=100.0)
        a = eng.add_process("a")
        eng.add_process("b").add_component(Receiver())
        a.add_component(Burster(7))
        eng.run()
        assert eng.network.sent_by_kind["data"] == 7

    def test_on_send_hook_invoked(self):
        eng = make_engine(seed=6, max_time=100.0)
        seen = []
        eng.network.on_send = seen.append
        a = eng.add_process("a")
        eng.add_process("b").add_component(Receiver())
        a.add_component(Burster(3))
        eng.run()
        assert len(seen) == 3
