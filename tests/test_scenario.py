"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import Scenario, parse_graph


class TestParseGraph:
    @pytest.mark.parametrize("spec,nodes,edges", [
        ("ring:4", 4, 4),
        ("clique:3", 3, 3),
        ("path:5", 5, 4),
        ("star:3", 4, 3),
        ("grid:2x3", 6, 7),
    ])
    def test_shapes(self, spec, nodes, edges):
        g = parse_graph(spec)
        assert g.number_of_nodes() == nodes
        assert g.number_of_edges() == edges

    def test_pair(self):
        g = parse_graph("pair:alice, bob")
        assert set(g.nodes) == {"alice", "bob"}

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            parse_graph("torus:3")

    def test_bad_arg(self):
        with pytest.raises(ConfigurationError):
            parse_graph("ring:banana")


class TestScenarioConstruction:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"graph": "ring:3", "typo_key": 1})

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", algorithm="quantum",
                     max_time=10.0).run()

    def test_unknown_client_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", client="lazy", max_time=10.0).run()

    def test_crash_of_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", crashes={"ghost": 5.0}).run()

    def test_from_json_roundtrip(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "x", "graph": "ring:3",
                                    "max_time": 300.0}))
        s = Scenario.from_json(path)
        assert s.name == "x" and s.graph == "ring:3"


class TestScenarioRuns:
    def test_basic_run_reports(self):
        rep = Scenario(name="t", graph="ring:3", seed=5,
                       max_time=800.0).run()
        assert rep.ok
        assert rep.metrics.messages_sent > 0
        assert "wait-free" in rep.render()

    def test_crash_scenario_stays_wait_free(self):
        rep = Scenario(graph="ring:4", crashes={"p1": 300.0}, seed=6,
                       max_time=1500.0).run()
        assert rep.ok

    def test_hygienic_crash_scenario_fails_wait_freedom(self):
        rep = Scenario(graph="pair:a,b", algorithm="hygienic",
                       crashes={"a": 50.0}, seed=7, max_time=1000.0).run()
        assert not rep.ok
        assert "b" in rep.wait_freedom.starving

    @pytest.mark.parametrize("algorithm", ["deferred", "manager", "fair:2"])
    def test_all_algorithms_runnable(self, algorithm):
        rep = Scenario(graph="ring:3", algorithm=algorithm, seed=8,
                       max_time=800.0).run()
        assert rep.ok, rep.render()

    def test_perfect_oracle_scenario_perpetually_exclusive(self):
        rep = Scenario(graph="ring:3", oracle="perfect",
                       crashes={"p1": 300.0}, seed=9, max_time=1200.0).run()
        assert rep.ok and rep.exclusion.perpetual_ok

    def test_periodic_client(self):
        rep = Scenario(graph="ring:3", client="periodic", seed=10,
                       max_time=1000.0, grace=200.0).run()
        assert rep.ok

    def test_determinism(self):
        a = Scenario(graph="ring:3", seed=11, max_time=600.0).run()
        b = Scenario(graph="ring:3", seed=11, max_time=600.0).run()
        assert a.wait_freedom.sessions == b.wait_freedom.sessions
        assert a.metrics.messages_sent == b.metrics.messages_sent


class TestScenarioCLI:
    def test_cli_runs_shipped_scenarios(self, capsys):
        from repro.cli import main

        assert main(["scenario", "examples/scenarios/ring_one_crash.json"]) == 0
        out = capsys.readouterr().out
        assert "wait-free" in out


class TestSweepCLI:
    def test_sweep_aggregates_across_seeds(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "name": "sweep-test", "graph": "ring:3",
            "max_time": 600.0, "grace": 150.0,
        }))
        assert main(["sweep", str(path), "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "wait_free" in out and "(n=3)" in out

    def test_sweep_fails_on_broken_scenario(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "starver", "graph": "pair:a,b",
            "algorithm": "hygienic", "crashes": {"a": 50.0},
            "max_time": 600.0,
        }))
        assert main(["sweep", str(path), "--seeds", "2"]) == 1
