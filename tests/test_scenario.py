"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import Scenario, parse_graph


class TestParseGraph:
    @pytest.mark.parametrize("spec,nodes,edges", [
        ("ring:4", 4, 4),
        ("clique:3", 3, 3),
        ("path:5", 5, 4),
        ("star:3", 4, 3),
        ("grid:2x3", 6, 7),
    ])
    def test_shapes(self, spec, nodes, edges):
        g = parse_graph(spec)
        assert g.number_of_nodes() == nodes
        assert g.number_of_edges() == edges

    def test_pair(self):
        g = parse_graph("pair:alice, bob")
        assert set(g.nodes) == {"alice", "bob"}

    def test_rgg_spec_deterministic(self):
        a = parse_graph("rgg:30:0.3:7")
        b = parse_graph("rgg:30:0.3:7")
        assert sorted(a.edges) == sorted(b.edges)
        assert a.number_of_nodes() == 30

    def test_rgg_seed_defaults_to_zero(self):
        assert (sorted(parse_graph("rgg:20:0.4").edges)
                == sorted(parse_graph("rgg:20:0.4:0").edges))

    def test_tree_spec(self):
        g = parse_graph("tree:15:3")
        assert g.number_of_nodes() == 15 and g.number_of_edges() == 14
        assert parse_graph("tree:15").degree["p0"] == 2  # arity default 2

    def test_rand_spec_deterministic(self):
        a = parse_graph("rand:25:0.2:9")
        assert sorted(a.edges) == sorted(parse_graph("rand:25:0.2:9").edges)
        assert a.number_of_nodes() == 25

    def test_unknown_kind_enumerates_supported(self):
        with pytest.raises(ConfigurationError) as err:
            parse_graph("torus:3")
        msg = str(err.value)
        for kind in ("ring", "clique", "grid", "rgg", "tree", "rand"):
            assert kind in msg

    @pytest.mark.parametrize("spec", [
        "ring:banana",
        "rgg:30",            # missing radius
        "rgg:30:x:1",        # non-numeric radius
        "tree:10:2:5",       # too many args
        "rand:10",           # missing probability
    ])
    def test_bad_arg_names_example(self, spec):
        with pytest.raises(ConfigurationError) as err:
            parse_graph(spec)
        assert "e.g." in str(err.value)


class TestScenarioConstruction:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"graph": "ring:3", "typo_key": 1})

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", algorithm="quantum",
                     max_time=10.0).run()

    def test_unknown_client_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", client="lazy", max_time=10.0).run()

    def test_crash_of_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(graph="ring:3", crashes={"ghost": 5.0}).run()

    def test_from_json_roundtrip(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "x", "graph": "ring:3",
                                    "max_time": 300.0}))
        s = Scenario.from_json(path)
        assert s.name == "x" and s.graph == "ring:3"


class TestScenarioRuns:
    def test_basic_run_reports(self):
        rep = Scenario(name="t", graph="ring:3", seed=5,
                       max_time=800.0).run()
        assert rep.ok
        assert rep.metrics.messages_sent > 0
        assert "wait-free" in rep.render()

    def test_crash_scenario_stays_wait_free(self):
        rep = Scenario(graph="ring:4", crashes={"p1": 300.0}, seed=6,
                       max_time=1500.0).run()
        assert rep.ok

    def test_hygienic_crash_scenario_fails_wait_freedom(self):
        rep = Scenario(graph="pair:a,b", algorithm="hygienic",
                       crashes={"a": 50.0}, seed=7, max_time=1000.0).run()
        assert not rep.ok
        assert "b" in rep.wait_freedom.starving

    @pytest.mark.parametrize("algorithm", ["deferred", "manager", "fair:2"])
    def test_all_algorithms_runnable(self, algorithm):
        rep = Scenario(graph="ring:3", algorithm=algorithm, seed=8,
                       max_time=800.0).run()
        assert rep.ok, rep.render()

    def test_perfect_oracle_scenario_perpetually_exclusive(self):
        rep = Scenario(graph="ring:3", oracle="perfect",
                       crashes={"p1": 300.0}, seed=9, max_time=1200.0).run()
        assert rep.ok and rep.exclusion.perpetual_ok

    def test_periodic_client(self):
        rep = Scenario(graph="ring:3", client="periodic", seed=10,
                       max_time=1000.0, grace=200.0).run()
        assert rep.ok

    def test_determinism(self):
        a = Scenario(graph="ring:3", seed=11, max_time=600.0).run()
        b = Scenario(graph="ring:3", seed=11, max_time=600.0).run()
        assert a.wait_freedom.sessions == b.wait_freedom.sessions
        assert a.metrics.messages_sent == b.metrics.messages_sent


class TestScenarioCLI:
    def test_cli_runs_shipped_scenarios(self, capsys):
        from repro.cli import main

        assert main(["scenario", "examples/scenarios/ring_one_crash.json"]) == 0
        out = capsys.readouterr().out
        assert "wait-free" in out


class TestSweepCLI:
    def test_sweep_aggregates_across_seeds(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "name": "sweep-test", "graph": "ring:3",
            "max_time": 600.0, "grace": 150.0,
        }))
        assert main(["sweep", str(path), "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "wait_free" in out and "(n=3)" in out

    def test_sweep_fails_on_broken_scenario(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "starver", "graph": "pair:a,b",
            "algorithm": "hygienic", "crashes": {"a": 50.0},
            "max_time": 600.0,
        }))
        assert main(["sweep", str(path), "--seeds", "2"]) == 1
