"""Tests for the seeded chaos campaign runner (:mod:`repro.chaos`)."""

import json

from repro.chaos import (
    ChaosConfig,
    build_run,
    fanout_seeds,
    replay,
    run_campaign,
    run_one,
)
from repro.cli import main

#: Run seeds that once exposed real defects (clean-fork priority-cycle
#: deadlock; finite-run grace/deadline artifacts).  Pinned so the fixes
#: stay fixed — each replays the *exact* scenario that failed.
REGRESSION_SEEDS = (321059914, 3503041500, 1647092370)


class TestSeedFanout:
    def test_deterministic(self):
        assert fanout_seeds(7, 5) == fanout_seeds(7, 5)

    def test_prefix_stable(self):
        """Raising --campaigns keeps earlier run seeds unchanged, so run
        indices stay meaningful across campaign sizes."""
        assert fanout_seeds(7, 10)[:5] == fanout_seeds(7, 5)

    def test_distinct_across_bases(self):
        assert set(fanout_seeds(1, 4)).isdisjoint(fanout_seeds(2, 4))

    def test_empty(self):
        assert fanout_seeds(3, 0) == []


class TestBuildRun:
    def test_pure_function_of_seed(self):
        cfg = ChaosConfig()
        assert build_run(42, cfg) == build_run(42, cfg)

    def test_seed_changes_scenario(self):
        cfg = ChaosConfig()
        assert build_run(41, cfg) != build_run(43, cfg)

    def test_knobs_respected(self):
        cfg = ChaosConfig(drop_max=0.05, partition_prob=0.0, max_faulty=0)
        for seed in fanout_seeds(9, 8):
            sc = build_run(seed, cfg)
            assert sc.drop <= 0.05
            assert sc.partition is None
            assert sc.crashes == {}

    def test_pairs_and_graphs_thread_into_the_scenario(self):
        cfg = ChaosConfig(graphs=("rgg:30:0.3:7",), pairs="neighbors",
                          allow_disconnected=True, max_faulty=0)
        sc = build_run(5, cfg)
        assert sc.graph == "rgg:30:0.3:7"
        assert sc.pairs == "neighbors"
        assert sc.allow_disconnected is True

    def test_cli_flags_round_trip_new_knobs(self):
        cfg = ChaosConfig(graphs=("rgg:30:0.3:7", "tree:20:3"),
                          pairs="neighbors:2", allow_disconnected=True)
        flags = cfg.cli_flags()
        assert "--graphs rgg:30:0.3:7 tree:20:3" in flags
        assert "--pairs neighbors:2" in flags
        assert "--allow-disconnected" in flags
        # Defaults stay silent so replay commands stay short.
        assert "--pairs" not in ChaosConfig().cli_flags()
        assert "--graphs" not in ChaosConfig().cli_flags()

    def test_cli_flags_round_trip_spans(self):
        assert "--spans" in ChaosConfig(spans=True).cli_flags()
        assert "--spans" not in ChaosConfig().cli_flags()

    def test_spans_thread_into_run_and_verdict(self):
        cfg = ChaosConfig(campaigns=1, seed=9, spans=True)
        sc = build_run(5, cfg)
        assert sc.spans is True
        result = run_campaign(cfg)
        (verdict,) = result.verdicts
        records = verdict.span_records()
        assert records and records[0]["schema"] == "repro.span.v1"
        assert result.span_records() == records
        # spans off by default: nothing collected, nothing exported
        plain = run_campaign(ChaosConfig(campaigns=1, seed=9))
        assert plain.span_records() == []


class TestCampaign:
    def test_twenty_runs_all_invariants_hold(self):
        """The acceptance campaign: 20 seeded hostile runs (drops up to
        30%, partitions, a crash, slow processes), every invariant green."""
        result = run_campaign(ChaosConfig(campaigns=20, seed=0))
        assert len(result.verdicts) == 20
        assert result.ok, result.render()

    def test_regression_seeds_replay_clean(self):
        cfg = ChaosConfig()
        for seed in REGRESSION_SEEDS:
            verdict = replay(seed, cfg)
            assert verdict.ok, f"seed {seed}: {verdict.failures}"

    def test_render_reports_tally(self):
        result = run_campaign(ChaosConfig(campaigns=2, seed=3))
        assert "2/2 passed" in result.render()


class TestInjectedViolationReproduces:
    """Negative path: raw lossy links (no transport) break the paper's
    channel assumptions, and every resulting failure must reproduce
    deterministically from its reported run seed."""

    CFG = ChaosConfig(campaigns=4, seed=1, transport=False, drop_max=0.3)

    def test_raw_links_violate_invariants(self):
        result = run_campaign(self.CFG)
        assert result.failed, "expected raw-lossy runs to break invariants"

    def test_failure_replays_bit_for_bit(self):
        result = run_campaign(self.CFG)
        first = result.failed[0]
        again = replay(first.run_seed, self.CFG)
        assert again.failures == first.failures
        assert again.report.metrics.messages_sent == \
            first.report.metrics.messages_sent
        assert again.report.exclusion.count == first.report.exclusion.count

    def test_replay_command_carries_the_flags(self):
        result = run_campaign(self.CFG)
        cmd = result.failed[0].replay_command(self.CFG)
        assert "--replay" in cmd and "--no-transport" in cmd


class TestChaosCli:
    def test_campaign_exit_zero_and_tally(self, capsys):
        assert main(["chaos", "--campaigns", "2", "--seed", "3"]) == 0
        assert "2/2 passed" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["chaos", "--campaigns", "2", "--seed", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["passed"] == 2 and payload["failed"] == 0
        assert len(payload["runs"]) == 2

    def test_failing_campaign_exits_nonzero_with_replay(self, capsys):
        code = main(["chaos", "--campaigns", "2", "--seed", "1",
                     "--no-transport"])
        out = capsys.readouterr().out
        assert code == 1
        assert "python -m repro chaos --replay" in out

    def test_out_of_range_knob_is_a_clean_cli_error(self, capsys):
        code = main(["chaos", "--campaigns", "2", "--drop-max", "2.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "drop_max" in err and "2.5" in err

    def test_replay_exit_codes(self, capsys):
        cfg = ChaosConfig(campaigns=2, seed=1, transport=False)
        bad = run_campaign(cfg).failed[0].run_seed
        assert main(["chaos", "--replay", str(bad), "--no-transport"]) == 1
        capsys.readouterr()
        assert main(["chaos", "--replay",
                     str(REGRESSION_SEEDS[0])]) == 0


class TestRunSummary:
    def test_summary_is_json_serializable(self):
        verdict = run_one(0, fanout_seeds(3, 1)[0], ChaosConfig())
        summary = json.loads(json.dumps(verdict.summary()))
        assert summary["ok"] is True
        assert summary["run_seed"] == fanout_seeds(3, 1)[0]
        assert summary["messages_sent"] > 0
