"""Tests for the WSN duty-cycle application."""

import pytest

from repro.apps.wsn import WSNExperiment
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def reports():
    exp = WSNExperiment(rows=3, cols=3, seed=5, battery=300.0,
                        max_time=1200.0)
    return exp.run_always_on(), exp.run_dining()


def test_rates_validated():
    with pytest.raises(ConfigurationError):
        WSNExperiment(duty_rate=0.1, idle_rate=0.2)


def test_always_on_everyone_dies_at_battery_over_duty_rate(reports):
    base, _ = reports
    assert len(base.crash_times) == 9
    # battery 300 / duty 2.0 = 150, plus polling granularity.
    assert all(145.0 <= t <= 160.0 for t in base.crash_times.values())


def test_dining_outlives_always_on(reports):
    base, dining = reports
    assert dining.lifetime > 1.5 * base.lifetime


def test_dining_redundancy_is_finite(reports):
    _, dining = reports
    assert (dining.last_redundancy is None
            or dining.last_redundancy < dining.lifetime + 100.0)


def test_coverage_series_fractions_in_unit_interval(reports):
    for rep in reports:
        assert all(0.0 <= f <= 1.0 for _, f in rep.coverage_series)


def test_coverage_eventually_zero_after_all_deaths(reports):
    _, dining = reports
    last_death = max(dining.crash_times.values())
    tail = [f for t, f in dining.coverage_series if t > last_death + 5.0]
    assert tail and all(f == 0.0 for f in tail)


def test_format_row_mentions_scheduler(reports):
    base, dining = reports
    assert "always-on" in base.format_row()
    assert "dining" in dining.format_row()


def test_determinism():
    exp = WSNExperiment(rows=2, cols=2, seed=9, battery=200.0,
                        max_time=600.0)
    a = exp.run_dining()
    b = WSNExperiment(rows=2, cols=2, seed=9, battery=200.0,
                      max_time=600.0).run_dining()
    assert a.lifetime == b.lifetime
    assert a.crash_times == b.crash_times


class TestCoverageAware:
    @pytest.fixture(scope="class")
    def aware(self):
        exp = WSNExperiment(rows=3, cols=3, seed=5, battery=300.0,
                            max_time=1200.0)
        return exp.run_coverage_aware()

    def test_outlives_always_on(self, aware, reports):
        base, _ = reports
        assert aware.lifetime > 1.5 * base.lifetime

    def test_redundancy_finite(self, aware):
        assert (aware.last_redundancy is None
                or aware.last_redundancy < 600.0)

    def test_everyone_eventually_dies(self, aware):
        assert len(aware.crash_times) == 9

    def test_scheduler_label(self, aware):
        assert aware.scheduler == "cover-aware"
