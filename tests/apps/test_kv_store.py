"""Tests for the replicated key-value store."""

import pytest

from repro.apps.kv_store import (
    KVReplica,
    apply_command,
    check_replication,
)
from repro.consensus.atomic_broadcast import setup_atomic_broadcast
from repro.errors import ConfigurationError
from repro.experiments.common import build_system
from repro.sim.faults import CrashSchedule


class TestApplyCommand:
    def test_set(self):
        state = {}
        apply_command(state, {"op": "set", "key": "a", "value": 5})
        assert state == {"a": 5}

    def test_del(self):
        state = {"a": 1}
        apply_command(state, {"op": "del", "key": "a", "value": None})
        assert state == {}

    def test_del_missing_is_noop(self):
        state = {}
        apply_command(state, {"op": "del", "key": "a", "value": None})
        assert state == {}

    def test_incr_from_missing(self):
        state = {}
        apply_command(state, {"op": "incr", "key": "n", "value": None})
        apply_command(state, {"op": "incr", "key": "n", "value": None})
        assert state == {"n": 2}

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_command({}, {"op": "swap", "key": "a", "value": None})


def run_replicated(seed=1, crash=None, n=3, max_time=9000.0):
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, max_time=max_time, crash=crash)
    abcs = setup_atomic_broadcast(system.engine, pids, system.box_modules)
    replicas = {
        pid: system.engine.process(pid).add_component(KVReplica("kv", abcs[pid]))
        for pid in pids
    }
    commands = [
        (30.0, pids[0], "set", "x", 1),
        (70.0, pids[1], "incr", "x", None),
        (110.0, pids[2], "set", "y", "v"),
        (150.0, pids[0], "incr", "x", None),
    ]
    sent = []
    for at, pid, op, key, value in commands:
        def go(pid=pid, op=op, key=key, value=value):
            if not system.engine.process(pid).crashed:
                sent.append(replicas[pid].submit(op, key, value))
        system.engine.schedule_call(at, go)
    correct = [p for p in pids if crash is None or not crash.is_faulty(p)]
    system.engine.run(stop_when=lambda: system.engine.now > 160.0
                      and all(replicas[p].applied >= len(sent)
                              for p in correct))
    return system, replicas, correct


def test_replicas_converge_failure_free():
    system, replicas, correct = run_replicated(seed=520)
    res = check_replication(replicas, correct)
    assert res.ok
    assert res.final_state == {"x": 3, "y": "v"}


def test_replicas_converge_under_crash():
    crash = CrashSchedule.single("p2", 130.0)
    system, replicas, correct = run_replicated(seed=521, crash=crash)
    res = check_replication(replicas, correct)
    assert res.ok, res
    assert res.final_state["x"] == 3


def test_local_reads_reflect_applied_state():
    system, replicas, correct = run_replicated(seed=522)
    for pid in correct:
        assert replicas[pid].get("x") == 3
        assert replicas[pid].get("missing", "dflt") == "dflt"


def test_check_replication_flags_divergence():
    class Fake:
        def __init__(self, state):
            self._s = state
            self.applied = len(state)

        def snapshot(self):
            return dict(self._s)

    replicas = {"a": Fake({"x": 1}), "b": Fake({"x": 2})}
    res = check_replication(replicas, ["a", "b"])
    assert not res.ok
