"""Tests for the shared-memory DSTM and its contention management."""

import pytest

from repro.apps.dstm import DSTMClient, SharedMemorySTM
from repro.errors import ConfigurationError
from repro.sim.faults import CrashSchedule
from repro.sim.shm import SharedMemory


def test_tx_target_validated():
    with pytest.raises(ConfigurationError):
        DSTMClient("c", SharedMemory(), ["o"], tx_target=-1)


class TestSingleClient:
    def test_solo_client_commits_everything(self):
        stm = SharedMemorySTM(n_clients=1, tx_target=10, seed=700)
        r = stm.run(with_cm=False)
        assert r.all_done and r.committed == 10 and r.aborted == 0
        assert r.serializable()

    def test_multi_object_transactions(self):
        stm = SharedMemorySTM(n_clients=2, tx_target=6, seed=701,
                              objects=("a", "b", "c"))
        r = stm.run(with_cm=False)
        assert r.all_done and r.serializable()


class TestContention:
    @pytest.fixture(scope="class")
    def pair(self):
        stm = SharedMemorySTM(n_clients=4, tx_target=10, seed=702)
        return stm.run(with_cm=False), stm.run(with_cm=True)

    def test_everyone_finishes_both_ways(self, pair):
        raw, managed = pair
        assert raw.all_done and managed.all_done
        assert raw.committed == managed.committed == 40

    def test_serializability_both_ways(self, pair):
        raw, managed = pair
        assert raw.serializable() and managed.serializable()

    def test_cm_slashes_aborts(self, pair):
        raw, managed = pair
        assert managed.aborted < raw.aborted / 2

    def test_raw_contention_aborts(self, pair):
        raw, _ = pair
        assert raw.aborted > 20


class TestCrashAndStealing:
    def test_crashed_owner_orecs_reclaimed(self):
        stm = SharedMemorySTM(n_clients=3, tx_target=12, seed=40,
                              crash=CrashSchedule.single("c1", 60.0))
        r = stm.run(with_cm=False)
        assert r.steals > 0             # survivors stole the stale orec
        assert r.all_done               # ...and finished (wait-free-ish)
        assert r.serializable()

    def test_wrongful_steal_never_breaks_serializability(self):
        """Pre-convergence ◇P mistakes may steal from LIVE owners; the
        victim's atomic publication fails validation, so the counter still
        equals the commit count."""
        found_steal = False
        for seed in range(720, 740):
            stm = SharedMemorySTM(n_clients=4, tx_target=8, seed=seed)
            r = stm.run(with_cm=True)
            assert r.serializable(), f"seed {seed} lost serializability"
            found_steal |= r.steals > 0
        assert found_steal, "sweep never exercised the stealing path"


def test_determinism():
    a = SharedMemorySTM(n_clients=3, tx_target=8, seed=703).run(with_cm=False)
    b = SharedMemorySTM(n_clients=3, tx_target=8, seed=703).run(with_cm=False)
    assert (a.committed, a.aborted, a.final_counter) == \
           (b.committed, b.aborted, b.final_counter)
