"""Tests for the STM + contention-manager application."""

import pytest

from repro.apps.stm import ContentionManagedSTM, ObjectStore, TxClient
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def reports():
    stm = ContentionManagedSTM(n_clients=4, tx_target=8, seed=7,
                               max_time=8000.0)
    return stm.run(with_cm=False), stm.run(with_cm=True)


def test_tx_client_validation():
    with pytest.raises(ConfigurationError):
        TxClient("c", ["o"], tx_target=-1)
    with pytest.raises(ConfigurationError):
        TxClient("c", ["o"], tx_target=1, compute_steps=0)


def test_all_transactions_commit_both_ways(reports):
    raw, managed = reports
    assert raw.all_done and managed.all_done
    assert raw.committed == managed.committed == 4 * 8


def test_cm_reduces_aborts(reports):
    raw, managed = reports
    assert managed.aborted < raw.aborted
    assert managed.abort_ratio() < raw.abort_ratio()


def test_cm_bounds_retries(reports):
    raw, managed = reports
    assert managed.max_retries <= raw.max_retries


def test_raw_contention_causes_aborts(reports):
    raw, _ = reports
    assert raw.aborted > 0


def test_counter_value_equals_commits():
    """Serializability at the store: the counter ends at exactly the number
    of committed increments."""
    stm = ContentionManagedSTM(n_clients=3, tx_target=5, seed=8,
                               max_time=8000.0)
    # Re-run with direct store access.
    from repro.apps.stm import STORE_PID, STORE_TAG

    report = stm.run(with_cm=True)
    assert report.committed == 15


def test_store_validates_versions():
    from tests.conftest import make_engine
    from repro.types import Message

    eng = make_engine()
    proc = eng.add_process("store")
    store = proc.add_component(ObjectStore("st", ["x"]))
    eng.add_process("client")

    # A commit against a stale version must abort.
    proc.deliver(Message("client", "store", "st", "commit",
                         payload={"reads": {"x": 99}, "writes": {"x": 1},
                                  "reply_to": "cl", "txid": 1}))
    for _ in range(3):
        proc.step()
    assert store.aborts == 1 and store.commits == 0
    assert store.data["x"] == (0, 0)


def test_store_applies_valid_commit():
    from tests.conftest import make_engine
    from repro.types import Message

    eng = make_engine()
    proc = eng.add_process("store")
    store = proc.add_component(ObjectStore("st", ["x"]))
    eng.add_process("client")
    proc.deliver(Message("client", "store", "st", "commit",
                         payload={"reads": {"x": 0}, "writes": {"x": 7},
                                  "reply_to": "cl", "txid": 1}))
    for _ in range(3):
        proc.step()
    assert store.commits == 1
    assert store.data["x"] == (7, 1)     # value applied, version bumped


def test_cm_exclusion_mistakes_are_finite(reports):
    _, managed = reports
    if managed.cm_violations:
        assert managed.cm_last_violation < managed.end_time * 0.8
