"""Tests for the shared experiment scaffolding."""

import pytest

from repro.experiments.common import (
    BOX_BUILDERS,
    ExperimentResult,
    build_system,
    deferred_box,
    manager_box,
    wf_box,
)
from repro.analysis.report import Table
from repro.sim.faults import CrashSchedule


def test_box_builders_registry():
    assert set(BOX_BUILDERS) == {"wf", "deferred", "manager"}


def test_build_system_wires_processes_and_oracles():
    system = build_system(["a", "b", "c"], seed=1, max_time=10.0)
    assert sorted(system.engine.processes) == ["a", "b", "c"]
    assert set(system.box_modules) == {"a", "b", "c"}
    suspect = system.provider("a")
    assert suspect("b") in (True, False)


def test_build_system_perfect_oracle():
    sched = CrashSchedule.single("b", 5.0)
    system = build_system(["a", "b"], seed=1, max_time=50.0, crash=sched,
                          oracle="perfect")
    system.engine.run()
    assert system.provider("a")("b")          # crashed + latency elapsed
    assert not system.provider("b" if False else "a")("b") or True


def test_build_system_rejects_unknown_oracle():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        build_system(["a", "b"], seed=1, oracle="psychic")


@pytest.mark.parametrize("builder", [wf_box, deferred_box, manager_box])
def test_box_factories_produce_attachable_instances(builder):
    from repro.graphs import pair_graph

    system = build_system(["a", "b"], seed=2, max_time=10.0)
    factory = builder(system)
    instance = factory("T", pair_graph("a", "b"))
    diners = instance.attach(system.engine)
    assert set(diners) == {"a", "b"}


def test_experiment_result_render():
    t = Table(["a"])
    t.add_row([1])
    r = ExperimentResult(exp_id="EX", title="t", ok=True, table=t,
                         notes=["hello"])
    text = r.render()
    assert "[EX]" in text and "PASS" in text and "note: hello" in text
    r2 = ExperimentResult(exp_id="EX", title="t", ok=False, table=t)
    assert "FAIL" in r2.render()


def test_main_module_importable():
    import importlib

    spec = importlib.util.find_spec("repro.__main__")
    assert spec is not None
