"""Tests for Chandra–Toueg consensus."""

import pytest

from repro.consensus.chandra_toueg import (
    ChandraTouegConsensus,
    check_consensus,
    setup_consensus,
)
from repro.errors import ConfigurationError
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.sim import Engine, PartialSynchronyDelays, SimConfig
from repro.sim.faults import CrashSchedule


def run_consensus(seed=1, n=4, crash=None, max_time=6000.0, gst=100.0):
    pids = [f"p{i}" for i in range(n)]
    sched = crash or CrashSchedule.none()
    eng = Engine(
        SimConfig(seed=seed, max_time=max_time),
        delay_model=PartialSynchronyDelays(gst=gst, delta=1.5,
                                           pre_gst_max=20.0),
        crash_schedule=sched,
    )
    for pid in pids:
        eng.add_process(pid)
    mods = attach_detectors(
        eng, pids,
        lambda o, peers: EventuallyPerfectDetector(
            "fd", peers, heartbeat_period=4, initial_timeout=12),
    )
    proposals = {pid: f"v{i}" for i, pid in enumerate(pids)}
    eps = setup_consensus(eng, pids, mods, proposals)
    eng.run(stop_when=lambda: all(
        eng.process(p).crashed or eps[p].decided is not None for p in pids))
    return check_consensus(eng.trace, pids, sched, proposals), eng, eps


def test_needs_at_least_two_processes():
    with pytest.raises(ConfigurationError):
        ChandraTouegConsensus("c", ["solo"], detector=None, initial_value=1)


def test_coordinator_rotation():
    c = ChandraTouegConsensus("c", ["a", "b", "c"], detector=None,
                              initial_value=0)
    assert [c.coordinator(r) for r in (1, 2, 3, 4)] == ["a", "b", "c", "a"]


def test_failure_free_decides():
    result, eng, _ = run_consensus(seed=200)
    assert result.ok, result.format_table()


def test_agreement_single_value():
    result, *_ = run_consensus(seed=201)
    assert len(set(result.decisions.values())) == 1


def test_validity_decided_value_was_proposed():
    result, *_ = run_consensus(seed=202)
    assert result.validity


def test_crash_of_first_coordinator():
    result, *_ = run_consensus(seed=203,
                               crash=CrashSchedule.single("p0", 30.0))
    assert result.ok, result.format_table()


def test_crash_mid_protocol():
    result, *_ = run_consensus(seed=204, n=5,
                               crash=CrashSchedule({"p1": 60.0, "p4": 20.0}))
    assert result.ok, result.format_table()


def test_late_crash_after_decision_is_harmless():
    result, eng, eps = run_consensus(seed=205,
                                     crash=CrashSchedule.single("p3", 5000.0))
    assert result.agreement and result.validity
    # Correct processes decided (p3 may or may not have before crashing).
    for pid in ("p0", "p1", "p2"):
        assert pid in result.decisions


@pytest.mark.parametrize("seed", [210, 211, 212, 213])
def test_safety_sweep(seed):
    """Agreement and validity across seeds and random single crashes."""
    import numpy as np

    rng = np.random.default_rng(seed)
    crash = CrashSchedule.random([f"p{i}" for i in range(4)], max_faulty=1,
                                 horizon=300.0, rng=rng)
    result, *_ = run_consensus(seed=seed, crash=crash)
    assert result.agreement and result.validity
    assert result.termination, result.format_table()


def test_check_consensus_flags_disagreement():
    """The checker itself must catch a (synthetic) split decision."""
    from repro.sim.trace import Trace

    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    t.record("decide", pid="a", value="x", round=1)
    t.record("decide", pid="b", value="y", round=1)
    res = check_consensus(t, ["a", "b"], CrashSchedule.none(),
                          {"a": "x", "b": "y"})
    assert not res.agreement and not res.ok


def test_check_consensus_flags_invalid_value():
    from repro.sim.trace import Trace

    t = Trace()
    t.bind_clock(lambda: 0.0)
    for pid in ("a", "b"):
        t.record("decide", pid=pid, value="alien", round=1)
    res = check_consensus(t, ["a", "b"], CrashSchedule.none(),
                          {"a": "x", "b": "y"})
    assert not res.validity
