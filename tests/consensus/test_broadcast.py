"""Tests for reliable broadcast."""

from repro.consensus.broadcast import ReliableBroadcast
from repro.sim.faults import CrashSchedule
from tests.conftest import make_engine

PIDS = ["a", "b", "c"]


def build(crash=None, seed=1, max_time=200.0):
    eng = make_engine(seed=seed, max_time=max_time, crash=crash)
    endpoints = {}
    delivered = {pid: [] for pid in PIDS}
    for pid in PIDS:
        proc = eng.add_process(pid)
        rb = ReliableBroadcast(
            "rb", peers=[x for x in PIDS if x != pid],
            deliver=lambda origin, body, pid=pid: delivered[pid].append(
                (origin, body)),
        )
        proc.add_component(rb)
        endpoints[pid] = rb
    return eng, endpoints, delivered


def test_broadcast_reaches_everyone():
    eng, eps, delivered = build()
    eng.schedule_call(1.0, lambda: eps["a"].broadcast("hello"))
    eng.run()
    assert all(delivered[pid] == [("a", "hello")] for pid in PIDS)


def test_local_delivery_included():
    eng, eps, delivered = build()
    eng.schedule_call(1.0, lambda: eps["a"].broadcast("x"))
    eng.run()
    assert ("a", "x") in delivered["a"]


def test_no_duplicate_delivery():
    eng, eps, delivered = build()
    eng.schedule_call(1.0, lambda: eps["a"].broadcast("m1"))
    eng.schedule_call(2.0, lambda: eps["b"].broadcast("m2"))
    eng.run()
    for pid in PIDS:
        assert len(delivered[pid]) == 2
        assert eps[pid].delivered_count == 2


def test_distinct_broadcasts_not_conflated():
    eng, eps, delivered = build()
    eng.schedule_call(1.0, lambda: eps["a"].broadcast("same"))
    eng.schedule_call(2.0, lambda: eps["a"].broadcast("same"))
    eng.run()
    assert len(delivered["b"]) == 2


def test_relay_covers_originator_crash_after_partial_send():
    """Once any correct process delivers, all correct processes deliver —
    the relay-then-deliver discipline."""
    eng, eps, delivered = build(crash=CrashSchedule.single("a", 1.5))
    eng.schedule_call(1.0, lambda: eps["a"].broadcast("crash-test"))
    eng.run()
    # 'a' sent copies to b and c before delivering locally; whoever got one
    # relays.  Both correct processes must agree.
    assert delivered["b"] == delivered["c"]
