"""Unit tests for Chandra–Toueg phase logic (driven by hand, no network)."""

from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.types import Message
from tests.conftest import make_engine

PIDS = ["a", "b", "c", "d"]


class StubDetector:
    def __init__(self, suspected=()):
        self._suspected = set(suspected)

    def suspected(self, q):
        return q in self._suspected


def make_endpoint(pid="a", suspected=(), value="v"):
    eng = make_engine()
    for p in PIDS:
        eng.add_process(p)
    ep = ChandraTouegConsensus("c", PIDS, StubDetector(suspected), value)
    from repro.consensus.broadcast import ReliableBroadcast

    rb = ReliableBroadcast(ep.rb_name, peers=[x for x in PIDS if x != pid],
                           deliver=ep.on_rb_deliver)
    eng.process(pid).add_component(ep)
    eng.process(pid).add_component(rb)
    return eng, ep


def estimate(sender, r, est, ts=0):
    return Message(sender, "a", "c", "estimate",
                   payload={"round": r, "est": est, "ts": ts})


def test_majority_is_floor_half_plus_one():
    _, ep = make_endpoint()
    assert ep.majority == 3


def test_estimate_sent_to_round_coordinator():
    eng, ep = make_endpoint()
    for _ in range(4):
        eng.process("a").step()
    assert ep.estimate_sent
    assert eng.network.sent_by_kind.get("estimate") == 1


def test_coordinator_proposes_on_majority():
    eng, ep = make_endpoint()   # 'a' coordinates round 1
    for sender, ts in (("b", 0), ("c", 2), ("d", 1)):
        ep.on_estimate(estimate(sender, 1, f"v-{sender}", ts))
    for _ in range(8):
        eng.process("a").step()
    assert 1 in ep._proposed
    # Highest-timestamp estimate wins.
    assert ep._proposal_value(1) == "v-c"


def test_no_proposal_below_majority():
    eng, ep = make_endpoint()
    ep.on_estimate(estimate("b", 1, "x"))
    ep.on_estimate(estimate("c", 1, "y"))
    assert len(ep._estimates[1]) == 2   # below majority=3
    for _ in range(6):
        eng.process("a").step()
    assert 1 not in ep._proposed


def test_non_coordinator_never_proposes():
    eng, ep = make_endpoint()
    for sender in ("a", "b", "c"):
        ep.on_estimate(estimate(sender, 2, "x"))   # round 2: 'b' coordinates
    for _ in range(6):
        eng.process("a").step()
    assert 2 not in ep._proposed


def test_adopt_acks_and_advances_round():
    eng, ep = make_endpoint()
    for _ in range(4):
        eng.process("a").step()            # send own estimate
    ep.on_propose(Message("a", "a", "c", "propose",
                          payload={"round": 1, "v": "chosen"}))
    for _ in range(8):
        eng.process("a").step()
    assert ep.estimate == "chosen" and ep.ts == 1
    assert ep.round == 2
    assert eng.network.sent_by_kind.get("ack") == 1


def test_suspected_coordinator_gets_nack():
    eng, ep = make_endpoint(pid="a", suspected=set())
    # Advance into round 2 whose coordinator 'b' we suspect.
    ep.detector = StubDetector({"b"})
    for _ in range(4):
        eng.process("a").step()            # round 1 estimate to self
    ep.on_propose(Message("a", "a", "c", "propose",
                          payload={"round": 1, "v": "x"}))
    for _ in range(16):
        eng.process("a").step()   # adopt; round 2; estimate to b; give up
    assert ep.round >= 3          # moved past the suspected coordinator
    assert eng.network.sent_by_kind.get("nack", 0) >= 1


def test_unanimous_acks_trigger_decision_broadcast():
    eng, ep = make_endpoint()
    for sender in ("b", "c", "d"):
        ep.on_estimate(estimate(sender, 1, "val"))
    for _ in range(8):
        eng.process("a").step()            # propose
    for sender in ("b", "c", "d"):
        ep.on_ack(Message(sender, "a", "c", "ack", payload={"round": 1}))
    for _ in range(8):
        eng.process("a").step()            # conclude -> rb broadcast
    eng.run(until=20.0)                    # let the local rb deliver
    assert ep.decided == "val"


def test_any_nack_abandons_round_without_decision():
    eng, ep = make_endpoint()
    for sender in ("b", "c", "d"):
        ep.on_estimate(estimate(sender, 1, "val"))
    for _ in range(8):
        eng.process("a").step()
    ep.on_ack(Message("b", "a", "c", "ack", payload={"round": 1}))
    ep.on_ack(Message("c", "a", "c", "ack", payload={"round": 1}))
    ep.on_nack(Message("d", "a", "c", "nack", payload={"round": 1}))
    for _ in range(8):
        eng.process("a").step()
    eng.run(until=20.0)
    assert 1 in ep._closed
    assert ep.decided is None


def test_decide_is_idempotent():
    _, ep = make_endpoint()
    ep.on_rb_deliver("a", {"decision": "x", "round": 1})
    ep.on_rb_deliver("a", {"decision": "y", "round": 2})
    assert ep.decided == "x" and ep.decided_round == 1
