"""Tests for leader-election checkers (Ω contract)."""

from repro.consensus.leader import check_leader_stability, leader_series
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace


def synth(rows):
    t = Trace()
    clock = {"now": 0.0}
    t.bind_clock(lambda: clock["now"])
    for time, pid, leader in rows:
        clock["now"] = time
        t.record("leader", pid=pid, leader=leader)
    return t


def test_leader_series():
    t = synth([(1.0, "a", "a"), (5.0, "a", "b")])
    assert leader_series(t, "a") == [(1.0, "a"), (5.0, "b")]


def test_stable_agreement():
    t = synth([(1.0, "a", "a"), (1.0, "b", "a")])
    ok, leader, stab = check_leader_stability(t, ["a", "b"],
                                              CrashSchedule.none())
    assert ok and leader == "a" and stab == 1.0


def test_disagreement_fails():
    t = synth([(1.0, "a", "a"), (1.0, "b", "b")])
    ok, *_ = check_leader_stability(t, ["a", "b"], CrashSchedule.none())
    assert not ok


def test_crashed_leader_fails():
    t = synth([(1.0, "a", "b"), (1.0, "b", "b")])
    sched = CrashSchedule.single("b", 50.0)
    ok, leader, _ = check_leader_stability(t, ["a", "b"], sched)
    assert not ok and leader == "b"


def test_crashed_voters_ignored():
    t = synth([(1.0, "a", "a"), (1.0, "b", "b")])  # b disagrees but crashes
    sched = CrashSchedule.single("b", 50.0)
    ok, leader, _ = check_leader_stability(t, ["a", "b"], sched)
    assert ok and leader == "a"


def test_missing_output_fails():
    t = synth([(1.0, "a", "a")])   # b never produced an estimate
    ok, *_ = check_leader_stability(t, ["a", "b"], CrashSchedule.none())
    assert not ok


def test_stabilization_is_latest_change():
    t = synth([(1.0, "a", "x"), (9.0, "a", "a"),
               (1.0, "b", "a")])
    ok, leader, stab = check_leader_stability(t, ["a", "b"],
                                              CrashSchedule.none())
    assert ok and stab == 9.0
