"""Tests for atomic (total-order) broadcast."""

import pytest

from repro.consensus.atomic_broadcast import (
    check_total_order,
    setup_atomic_broadcast,
)
from repro.experiments.common import build_system
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace


def run_abcast(seed=1, crash=None, n=3, n_msgs=5, max_time=8000.0,
               stagger=40.0):
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, max_time=max_time, crash=crash)
    eps = setup_atomic_broadcast(system.engine, pids, system.box_modules)
    sent: list[str] = []
    for i in range(n_msgs):
        sender = pids[i % n]

        def go(s=sender, i=i):
            if not system.engine.process(s).crashed:
                sent.append(eps[s].abroadcast(f"m{i}"))

        system.engine.schedule_call(20.0 + stagger * i, go)
    correct = [p for p in pids
               if crash is None or not crash.is_faulty(p)]
    deadline = 20.0 + stagger * n_msgs
    system.engine.run(stop_when=lambda: system.engine.now > deadline
                      and all(len(eps[p].delivered_ids) >= len(sent)
                              for p in correct))
    res = check_total_order(system.engine.trace, pids, system.schedule,
                            set(sent))
    return res, eps, system, sent


def test_failure_free_total_order():
    res, *_ = run_abcast(seed=510)
    assert res.ok, res


def test_identical_sequences_across_replicas():
    res, *_ = run_abcast(seed=511)
    seqs = list(res.sequences.values())
    assert seqs[0] == seqs[1] == seqs[2]
    assert len(seqs[0]) == 5


def test_crash_leaves_prefix_compatible_sequences():
    crash = CrashSchedule.single("p2", 150.0)
    res, *_ = run_abcast(seed=512, crash=crash)
    assert res.agreement and res.no_duplication and res.validity
    assert res.all_delivered   # at the correct processes


def test_concurrent_burst_keeps_order():
    """All messages submitted at nearly the same instant."""
    res, *_ = run_abcast(seed=513, n_msgs=6, stagger=2.0)
    assert res.ok, res


def test_payloads_eventually_resolved():
    res, eps, system, sent = run_abcast(seed=514)
    system.engine.run(until=system.engine.now + 100.0)
    for ep in eps.values():
        if system.engine.process(ep.pid).crashed:
            continue
        assert all(payload is not None
                   for _, payload in ep.delivered_log)


def test_checker_flags_order_divergence():
    t = Trace()
    t.bind_clock(lambda: 0.0)
    t.record("adeliver", pid="a", mid="m1", instance=0)
    t.record("adeliver", pid="a", mid="m2", instance=0)
    t.record("adeliver", pid="b", mid="m2", instance=0)
    t.record("adeliver", pid="b", mid="m1", instance=0)
    res = check_total_order(t, ["a", "b"], CrashSchedule.none(),
                            {"m1", "m2"})
    assert not res.agreement


def test_checker_flags_duplication():
    t = Trace()
    t.bind_clock(lambda: 0.0)
    for _ in range(2):
        t.record("adeliver", pid="a", mid="m1", instance=0)
    res = check_total_order(t, ["a"], CrashSchedule.none(), {"m1"})
    assert not res.no_duplication


def test_checker_flags_invented_message():
    t = Trace()
    t.bind_clock(lambda: 0.0)
    t.record("adeliver", pid="a", mid="ghost", instance=0)
    res = check_total_order(t, ["a"], CrashSchedule.none(), set())
    assert not res.validity
