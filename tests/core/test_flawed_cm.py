"""Tests for the [8] construction and its Section 3 vulnerability."""

import pytest

from repro.core.flawed_cm import FlawedCMPair
from repro.errors import ConfigurationError
from repro.experiments.common import build_system, deferred_box, wf_box
from repro.oracles.properties import (
    false_positive_count,
    suspicion_series,
)
from repro.sim.faults import CrashSchedule
from repro.sim.temporal import convergence_time


def run_flawed(seed=1, box="wf", crash=None, max_time=2000.0, horizon=150.0):
    system = build_system(["p", "q"], seed=seed, gst=100.0,
                          max_time=max_time, crash=crash)
    factory = (wf_box(system) if box == "wf"
               else deferred_box(system, horizon=horizon))
    pair = FlawedCMPair("p", "q", factory)
    pair.attach(system.engine)
    system.engine.run()
    return system, pair


def test_self_monitoring_rejected():
    with pytest.raises(ConfigurationError):
        FlawedCMPair("p", "p", box_factory=None)


def test_heartbeat_period_validated():
    from repro.core.flawed_cm import CMSubject

    with pytest.raises(ConfigurationError):
        CMSubject("s", None, "p", "w", heartbeat_period=0)


def test_double_attach_rejected():
    system = build_system(["p", "q"], seed=1, max_time=10.0)
    pair = FlawedCMPair("p", "q", wf_box(system))
    pair.attach(system.engine)
    with pytest.raises(ConfigurationError):
        pair.attach(system.engine)


def test_subject_parks_in_cs_forever():
    system, pair = run_flawed(seed=110, max_time=800.0)
    assert pair.subject.entered_cs
    from repro.types import DinerState

    assert pair.subject.diner.state is DinerState.EATING


def test_converges_on_well_behaved_box_with_correct_subject():
    system, pair = run_flawed(seed=111, box="wf")
    series = suspicion_series(system.engine.trace, "p", "q",
                              detector="flawed")
    assert convergence_time(series, lambda s: not s) is not None


def test_completeness_on_well_behaved_box():
    system, pair = run_flawed(seed=112, box="wf",
                              crash=CrashSchedule.single("q", 500.0))
    series = suspicion_series(system.engine.trace, "p", "q",
                              detector="flawed")
    assert convergence_time(series, lambda s: s) is not None


def test_vulnerability_on_deferred_box():
    """The paper's Section 3 claim: on a legal adversarial box the [8]
    detector suspects the correct q over and over, forever."""
    system, pair = run_flawed(seed=113, box="deferred", max_time=2500.0)
    trace = system.engine.trace
    mistakes = false_positive_count(trace, "p", "q", system.schedule,
                                    detector="flawed")
    assert mistakes >= 10
    series = suspicion_series(trace, "p", "q", detector="flawed")
    assert convergence_time(series, lambda s: not s) is None


def test_mistakes_grow_with_run_length_on_deferred_box():
    def mistakes(T):
        system, _ = run_flawed(seed=114, box="deferred", max_time=T)
        return false_positive_count(system.engine.trace, "p", "q",
                                    system.schedule, detector="flawed")

    assert mistakes(3000.0) > mistakes(1500.0)


def test_witness_cs_entries_grow_on_deferred_box():
    system, pair = run_flawed(seed=115, box="deferred", max_time=2000.0)
    assert pair.witness.cs_entries >= 10
