"""Stateful property testing: the reduction under arbitrary scheduling.

A hypothesis rule machine plays the dining scheduler: it grants hungry
witness/subject diners in arbitrary orders and lets the network settle for
arbitrary spans.  Whatever it does, the paper's structural invariants must
hold (the Lemma 2/4 runtime monitors are armed and raise on violation):

* ``switch`` and ``trigger`` stay binary;
* Lemma 9 — at least one witness diner is always thinking;
* ping/ack accounting never goes negative or runs ahead (Lemma 5 skeleton);
* the extracted output is always defined.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.types import DinerState
from tests.core.helpers import ManualPair


class ReductionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pair = ManualPair(monitor_invariants=True)

    @rule(span=st.integers(1, 25))
    def settle(self, span):
        self.pair.settle(span)

    @rule(i=st.sampled_from([0, 1]))
    def grant_witness(self, i):
        if self.pair.wdiners[i].state is DinerState.HUNGRY:
            self.pair.wdiners[i].grant()

    @rule(i=st.sampled_from([0, 1]))
    def grant_subject(self, i):
        if self.pair.sdiners[i].state is DinerState.HUNGRY:
            self.pair.sdiners[i].grant()

    @rule()
    def finish_exits(self):
        for d in self.pair.wdiners + self.pair.sdiners:
            d.finish()

    @invariant()
    def switch_and_trigger_binary(self):
        assert self.pair.w_shared.switch in (0, 1)
        assert self.pair.s_shared.trigger in (0, 1)

    @invariant()
    def lemma9_some_witness_thinking(self):
        states = [d.state for d in self.pair.wdiners]
        assert DinerState.THINKING in states

    @invariant()
    def ping_ack_accounting_sane(self):
        for i in (0, 1):
            s = self.pair.subjects[i]
            w = self.pair.witnesses[i]
            assert 0 <= s.pings_sent - s.acks_received <= 1
            assert w.acks_sent == w.pings_received
            assert s.pings_sent >= s.eat_sessions_completed

    @invariant()
    def output_defined(self):
        assert self.pair.output.suspected("q") in (True, False)


TestReductionStateful = ReductionMachine.TestCase
TestReductionStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
