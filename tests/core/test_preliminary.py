"""Tests for the rejected Section 5.1 single-instance construction."""

import pytest

from repro.core.preliminary import PreliminaryPair
from repro.errors import ConfigurationError
from repro.experiments.common import build_system, wf_box
from repro.oracles.properties import (
    check_strong_completeness,
    false_positive_count,
    suspicion_series,
)
from repro.sim.faults import CrashSchedule


def run_prelim(seed=1, crash=None, max_time=2000.0):
    system = build_system(["p", "q"], seed=seed, max_time=max_time,
                          crash=crash)
    pair = PreliminaryPair("p", "q", wf_box(system))
    pair.attach(system.engine)
    system.engine.run()
    return system, pair


def test_self_monitoring_rejected():
    with pytest.raises(ConfigurationError):
        PreliminaryPair("p", "p", box_factory=None)


def test_double_attach_rejected():
    system = build_system(["p", "q"], seed=1, max_time=10.0)
    pair = PreliminaryPair("p", "q", wf_box(system))
    pair.attach(system.engine)
    with pytest.raises(ConfigurationError):
        pair.attach(system.engine)


def test_completeness_still_holds():
    """The sketch is only broken on the accuracy side."""
    system, _ = run_prelim(seed=910, crash=CrashSchedule.single("q", 500.0))
    rep = check_strong_completeness(system.engine.trace, ["p"], ["q"],
                                    system.schedule, detector="prelim")
    assert rep.ok


def test_accuracy_broken_mistakes_grow():
    def mistakes(T):
        system, _ = run_prelim(seed=911, max_time=T)
        return false_positive_count(system.engine.trace, "p", "q",
                                    system.schedule, detector="prelim")

    m1, m2 = mistakes(1500.0), mistakes(3000.0)
    assert m2 > 1.5 * m1 > 10


def test_flapping_continues_to_the_end():
    system, _ = run_prelim(seed=912, max_time=3000.0)
    series = suspicion_series(system.engine.trace, "p", "q",
                              detector="prelim")
    last_suspicion = max((t for t, s in series if s), default=0.0)
    assert last_suspicion > 0.8 * system.engine.now


def test_threads_both_progress():
    system, pair = run_prelim(seed=913, max_time=1500.0)
    assert pair.witness.eat_sessions > 20
    assert pair.subject.eat_sessions_completed > 20
