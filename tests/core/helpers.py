"""Builders for reduction tests: manual harness and full-system runs."""

from __future__ import annotations

from repro.core.pair import ReductionPair
from repro.core.subject import SubjectShared, SubjectThread
from repro.core.witness import ExtractedPairModule, WitnessShared, WitnessThread
from repro.dining.base import DinerComponent
from repro.experiments.common import System, build_system, deferred_box, wf_box
from tests.conftest import make_engine


class ManualDiner(DinerComponent):
    """A diner with no algorithm: tests schedule it by hand via grant()."""

    def grant(self) -> None:
        from repro.types import DinerState

        assert self.state is DinerState.HUNGRY
        self._set_state(DinerState.EATING)

    def finish(self) -> None:
        from repro.types import DinerState

        if self.state is DinerState.EXITING:
            self._set_state(DinerState.THINKING)


class ManualPair:
    """Witness/subject threads wired over hand-scheduled diners.

    Lets unit tests drive the paper's Alg. 1/2 actions step by step without
    a real dining algorithm underneath.
    """

    def __init__(self, monitor_invariants: bool = True):
        self.engine = make_engine(max_time=1e6)
        self.p = self.engine.add_process("p")
        self.q = self.engine.add_process("q")

        self.output = ExtractedPairModule("out", target="q")
        self.p.add_component(self.output)
        w_shared = WitnessShared(self.output)
        s_shared = SubjectShared()

        self.wdiners, self.sdiners = [], []
        self.witnesses, self.subjects = [], []
        for i in (0, 1):
            wd = ManualDiner(f"DX{i}:wd", f"DX{i}", ("q",))
            sd = ManualDiner(f"DX{i}:sd", f"DX{i}", ("p",))
            self.p.add_component(wd)
            self.q.add_component(sd)
            self.wdiners.append(wd)
            self.sdiners.append(sd)
            w = WitnessThread(f"w{i}", i, w_shared, diner=wd)
            s = SubjectThread(f"s{i}", i, s_shared, diner=sd)
            s.monitor_invariants = monitor_invariants
            self.p.add_component(w)
            self.q.add_component(s)
            self.witnesses.append(w)
            self.subjects.append(s)
        for i in (0, 1):
            self.witnesses[i].wire(self.witnesses[1 - i], "q", f"s{i}")
            self.subjects[i].wire(self.subjects[1 - i], "p", f"w{i}")
        self.w_shared = w_shared
        self.s_shared = s_shared

    def settle(self, steps: int = 60) -> None:
        """Run both processes' step loops and the network for a while."""
        self.engine.run(until=self.engine.now + steps)


def run_pair_system(seed: int = 1, crash=None, max_time: float = 2500.0,
                    box: str = "wf", gst: float = 150.0,
                    monitor_invariants: bool = True,
                    horizon: float = 150.0):
    """One ordered pair (p monitors q) over a real black box."""
    from repro.core.extraction import build_full_extraction

    system = build_system(["p", "q"], seed=seed, gst=gst, max_time=max_time,
                          crash=crash)
    factory = (wf_box(system) if box == "wf"
               else deferred_box(system, horizon=horizon))
    detectors, pairs = build_full_extraction(
        system.engine, ["p", "q"], factory, monitors=[("p", "q")],
        monitor_invariants=monitor_invariants,
    )
    system.engine.run()
    return system, detectors, pairs[("p", "q")]
