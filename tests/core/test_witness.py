"""Unit tests for Algorithm 1 (witness threads), action by action."""

import pytest

from repro.errors import ConfigurationError
from repro.core.witness import ExtractedPairModule, WitnessShared, WitnessThread
from repro.types import DinerState
from tests.core.helpers import ManualPair


def test_witness_index_validated():
    with pytest.raises(ConfigurationError):
        WitnessThread("w", 2, WitnessShared(None), diner=None)


def test_initially_suspects_target():
    mp = ManualPair()
    assert mp.output.suspected("q")       # paper: suspect_q starts true


def test_W_h_only_when_both_thinking_and_switch_matches():
    mp = ManualPair()
    # switch = 0: witness 0 becomes hungry, witness 1 does not.
    mp.settle(5)
    assert mp.wdiners[0].state is DinerState.HUNGRY
    assert mp.wdiners[1].state is DinerState.THINKING


def test_W_x_reads_haveping_and_flips_switch():
    mp = ManualPair()
    mp.settle(5)
    mp.w_shared.haveping[0] = True        # pretend a ping arrived
    mp.wdiners[0].grant()
    mp.settle(5)
    assert not mp.output.suspected("q")   # trusted: haveping was true
    assert mp.w_shared.haveping[0] is False   # consumed
    assert mp.w_shared.switch == 1            # hand over to witness 1


def test_W_x_suspects_without_ping():
    mp = ManualPair()
    mp.settle(5)
    mp.wdiners[0].grant()
    mp.settle(5)
    assert mp.output.suspected("q")


def test_witnesses_take_turns():
    mp = ManualPair()
    order = []
    for _ in range(4):
        mp.settle(5)
        for i in (0, 1):
            if mp.wdiners[i].state is DinerState.HUNGRY:
                order.append(i)
                mp.wdiners[i].grant()
                mp.settle(5)
                mp.wdiners[i].finish()
    assert order[:4] == [0, 1, 0, 1]


def test_W_p_sets_haveping_and_acks():
    mp = ManualPair()
    mp.settle(5)
    # Subject s0 becomes hungry by itself (trigger=0); grant it.
    assert mp.sdiners[0].state is DinerState.HUNGRY
    mp.sdiners[0].grant()
    mp.settle(20)                          # s0 pings, w0 acks
    assert mp.witnesses[0].pings_received == 1
    assert mp.witnesses[0].acks_sent == 1
    assert mp.w_shared.haveping[0] or mp.witnesses[0].eat_sessions > 0


def test_eat_sessions_counted():
    mp = ManualPair()
    mp.settle(5)
    mp.wdiners[0].grant()
    mp.settle(5)
    assert mp.witnesses[0].eat_sessions == 1


def test_witness_exits_immediately_after_eating():
    mp = ManualPair()
    mp.settle(5)
    mp.wdiners[0].grant()
    mp.settle(5)
    # W_x fired: the diner has left eating (exiting already finished or not).
    assert mp.wdiners[0].state is not DinerState.EATING
