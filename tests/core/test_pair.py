"""Integration tests for one reduction pair over real black boxes."""

import pytest

from repro.core.pair import ReductionPair
from repro.errors import ConfigurationError
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.faults import CrashSchedule
from tests.core.helpers import run_pair_system


def test_self_monitoring_rejected():
    with pytest.raises(ConfigurationError):
        ReductionPair("p", "p", box_factory=None)


def test_double_attach_rejected():
    from repro.experiments.common import build_system, wf_box

    system = build_system(["p", "q"], seed=1, max_time=10.0)
    pair = ReductionPair("p", "q", wf_box(system))
    pair.attach(system.engine)
    with pytest.raises(ConfigurationError):
        pair.attach(system.engine)


def test_unattached_query_rejected():
    pair = ReductionPair("p", "q", box_factory=None)
    with pytest.raises(ConfigurationError):
        pair.suspected()


def test_pair_creates_two_instances_and_four_threads():
    from repro.experiments.common import build_system, wf_box

    system = build_system(["p", "q"], seed=1, max_time=10.0)
    pair = ReductionPair("p", "q", wf_box(system))
    pair.attach(system.engine)
    assert len(pair.instances) == 2
    assert len(pair.witnesses) == 2 and len(pair.subjects) == 2
    assert pair.instance_ids() == ("R[p>q].DX0", "R[p>q].DX1")


@pytest.mark.parametrize("box", ["wf", "deferred"])
def test_accuracy_with_correct_subject(box):
    system, detectors, pair = run_pair_system(seed=90, box=box)
    rep = check_eventual_strong_accuracy(
        system.engine.trace, ["p"], ["q"], system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    assert not detectors["p"].suspected("q")


@pytest.mark.parametrize("box", ["wf", "deferred"])
def test_completeness_with_crashed_subject(box):
    system, detectors, pair = run_pair_system(
        seed=91, box=box, crash=CrashSchedule.single("q", 600.0))
    rep = check_strong_completeness(
        system.engine.trace, ["p"], ["q"], system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    assert detectors["p"].suspected("q")


def test_witness_crash_leaves_subject_unobserved_but_harmless():
    """Paper Section 8: if the witness crashes, the subject may eat forever;
    this must not corrupt anything else."""
    system, _, pair = run_pair_system(
        seed=92, crash=CrashSchedule.single("p", 400.0), max_time=1500.0)
    # q's subjects are still running (or parked eating); no exception, and
    # q's process is alive.
    assert not system.engine.process("q").crashed
    assert system.engine.process("p").crashed


def test_reduction_is_message_driven_only():
    """The witness process exchanges only protocol messages with q: dining
    req/fork plus ping/ack — no hidden channels."""
    system, _, pair = run_pair_system(seed=93, max_time=400.0)
    kinds = set(system.engine.network.sent_by_kind)
    assert kinds <= {"req", "fork", "ping", "ack", "hb"}


def test_pings_equal_acks_within_one():
    system, _, pair = run_pair_system(seed=94, max_time=1200.0)
    for i in (0, 1):
        sent = pair.subjects[i].pings_sent
        acked = pair.subjects[i].acks_received
        assert sent - acked in (0, 1)
