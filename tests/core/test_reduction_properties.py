"""Property sweeps over the reduction: the paper's lemmas across seeds.

These are the deepest integration tests: for both black boxes and several
seeds, the reduction must satisfy the lemma-level structure (sessions,
throttling, hand-off) and the theorem-level oracle properties — with the
runtime invariant monitors for Lemmas 2 and 4 armed throughout.
"""

import pytest

from repro.analysis.sessions import analyze_pair_sessions
from repro.dining.spec import check_exclusion
from repro.graphs import pair_graph
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
    false_positive_count,
)
from repro.sim.faults import CrashSchedule
from tests.core.helpers import run_pair_system


@pytest.mark.parametrize("seed", [120, 121, 122])
@pytest.mark.parametrize("box", ["wf", "deferred"])
def test_theorem2_accuracy_sweep(seed, box):
    system, _, pair = run_pair_system(seed=seed, box=box, max_time=2000.0)
    rep = check_eventual_strong_accuracy(
        system.engine.trace, ["p"], ["q"], system.schedule,
        detector="extracted")
    assert rep.ok, f"{box}/{seed}: {rep.format_table()}"
    mistakes = false_positive_count(system.engine.trace, "p", "q",
                                    system.schedule, detector="extracted")
    assert mistakes <= 10   # finite, small


@pytest.mark.parametrize("seed", [123, 124])
@pytest.mark.parametrize("box", ["wf", "deferred"])
@pytest.mark.parametrize("crash_at", [150.0, 900.0])
def test_theorem1_completeness_sweep(seed, box, crash_at):
    system, _, pair = run_pair_system(
        seed=seed, box=box, max_time=2200.0,
        crash=CrashSchedule.single("q", crash_at))
    rep = check_strong_completeness(
        system.engine.trace, ["p"], ["q"], system.schedule,
        detector="extracted")
    assert rep.ok, f"{box}/{seed}/{crash_at}: {rep.format_table()}"


@pytest.mark.parametrize("seed", [125, 126])
def test_lemma12_witness_alternation(seed):
    system, _, pair = run_pair_system(seed=seed, max_time=1500.0)
    w0 = pair.witnesses[0].eat_sessions
    w1 = pair.witnesses[1].eat_sessions
    assert abs(w0 - w1) <= 1 and w0 > 10


@pytest.mark.parametrize("seed", [127, 128])
def test_lemma5_one_ping_one_ack_per_session(seed):
    system, _, pair = run_pair_system(seed=seed, max_time=1500.0)
    for i in (0, 1):
        s = pair.subjects[i]
        w = pair.witnesses[i]
        assert abs(s.pings_sent - s.eat_sessions_completed) <= 1
        assert abs(w.pings_received - w.acks_sent) == 0
        assert abs(s.acks_received - s.pings_sent) <= 1


@pytest.mark.parametrize("box", ["wf", "deferred"])
def test_figure1_structure_in_exclusive_suffix(box):
    system, _, pair = run_pair_system(seed=129, box=box, max_time=2500.0)
    end = system.engine.now
    trace = system.engine.trace
    conv = 0.0
    for iid in pair.instance_ids():
        rep = check_exclusion(trace, pair_graph("p", "q"), iid,
                              system.schedule, end)
        if rep.last_violation_end is not None:
            conv = max(conv, rep.last_violation_end)
    analysis = analyze_pair_sessions(trace, pair, end)
    after = conv + 200.0
    assert analysis.throttling_ok(after)
    assert analysis.handoff_ok(after)


def test_lemma3_no_stale_messages_between_sessions():
    """Lemma 3: when the subject is idle with ping=true, no ping/ack of its
    instance is in transit.  We verify the global corollary at end of run:
    ping and ack counters balance."""
    system, _, pair = run_pair_system(seed=130, max_time=2000.0)
    sent_pings = sum(s.pings_sent for s in pair.subjects)
    recv_pings = sum(w.pings_received for w in pair.witnesses)
    sent_acks = sum(w.acks_sent for w in pair.witnesses)
    recv_acks = sum(s.acks_received for s in pair.subjects)
    assert 0 <= sent_pings - recv_pings <= 2   # at most one in flight per DX
    assert 0 <= sent_acks - recv_acks <= 2


def test_lemma1_hungry_subject_eventually_eats():
    system, _, pair = run_pair_system(seed=131, max_time=1500.0)
    # Every completed hungry period of each subject ended in eating:
    # completed sessions grow throughout the run.
    assert all(s.eat_sessions_completed > 10 for s in pair.subjects)


def test_lemma6_subject_sessions_finite_while_witness_correct():
    system, _, pair = run_pair_system(seed=132, max_time=1500.0)
    end = system.engine.now
    analysis = analyze_pair_sessions(system.engine.trace, pair, end)
    for i in (0, 1):
        closed = [iv for iv in analysis.subject[i] if iv[1] < end]
        assert closed, "subject never completed a session"
        longest = max(b - a for a, b in closed)
        assert longest < end / 4   # finite, far shorter than the run
