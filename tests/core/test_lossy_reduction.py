"""Acceptance: the paper's reduction works over emulated reliable channels.

The witness/subject threads (Alg. 1/2) assume the Section 4 channel model:
reliable, non-FIFO delivery between correct processes.  Here the wire is
fair-lossy — ≥10% random drop plus a partition window — and the
:class:`~repro.sim.transport.ReliableTransport` restores the contract
underneath.  The reduction code runs *unchanged*: everything below is the
same ``build_full_extraction`` harness the clean-network tests use, with
only engine-level fault/transport configuration added.
"""

from repro.core.extraction import build_full_extraction
from repro.experiments.common import build_system, wf_box
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.faults import CrashSchedule
from repro.sim.link_faults import LinkFaultModel, Partition
from repro.sim.transport import RetransmitPolicy

#: Snappy retransmission so recovery timescales fit the test horizon.
POLICY = RetransmitPolicy(rto_initial=5.0, rto_max=40.0)


def run_lossy_pair(seed=3, crash=None, max_time=2500.0, drop=0.12,
                   partition=None):
    faults = LinkFaultModel(
        drop=drop,
        partitions=[partition] if partition is not None else (),
    )
    system = build_system(["p", "q"], seed=seed, gst=150.0,
                          max_time=max_time, crash=crash,
                          fault_model=faults, transport=POLICY)
    detectors, pairs = build_full_extraction(
        system.engine, ["p", "q"], wf_box(system), monitors=[("p", "q")])
    system.engine.run()
    return system, detectors, pairs[("p", "q")]


class TestExtractionOverLossyWire:
    def test_accuracy_with_drop_and_partition(self):
        """◇P extraction converges (no permanent false suspicion of the
        correct subject) despite 12% loss and a mid-run partition."""
        part = Partition.of(["q"], start=400.0, end=650.0)
        system, _, _ = run_lossy_pair(partition=part)
        rep = check_eventual_strong_accuracy(
            system.engine.trace, ["p"], ["q"], system.schedule,
            detector="extracted")
        assert rep.ok, rep.format_table()
        assert system.transport is not None
        assert system.engine.network.dropped > 0          # faults really hit
        assert system.transport.retransmissions > 0       # and were repaired

    def test_completeness_with_drop(self):
        """A crashed subject is eventually permanently suspected even while
        the wire keeps losing (and the transport keeps repairing) traffic."""
        system, _, _ = run_lossy_pair(
            crash=CrashSchedule.single("q", 900.0), drop=0.15)
        rep = check_strong_completeness(
            system.engine.trace, ["p"], ["q"], system.schedule,
            detector="extracted")
        assert rep.ok, rep.format_table()

    def test_deterministic_replay(self):
        """Same seed, same faults: the extracted suspicion history is
        identical — the chaos-replay guarantee at the reduction layer."""
        def history(seed):
            system, _, _ = run_lossy_pair(seed=seed, max_time=1200.0)
            return [
                (r.time, r["suspected"])
                for r in system.engine.trace.records(
                    kind="suspect", pid="p",
                    where=lambda r: r.get("detector") == "extracted")
            ]

        assert history(5) == history(5)
        assert history(5) != history(6)

    def test_heavy_loss_still_converges(self):
        part = Partition.of(["p"], start=300.0, end=480.0)
        system, _, _ = run_lossy_pair(seed=11, drop=0.25, partition=part,
                                      max_time=3000.0)
        rep = check_eventual_strong_accuracy(
            system.engine.trace, ["p"], ["q"], system.schedule,
            detector="extracted")
        assert rep.ok, rep.format_table()


class TestRawLossyWireBreaksAssumptions:
    def test_without_transport_wire_loses_for_good(self):
        """Control experiment: the same faults with no transport leave the
        application short of messages — the Section 4 premise really is
        doing work in the tests above."""
        faults = LinkFaultModel(drop=0.3)
        system = build_system(["p", "q"], seed=3, max_time=800.0,
                              fault_model=faults)
        build_full_extraction(system.engine, ["p", "q"], wf_box(system),
                              monitors=[("p", "q")])
        system.engine.run()
        net = system.engine.network
        assert system.transport is None
        assert net.dropped > 0
        assert net.delivered < net.sent
