"""Tests for the full (all-ordered-pairs) extracted ◇P and the
conflict-graph-local pair-selection policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import graphs
from repro.core.extraction import (
    ExtractedDetector,
    PairSelection,
    build_full_extraction,
)
from repro.errors import ConfigurationError
from repro.experiments.common import build_system, wf_box
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.faults import CrashSchedule


def run_full(n=3, seed=100, crash=None, max_time=2500.0):
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, max_time=max_time, crash=crash)
    detectors, pairs = build_full_extraction(system.engine, pids,
                                             wf_box(system))
    system.engine.run()
    return system, pids, detectors, pairs


def test_all_ordered_pairs_built():
    system, pids, detectors, pairs = run_full(n=3, max_time=10.0)
    assert len(pairs) == 6                       # 3 * 2 ordered pairs
    assert set(detectors) == set(pids)
    assert set(detectors["p0"].monitored) == {"p1", "p2"}


def test_monitors_subset():
    pids = ["a", "b", "c"]
    system = build_system(pids, seed=1, max_time=10.0)
    detectors, pairs = build_full_extraction(
        system.engine, pids, wf_box(system), monitors=[("a", "b")])
    assert list(pairs) == [("a", "b")]
    assert list(detectors) == ["a"]


def test_facade_query_surface():
    system, pids, detectors, _ = run_full(n=2, max_time=10.0)
    d = detectors["p0"]
    assert isinstance(d, ExtractedDetector)
    assert d.suspected("p1") == (not d.trusted("p1"))
    assert d.suspects() <= {"p1"}
    with pytest.raises(ConfigurationError):
        d.suspected("ghost")


def test_full_system_accuracy_failure_free():
    system, pids, detectors, _ = run_full(n=3, seed=101)
    rep = check_eventual_strong_accuracy(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    for p in pids:
        assert detectors[p].suspects() == frozenset()


def test_full_system_completeness_one_crash():
    system, pids, detectors, _ = run_full(
        n=3, seed=102, crash=CrashSchedule.single("p2", 700.0))
    rep = check_strong_completeness(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    for p in ("p0", "p1"):
        assert detectors[p].suspects() == {"p2"}


class TestPairSelection:
    @pytest.mark.parametrize("spec, policy, hops", [
        ("all", "all", 1),
        ("neighbors", "neighbors", 1),
        ("neighbors:1", "neighbors", 1),
        ("neighbors:3", "neighbors", 3),
    ])
    def test_parse(self, spec, policy, hops):
        sel = PairSelection.parse(spec)
        assert (sel.policy, sel.hops) == (policy, hops)
        assert PairSelection.parse(sel.spec_string()) == sel

    @pytest.mark.parametrize("spec, match", [
        ("everyone", "unknown pair selection"),
        ("all:2", "takes no argument"),
        ("neighbors:zero", "must be an integer"),
        ("neighbors:0", "must be >= 1"),
        (7, "must be a string"),
    ])
    def test_parse_rejects(self, spec, match):
        with pytest.raises(ConfigurationError, match=match):
            PairSelection.parse(spec)

    def test_all_preserves_historical_pair_order(self):
        pids = ["p0", "p1", "p2"]
        assert (PairSelection.parse("all").pairs_for(pids, None)
                == [(p, q) for p in pids for q in pids if p != q])

    def test_neighbors_requires_graph(self):
        with pytest.raises(ConfigurationError, match="graph"):
            PairSelection.parse("neighbors").pairs_for(["a", "b"], None)

    def test_two_hops_on_a_path(self):
        g = graphs.path(4)                       # p0 - p1 - p2 - p3
        sel = PairSelection.parse("neighbors:2")
        peers = sel.peers_map(sorted(g.nodes), g)
        assert peers["p0"] == ["p1", "p2"]
        assert peers["p1"] == ["p0", "p2", "p3"]

    @given(n=st.integers(2, 12), p=st.floats(0.1, 0.9),
           seed=st.integers(0, 50))
    def test_neighbor_pairs_are_exactly_both_edge_orientations(self, n, p,
                                                               seed):
        import numpy as np
        g = graphs.random_graph(n, p, np.random.default_rng(seed),
                                connect=False)
        pids = sorted(g.nodes)
        pairs = PairSelection.parse("neighbors").pairs_for(pids, g)
        expected = {(u, v) for u, v in g.edges} | {(v, u) for u, v in g.edges}
        assert set(pairs) == expected
        assert len(pairs) == len(expected)       # no duplicates
        assert len(pairs) == 2 * g.number_of_edges()

    def test_build_full_extraction_with_selection(self):
        pids = ["p0", "p1", "p2", "p3"]
        system = build_system(pids, seed=9, max_time=10.0)
        g = graphs.path(4)
        detectors, pairs = build_full_extraction(
            system.engine, pids, wf_box(system),
            selection="neighbors", graph=g)
        assert len(pairs) == 2 * g.number_of_edges()
        assert set(detectors["p0"].monitored) == {"p1"}
        assert set(detectors["p1"].monitored) == {"p0", "p2"}

    def test_build_full_extraction_rejects_monitors_plus_selection(self):
        pids = ["a", "b"]
        system = build_system(pids, seed=1, max_time=10.0)
        with pytest.raises(ConfigurationError, match="not both"):
            build_full_extraction(
                system.engine, pids, wf_box(system),
                monitors=[("a", "b")], selection="neighbors",
                graph=graphs.pair_graph("a", "b"))


def test_pairs_are_independent_of_each_other():
    """Crashing p2 must not disturb the (p0, p1) pair's accuracy."""
    system, pids, detectors, _ = run_full(
        n=3, seed=103, crash=CrashSchedule.single("p2", 400.0))
    rep = check_eventual_strong_accuracy(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
