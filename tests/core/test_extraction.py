"""Tests for the full (all-ordered-pairs) extracted ◇P."""

import pytest

from repro.core.extraction import ExtractedDetector, build_full_extraction
from repro.errors import ConfigurationError
from repro.experiments.common import build_system, wf_box
from repro.oracles.properties import (
    check_eventual_strong_accuracy,
    check_strong_completeness,
)
from repro.sim.faults import CrashSchedule


def run_full(n=3, seed=100, crash=None, max_time=2500.0):
    pids = [f"p{i}" for i in range(n)]
    system = build_system(pids, seed=seed, max_time=max_time, crash=crash)
    detectors, pairs = build_full_extraction(system.engine, pids,
                                             wf_box(system))
    system.engine.run()
    return system, pids, detectors, pairs


def test_all_ordered_pairs_built():
    system, pids, detectors, pairs = run_full(n=3, max_time=10.0)
    assert len(pairs) == 6                       # 3 * 2 ordered pairs
    assert set(detectors) == set(pids)
    assert set(detectors["p0"].monitored) == {"p1", "p2"}


def test_monitors_subset():
    pids = ["a", "b", "c"]
    system = build_system(pids, seed=1, max_time=10.0)
    detectors, pairs = build_full_extraction(
        system.engine, pids, wf_box(system), monitors=[("a", "b")])
    assert list(pairs) == [("a", "b")]
    assert list(detectors) == ["a"]


def test_facade_query_surface():
    system, pids, detectors, _ = run_full(n=2, max_time=10.0)
    d = detectors["p0"]
    assert isinstance(d, ExtractedDetector)
    assert d.suspected("p1") == (not d.trusted("p1"))
    assert d.suspects() <= {"p1"}
    with pytest.raises(ConfigurationError):
        d.suspected("ghost")


def test_full_system_accuracy_failure_free():
    system, pids, detectors, _ = run_full(n=3, seed=101)
    rep = check_eventual_strong_accuracy(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    for p in pids:
        assert detectors[p].suspects() == frozenset()


def test_full_system_completeness_one_crash():
    system, pids, detectors, _ = run_full(
        n=3, seed=102, crash=CrashSchedule.single("p2", 700.0))
    rep = check_strong_completeness(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
    for p in ("p0", "p1"):
        assert detectors[p].suspects() == {"p2"}


def test_pairs_are_independent_of_each_other():
    """Crashing p2 must not disturb the (p0, p1) pair's accuracy."""
    system, pids, detectors, _ = run_full(
        n=3, seed=103, crash=CrashSchedule.single("p2", 400.0))
    rep = check_eventual_strong_accuracy(
        system.engine.trace, pids, pids, system.schedule,
        detector="extracted")
    assert rep.ok, rep.format_table()
