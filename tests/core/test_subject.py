"""Unit tests for Algorithm 2 (subject threads), action by action."""

import pytest

from repro.core.subject import SubjectShared, SubjectThread
from repro.errors import ConfigurationError
from repro.types import DinerState
from tests.core.helpers import ManualPair


def test_subject_index_validated():
    with pytest.raises(ConfigurationError):
        SubjectThread("s", -1, SubjectShared(), diner=None)


def test_S_h_only_subject_zero_initially():
    mp = ManualPair()
    mp.settle(5)
    assert mp.sdiners[0].state is DinerState.HUNGRY   # trigger = 0
    assert mp.sdiners[1].state is DinerState.THINKING


def test_S_p_sends_single_ping_when_other_not_eating():
    mp = ManualPair()
    mp.settle(5)
    mp.sdiners[0].grant()
    mp.settle(20)
    assert mp.subjects[0].pings_sent == 1     # exactly one per session
    assert mp.s_shared.ping[0] is False


def test_S_a_flips_trigger_and_schedules_other_subject():
    mp = ManualPair()
    mp.settle(5)
    mp.sdiners[0].grant()
    mp.settle(30)                              # ping -> ack round trip
    assert mp.subjects[0].acks_received == 1
    assert mp.s_shared.trigger == 1
    assert mp.sdiners[1].state is DinerState.HUNGRY


def test_S_x_requires_overlap_and_trigger():
    mp = ManualPair()
    mp.settle(5)
    mp.sdiners[0].grant()
    mp.settle(30)
    # s0 is eating, trigger flipped, s1 hungry but NOT yet eating: s0 stays.
    assert mp.sdiners[0].state is DinerState.EATING
    mp.sdiners[1].grant()
    mp.settle(10)
    # Overlap achieved: s0 exits, re-arming its ping flag (Lemma 2).
    assert mp.sdiners[0].state is not DinerState.EATING
    assert mp.s_shared.ping[0] is True
    assert mp.subjects[0].eat_sessions_completed == 1


def test_handoff_alternates_between_subjects():
    mp = ManualPair()
    served = []
    for _ in range(6):
        mp.settle(30)
        for i in (0, 1):
            if mp.sdiners[i].state is DinerState.HUNGRY:
                served.append(i)
                mp.sdiners[i].grant()
        for d in mp.sdiners:
            d.finish()
    assert served[:4] == [0, 1, 0, 1]


def test_invariant_monitor_clean_through_handoff():
    mp = ManualPair(monitor_invariants=True)
    for _ in range(8):
        mp.settle(30)
        for i in (0, 1):
            if mp.sdiners[i].state is DinerState.HUNGRY:
                mp.sdiners[i].grant()
        for d in mp.sdiners:
            d.finish()
    # No InvariantViolation raised: Lemmas 2 and 4 held throughout.
    assert mp.subjects[0].eat_sessions_completed >= 2


def test_second_ping_only_after_exit():
    mp = ManualPair()
    mp.settle(5)
    mp.sdiners[0].grant()
    mp.settle(40)
    assert mp.subjects[0].pings_sent == 1
    mp.sdiners[1].grant()      # let s0 complete the hand-off and exit
    mp.settle(40)
    # s1's session pings once too; s0 hasn't re-eaten yet.
    assert mp.subjects[1].pings_sent == 1
    assert mp.subjects[0].pings_sent == 1
