"""Integration: every experiment harness passes its paper claim.

These reuse the exact code the benchmarks run (with default parameters
scaled down where the default is slow), so a green run here means
EXPERIMENTS.md's verdict column is reproducible.
"""

import pytest

from repro.experiments import REGISTRY
from repro.experiments import (
    e01_figure1,
    e02_completeness,
    e03_accuracy,
    e04_flawed_cm,
    e05_liveness,
    e06_fairness,
    e07_trusting,
    e08_consensus,
    e09_wsn,
    e10_stm,
    e11_native_oracle,
    e12_overhead,
    e13_fair_wrapper,
    e14_adversary,
    e15_statistics,
    e16_locality,
    e17_replication,
    e18_dstm,
    e19_asynchrony,
)


def test_registry_is_complete():
    assert list(REGISTRY) == [f"e{i}" for i in range(1, 20)]
    for mod in REGISTRY.values():
        assert hasattr(mod, "run") and hasattr(mod, "TITLE")


def test_e1_figure1():
    r = e01_figure1.run()
    assert r.ok, r.render()


def test_e2_completeness():
    r = e02_completeness.run(crash_times=(300.0,), max_time=1500.0)
    assert r.ok, r.render()


def test_e3_accuracy():
    r = e03_accuracy.run(gsts=(120.0,), max_time=2000.0)
    assert r.ok, r.render()


def test_e4_flawed_cm():
    r = e04_flawed_cm.run()
    assert r.ok, r.render()


def test_e5_liveness():
    r = e05_liveness.run()
    assert r.ok, r.render()


def test_e6_fairness():
    r = e06_fairness.run()
    assert r.ok, r.render()


def test_e7_trusting():
    r = e07_trusting.run()
    assert r.ok, r.render()


def test_e8_consensus():
    r = e08_consensus.run()
    assert r.ok, r.render()


def test_e9_wsn():
    r = e09_wsn.run(seeds=(901,), max_time=1200.0)
    assert r.ok, r.render()


def test_e10_stm():
    r = e10_stm.run(client_counts=(2, 4), tx_target=8)
    assert r.ok, r.render()


def test_e11_native_oracle():
    r = e11_native_oracle.run(gsts=(100.0, 400.0), max_time=2000.0)
    assert r.ok, r.render()


def test_e12_overhead():
    r = e12_overhead.run(ns=(2, 3), max_time=800.0)
    assert r.ok, r.render()


def test_e13_fair_wrapper():
    r = e13_fair_wrapper.run(ks=(1, 2), max_time=2000.0)
    assert r.ok, r.render()


def test_e14_adversary():
    r = e14_adversary.run(adversaries=("none", "slow-pingack"),
                          max_time=3000.0)
    assert r.ok, r.render()


def test_e15_statistics():
    r = e15_statistics.run(n_seeds=3, max_time=1800.0)
    assert r.ok, r.render()


def test_e16_locality():
    r = e16_locality.run(n=4, max_time=1800.0)
    assert r.ok, r.render()


def test_e17_replication():
    r = e17_replication.run()
    assert r.ok, r.render()


def test_e18_dstm():
    r = e18_dstm.run(client_counts=(2, 4), tx_target=8)
    assert r.ok, r.render()


def test_e19_asynchrony():
    r = e19_asynchrony.run(horizons=(1500.0, 4000.0))
    assert r.ok, r.render()


def test_results_render_cleanly():
    r = e01_figure1.run()
    text = r.render()
    assert "[E1]" in text and "PASS" in text
