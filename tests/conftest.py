"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Engine, FixedDelays, SimConfig
from repro.sim.faults import CrashSchedule


@pytest.fixture
def engine():
    """A small deterministic engine with fixed 1.0 message delays."""
    return Engine(SimConfig(seed=1, max_time=500.0),
                  delay_model=FixedDelays(1.0))


def make_engine(seed: int = 1, max_time: float = 500.0, delay: float = 1.0,
                crash: CrashSchedule | None = None,
                record_messages: bool = False) -> Engine:
    """Deterministic engine factory for tests needing custom knobs."""
    return Engine(
        SimConfig(seed=seed, max_time=max_time,
                  record_messages=record_messages),
        delay_model=FixedDelays(delay),
        crash_schedule=crash or CrashSchedule.none(),
    )
