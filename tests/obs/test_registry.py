"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(5.0)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_observation_accounting(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]  # last = overflow
        assert h.sum == pytest.approx(105.0)
        assert h.min == 0.5 and h.max == 100.0

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap.count == 0
        assert snap.min is None and snap.max is None
        assert snap.percentile(50.0) is None
        assert snap.mean() is None

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("h", buckets=(10.0, 20.0))
        h.observe(12.0)
        h.observe(13.0)
        snap = h.snapshot()
        p0, p100 = snap.percentile(0.0), snap.percentile(100.0)
        assert 12.0 <= p0 <= 13.0
        assert 12.0 <= p100 <= 13.0
        with pytest.raises(ConfigurationError):
            snap.percentile(101.0)

    def test_overflow_interpolates_toward_observed_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.snapshot().percentile(99.0) <= 50.0

    def test_merge_adds_bucketwise(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(1.0)
        b.observe(100.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.count == 2
        assert merged.min == 1.0 and merged.max == 100.0
        assert merged.sum == pytest.approx(101.0)

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("h", buckets=(1.0,)).snapshot()
        b = Histogram("h", buckets=(2.0,)).snapshot()
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_dict_round_trip(self):
        h = Histogram("h")
        h.observe(3.0)
        snap = h.snapshot()
        again = HistogramSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict())))
        assert again == snap


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("net.sent", kind="ping").inc()
        reg.counter("net.sent", kind="ack").inc(2)
        snap = reg.snapshot()
        assert snap.counter_value('net.sent{kind="ping"}') == 1
        assert snap.counter_value('net.sent{kind="ack"}') == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("m", b="2", a="1") is reg.counter("m", a="1", b="2")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_snapshot_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap.counter_value("c") == 1.0
        assert snap.gauge_value("g") == 7.0
        assert snap.histogram("h").count == 1
        assert snap.gauge_value("missing") is None
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_snapshot_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g", process="p0").set(1.5)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        again = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict())))
        assert again == snap

    def test_gauges_by_prefix(self):
        reg = MetricsRegistry()
        reg.gauge("oracle.stabilized_at", process="p0").set(10.0)
        reg.gauge("oracle.stabilized_at", process="p1").set(20.0)
        reg.gauge("other").set(1.0)
        found = reg.snapshot().gauges_by_prefix("oracle.stabilized_at")
        assert sorted(found.values()) == [10.0, 20.0]

    def test_merge_sums_counters_merges_histograms_drops_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(5.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counter_value("c") == 3.0
        assert merged.gauges == {}
        assert merged.histogram("h").count == 2


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 50.0) is None
        assert percentile([4.0], 95.0) == 4.0

    def test_exact_interpolation(self):
        vs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vs, 0.0) == 1.0
        assert percentile(vs, 100.0) == 4.0
        assert percentile(vs, 50.0) == pytest.approx(2.5)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1.0)

    def test_default_buckets_strictly_increase(self):
        assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
