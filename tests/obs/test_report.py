"""Campaign aggregation: cross-seed telemetry and its chaos/CLI surface."""

import dataclasses
import json

import pytest

from repro.chaos import ChaosConfig, run_campaign
from repro.obs import (
    CampaignTelemetry,
    dumps_record,
    run_record,
)
from repro.runtime.builder import execute
from repro.runtime.spec import RunSpec


@pytest.fixture(scope="module")
def results():
    base = RunSpec(name="agg", graph="ring:3", max_time=400.0,
                   crashes={"p1": 150.0})
    return [execute(dataclasses.replace(base, seed=s)) for s in (1, 2, 3)]


class TestCampaignTelemetry:
    def test_from_results_counts_runs(self, results):
        tele = CampaignTelemetry.from_results(results)
        assert tele.runs == 3
        assert tele.with_metrics == 3
        assert len(tele.convergence_times) == 3

    def test_from_records_equals_from_results(self, results):
        records = [run_record(r) for r in results]
        # Through a JSON round-trip, as `repro report` would see them.
        records = [json.loads(dumps_record(r)) for r in records]
        a = CampaignTelemetry.from_results(results).summary()
        b = CampaignTelemetry.from_records(records).summary()
        assert a == b

    def test_convergence_stats_ordered(self, results):
        stats = CampaignTelemetry.from_results(results).convergence_stats()
        assert stats["unconverged"] == 0
        assert stats["p50"] <= stats["p95"] <= stats["max"]

    def test_unconverged_runs_counted_separately(self):
        converged = {"schema": "repro.run.v1", "summary": {"ok": True},
                     "metrics": {"counters": {}, "histograms": {},
                                 "gauges": {"oracle.converged_at": 50.0}}}
        unconverged = {"schema": "repro.run.v1", "summary": {"ok": False},
                       "metrics": {"counters": {}, "histograms": {},
                                   "gauges": {"oracle.wrongful_open": 2.0}}}
        tele = CampaignTelemetry.from_records([converged, unconverged])
        stats = tele.convergence_stats()
        assert stats["unconverged"] == 1
        assert stats["max"] == 50.0

    def test_runs_without_metrics_still_counted(self):
        tele = CampaignTelemetry.from_records(
            [{"schema": "repro.run.v1", "summary": {"ok": True},
              "metrics": None}])
        assert tele.runs == 1
        assert tele.with_metrics == 0
        assert tele.convergence_stats()["p50"] is None

    def test_histograms_merge_across_runs(self, results):
        tele = CampaignTelemetry.from_results(results)
        merged = tele.merged["dining.hungry_to_eating"]
        assert merged.count == sum(
            r.obs.histogram("dining.hungry_to_eating").count for r in results)

    def test_summary_and_render(self, results):
        tele = CampaignTelemetry.from_results(results)
        summary = tele.summary()
        assert summary["runs"] == 3
        assert set(summary["convergence_time"]) == {"p50", "p95", "max",
                                                    "unconverged"}
        text = tele.render()
        assert "convergence time p50" in text
        assert "convergence time p95" in text
        assert "convergence time max" in text

    def test_merged_snapshot_has_campaign_gauges(self, results):
        snap = CampaignTelemetry.from_results(results).merged_snapshot()
        assert snap.gauge_value("campaign.runs") == 3.0
        assert snap.gauge_value("campaign.convergence_time_p95") is not None
        assert snap.counter_value("net.messages_sent") > 0

    def test_summary_is_json_safe(self, results):
        json.dumps(CampaignTelemetry.from_results(results).summary())


class TestChaosIntegration:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(ChaosConfig(campaigns=2, seed=13,
                                        max_time=300.0))

    def test_verdict_summary_has_telemetry_fields(self, campaign):
        for verdict in campaign.verdicts:
            summary = verdict.summary()
            assert "messages_duplicated" in summary
            assert "convergence_time" in summary
            assert summary["wrongful_suspicions"] is not None

    def test_campaign_json_has_telemetry_block(self, campaign):
        data = campaign.to_json()
        assert "telemetry" in data
        assert data["telemetry"]["runs"] == 2
        json.dumps(data)

    def test_render_includes_telemetry_table(self, campaign):
        assert "campaign telemetry" in campaign.render()

    def test_run_records_parse_and_are_deterministic_across_workers(self):
        cfg = ChaosConfig(campaigns=2, seed=13, max_time=300.0)
        serial = run_campaign(cfg, workers=1).run_records()
        parallel = run_campaign(cfg, workers=2).run_records()
        assert [dumps_record(r) for r in serial] == \
               [dumps_record(r) for r in parallel]


class TestSkippedNoMetrics:
    def run_rec(self, metrics):
        return {"schema": "repro.run.v1", "summary": {"ok": True},
                "metrics": metrics}

    def test_null_and_malformed_metrics_counted_as_skipped(self):
        good = self.run_rec({"counters": {}, "histograms": {},
                             "gauges": {"oracle.converged_at": 5.0}})
        tele = CampaignTelemetry.from_records(
            [good, self.run_rec(None), self.run_rec("garbage"),
             self.run_rec({"counters": "nope"})])
        assert tele.runs == 4
        assert tele.ok_runs == 4
        assert tele.with_metrics == 1
        assert tele.skipped_no_metrics == 3
        assert tele.summary()["skipped_no_metrics"] == 3
        # the good record still aggregates normally
        assert tele.convergence_stats()["max"] == 5.0

    def test_all_metrics_present_reports_zero_skipped(self):
        tele = CampaignTelemetry.from_records(
            [self.run_rec({"counters": {}, "histograms": {}, "gauges": {}})])
        assert tele.skipped_no_metrics == 0
