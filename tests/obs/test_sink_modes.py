"""Probes must not depend on retained trace rows: the metric snapshot of a
run is identical under ``full``, ``ring:N``, and ``counters`` sinks.

The probes subscribe to the record *stream* (``Trace.subscribe``), seeing
every record before the sink decides what to keep — so aggressive
eviction may blind the verdict checkers, but never the telemetry.
"""

import dataclasses

import pytest

from repro.runtime.builder import execute
from repro.runtime.spec import RunSpec

#: A run hostile enough to churn the oracle (crash + late GST) and long
#: enough that a 64-row ring evicts nearly the whole history.
BASE = RunSpec(name="sinks", graph="ring:3", seed=23, max_time=500.0,
               crashes={"p1": 180.0})


@pytest.fixture(scope="module")
def snapshots():
    out = {}
    for sink in ("full", "ring:64", "counters"):
        spec = dataclasses.replace(BASE, trace=sink)
        # check=False: truncated traces cannot be judged, but metrics must
        # still be exact.
        out[sink] = execute(spec, check=False)
    return out


def test_ring_sink_actually_evicted(snapshots):
    assert snapshots["ring:64"].trace_evicted > 0
    assert snapshots["counters"].trace_evicted > 0


@pytest.mark.parametrize("sink", ["ring:64", "counters"])
def test_snapshot_identical_to_full_retention(snapshots, sink):
    assert snapshots[sink].obs == snapshots["full"].obs


@pytest.mark.parametrize("sink", ["ring:64", "counters"])
def test_convergence_fields_identical(snapshots, sink):
    full = snapshots["full"]
    other = snapshots[sink]
    assert other.convergence_time == full.convergence_time
    assert other.wrongful_suspicions == full.wrongful_suspicions
    assert other.suspicion_churn == full.suspicion_churn


def test_probe_data_nonempty(snapshots):
    """Guard against the test passing vacuously on an empty registry."""
    obs = snapshots["full"].obs
    assert obs.counter_value("oracle.wrongful_suspicions") > 0
    assert obs.histogram("dining.hungry_to_eating").count > 0
