"""Tests for the span-file timeline renderer (repro.obs.timeline)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.exporters import write_jsonl
from repro.obs.spans import span_records
from repro.obs.timeline import (
    convergence_curve,
    convergence_marker,
    crash_times,
    load_span_records,
    phase_tracks,
    render_timeline_ascii,
    render_timeline_svg,
    runs_in,
    select_run,
    suspicion_tracks,
)


def span(kind, start, end, pid, **kw):
    base = {"kind": kind, "start": start, "end": end, "pid": pid,
            "target": None, "detector": None, "wrongful": None,
            "instance": None, "phase": None, "truncated": False}
    base.update(kw)
    return base


def run_a_records():
    spans = [
        span("suspicion", 2.0, 6.0, "p0", target="p1", detector="hb",
             wrongful=True),
        span("suspicion", 10.0, 40.0, "p0", target="p1", detector="hb",
             wrongful=False),
        span("phase", 1.0, 3.0, "p0", instance="I", phase="hungry"),
        span("phase", 3.0, 5.0, "p0", instance="I", phase="eating"),
        span("phase", 5.0, 9.0, "p0", instance="I", phase="thinking"),
        span("crash", 10.0, 10.0, "p1"),
        span("convergence", 6.0, 6.0, "*"),
    ]
    return span_records("A", 1, 40.0, spans)


def run_b_records(converged=True):
    spans = [span("suspicion", 1.0, 20.0, "p2", target="p0", detector="hb",
                  wrongful=True)]
    if converged:
        spans.append(span("convergence", 20.0, 20.0, "*"))
    return span_records("B", 2, 40.0, spans)


def test_load_skips_other_schemas(tmp_path):
    path = tmp_path / "mixed.jsonl"
    write_jsonl(path, run_a_records() + [{"schema": "repro.run.v1"}])
    records = load_span_records([path])
    assert len(records) == len(run_a_records())
    assert runs_in(records) == [("A", 1)]


def test_select_run_defaults_to_first_and_honors_seed():
    records = run_a_records() + run_b_records()
    assert select_run(records) == ("A", 1)
    assert select_run(records, seed=2) == ("B", 2)


def test_select_run_errors():
    with pytest.raises(ConfigurationError, match="no repro.span.v1"):
        select_run([])
    with pytest.raises(ConfigurationError, match="available seeds: \\[1, 2\\]"):
        select_run(run_a_records() + run_b_records(), seed=9)


def test_suspicion_tracks_styled_by_wrongfulness():
    spans = [r["span"] for r in run_a_records()]
    tracks = suspicion_tracks(spans)
    assert tracks == {"p0→p1": [(2.0, 6.0, "wrongful"),
                                (10.0, 40.0, "justified")]}


def test_phase_tracks_omit_thinking():
    spans = [r["span"] for r in run_a_records()]
    tracks = phase_tracks(spans)
    assert tracks == {"p0 dining": [(1.0, 3.0, "hungry"),
                                    (3.0, 5.0, "eating")]}


def test_crash_and_convergence_extraction():
    spans = [r["span"] for r in run_a_records()]
    assert crash_times(spans) == {"p1": 10.0}
    assert convergence_marker(spans) == 6.0


def test_convergence_curve_counts_unconverged_in_denominator():
    records = run_a_records() + run_b_records(converged=False)
    points, converged, total = convergence_curve(records)
    assert (converged, total) == (1, 2)
    assert points == [(6.0, 0.5)]   # plateaus below 1.0


def test_ascii_render_contents():
    out = render_timeline_ascii(run_a_records() + run_b_records(), width=40)
    assert "timeline: A seed 1" in out
    assert "p0→p1" in out and "p0 dining" in out
    assert "legend:" in out
    assert "crashes: p1@10" in out
    assert "converged at 6" in out
    assert "CDF |" in out


def test_ascii_render_never_converged():
    out = render_timeline_ascii(run_b_records(converged=False))
    assert "converged at — (never)" in out
    assert "(0/1 runs)" in out


def test_svg_render_deterministic_and_styled():
    records = run_a_records() + run_b_records()
    one = render_timeline_svg(records)
    two = render_timeline_svg([dict(r) for r in records])
    assert one == two
    assert "#c0392b" in one        # wrongful fill
    assert "convergence CDF (2/2)" in one
    assert "polyline" in one


def test_ascii_svg_roundtrip_through_files(tmp_path):
    """File → load → render equals in-memory render (the CLI path)."""
    path = tmp_path / "spans.jsonl"
    records = run_a_records() + run_b_records()
    write_jsonl(path, records)
    loaded = load_span_records([path])
    assert render_timeline_ascii(loaded) == render_timeline_ascii(records)
    assert render_timeline_svg(loaded) == render_timeline_svg(records)


def test_empty_window_rejected():
    records = span_records("Z", 0, 0.0,
                           [span("convergence", 0.0, 0.0, "*")])
    with pytest.raises(ConfigurationError, match="empty time window"):
        render_timeline_ascii(records)
