"""Convergence-probe semantics: driven with synthetic trace records, then
cross-checked against the trace-replay property checkers on a real run."""

import pytest

from repro.obs.probes import RunProbes
from repro.obs.registry import MetricsRegistry
from repro.oracles.properties import false_positive_count
from repro.runtime.builder import execute
from repro.runtime.spec import RunSpec
from repro.sim.trace import TraceRecord


def rec(t, kind, pid, **data):
    return TraceRecord(time=t, kind=kind, pid=pid, data=data)


def suspect(t, owner, target, suspected, initial=False):
    return rec(t, "suspect", owner, target=target, suspected=suspected,
               detector="boxfd", initial=initial)


@pytest.fixture
def probes():
    return RunProbes(MetricsRegistry())


class TestOracleProbes:
    def test_wrongful_onset_and_convergence(self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        assert not probes.converged
        probes.on_record(suspect(40.0, "p0", "p1", False))
        assert probes.converged
        assert probes.convergence_time() == 40.0
        probes.finalize(100.0)
        snap = probes.registry.snapshot()
        assert snap.counter_value("oracle.wrongful_suspicions") == 1
        assert snap.gauge_value("oracle.converged_at") == 40.0
        assert snap.gauge_value("oracle.last_wrongful_onset") == 10.0
        assert snap.gauge_value('oracle.stabilized_at{process="p0"}') == 40.0

    def test_initial_suspicion_counts_as_wrongful_but_not_churn(self, probes):
        probes.on_record(suspect(0.0, "p0", "p1", True, initial=True))
        probes.finalize(50.0)
        snap = probes.registry.snapshot()
        assert snap.counter_value("oracle.wrongful_suspicions") == 1
        assert snap.counter_value("oracle.suspicion_churn") == 0

    def test_suspecting_a_crashed_target_is_rightful(self, probes):
        probes.on_record(rec(5.0, "crash", "p1"))
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.finalize(50.0)
        snap = probes.registry.snapshot()
        assert snap.counter_value("oracle.wrongful_suspicions") == 0
        # Never wrong => converged at 0.
        assert probes.convergence_time() == 0.0
        assert snap.gauge_value("oracle.converged_at") == 0.0

    def test_target_crash_closes_open_wrongful_interval(self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.on_record(rec(30.0, "crash", "p1"))
        assert probes.converged
        assert probes.convergence_time() == 30.0

    def test_owner_crash_closes_its_wrongful_intervals(self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.on_record(rec(25.0, "crash", "p0"))
        assert probes.converged

    def test_unconverged_run_reports_open_gauge_and_no_converged_at(
            self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.finalize(100.0)
        snap = probes.registry.snapshot()
        assert probes.convergence_time() is None
        assert snap.gauge_value("oracle.wrongful_open") == 1
        assert snap.gauge_value("oracle.converged_at") is None

    def test_convergence_is_last_interval_end_across_owners(self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.on_record(suspect(20.0, "p0", "p1", False))
        probes.on_record(suspect(30.0, "p1", "p0", True))
        probes.on_record(suspect(75.0, "p1", "p0", False))
        probes.finalize(100.0)
        snap = probes.registry.snapshot()
        assert snap.gauge_value("oracle.converged_at") == 75.0
        assert snap.gauge_value('oracle.stabilized_at{process="p0"}') == 20.0
        assert snap.gauge_value('oracle.stabilized_at{process="p1"}') == 75.0

    def test_churn_counts_every_noninitial_transition(self, probes):
        probes.on_record(suspect(0.0, "p0", "p1", True, initial=True))
        probes.on_record(suspect(10.0, "p0", "p1", False))
        probes.on_record(suspect(20.0, "p0", "p1", True))
        probes.on_record(suspect(30.0, "p0", "p1", False))
        snap = probes.registry.snapshot()
        assert snap.counter_value("oracle.suspicion_churn") == 3


class TestDiningProbes:
    def test_hungry_to_eating_latency(self, probes):
        probes.on_record(rec(10.0, "state", "p0", instance="I",
                             state="hungry"))
        probes.on_record(rec(14.0, "state", "p0", instance="I",
                             state="eating"))
        snap = probes.registry.snapshot()
        h = snap.histogram("dining.hungry_to_eating")
        assert h.count == 1
        assert h.sum == pytest.approx(4.0)
        assert snap.counter_value("dining.sessions") == 1
        assert snap.counter_value("dining.hungry_onsets") == 1

    def test_pending_hunger_reported_on_finalize(self, probes):
        probes.on_record(rec(10.0, "state", "p0", instance="I",
                             state="hungry"))
        probes.finalize(99.0)
        snap = probes.registry.snapshot()
        assert snap.gauge_value("dining.hungry_pending") == 1
        assert snap.histogram("dining.hungry_to_eating").count == 0
        assert snap.gauge_value("run.end_time") == 99.0


class TestCoreProbes:
    def test_ping_ack_round_trip(self, probes):
        probes.on_record(rec(10.0, "ping", "p0", component="s0"))
        probes.on_record(rec(13.5, "ack", "p0", component="s0"))
        snap = probes.registry.snapshot()
        h = snap.histogram("core.ping_rtt")
        assert h.count == 1
        assert h.sum == pytest.approx(3.5)
        assert snap.counter_value("core.pings") == 1
        assert snap.counter_value("core.acks") == 1

    def test_unmatched_ping_left_outstanding(self, probes):
        probes.on_record(rec(10.0, "ping", "p0", component="s0"))
        probes.finalize(50.0)
        snap = probes.registry.snapshot()
        assert snap.histogram("core.ping_rtt").count == 0
        assert snap.gauge_value("core.pings_outstanding") == 1


class TestFinalize:
    def test_idempotent(self, probes):
        probes.on_record(suspect(10.0, "p0", "p1", True))
        probes.on_record(suspect(20.0, "p0", "p1", False))
        probes.finalize(50.0)
        probes.finalize(60.0)
        assert probes.registry.snapshot().gauge_value("run.end_time") == 50.0


class TestAgainstTraceCheckers:
    """The streaming probes must agree with the trace-replay checkers."""

    def test_wrongful_count_matches_false_positive_count(self):
        spec = RunSpec(name="xcheck", graph="ring:3", seed=11,
                       max_time=700.0, crashes={"p2": 250.0})
        result = execute(spec)
        trace = result.trace
        from repro.sim.faults import CrashSchedule

        schedule = CrashSchedule(dict(spec.crashes))
        pids = ["p0", "p1", "p2"]
        expected = sum(
            false_positive_count(trace, owner, target, schedule,
                                 detector="boxfd")
            for owner in pids for target in pids if owner != target
        )
        assert result.wrongful_suspicions == expected
        # Convergence time must not precede the last wrongful onset.
        if result.convergence_time is not None:
            last_onset = result.obs.gauge_value("oracle.last_wrongful_onset")
            assert result.convergence_time >= last_onset

    def test_obs_off_yields_no_snapshot(self):
        result = execute(RunSpec(name="noobs", graph="ring:3", seed=3,
                                 max_time=300.0, obs=False))
        assert result.obs is None
        assert result.convergence_time is None
        assert result.wrongful_suspicions is None
        assert result.summary()["convergence_time"] is None


class TestLabeledOracleProbes:
    """Per-detector-label copies of the oracle-quality series — what the
    lattice reads to attribute mistakes to the layer that made them."""

    def lab_suspect(self, t, owner, target, suspected, label,
                    initial=False):
        return rec(t, "suspect", owner, target=target, suspected=suspected,
                   detector=label, initial=initial)

    def test_labels_split_the_series(self, probes):
        probes.on_record(self.lab_suspect(10.0, "p0", "p1", True, "omega"))
        probes.on_record(self.lab_suspect(12.0, "p0", "p1", True,
                                          "omega.sub"))
        probes.on_record(self.lab_suspect(30.0, "p0", "p1", False,
                                          "omega.sub"))
        probes.finalize(100.0)
        snap = probes.registry.snapshot()
        # Unlabeled aggregates see both streams...
        assert snap.counter_value("oracle.wrongful_suspicions") == 2
        # ...while the labeled copies keep them apart.
        assert snap.counter_value(
            'oracle.wrongful_suspicions{detector="omega"}') == 1
        assert snap.counter_value(
            'oracle.wrongful_suspicions{detector="omega.sub"}') == 1

    def test_per_label_convergence(self, probes):
        # omega.sub converges at 30; omega never does: only the former
        # gets a labeled converged_at gauge, and omega's open count is
        # visible per label.
        probes.on_record(self.lab_suspect(10.0, "p0", "p1", True, "omega"))
        probes.on_record(self.lab_suspect(12.0, "p0", "p1", True,
                                          "omega.sub"))
        probes.on_record(self.lab_suspect(30.0, "p0", "p1", False,
                                          "omega.sub"))
        probes.finalize(100.0)
        snap = probes.registry.snapshot()
        assert snap.gauge_value(
            'oracle.converged_at{detector="omega.sub"}') == 30.0
        assert snap.gauge_value(
            'oracle.wrongful_open{detector="omega.sub"}') == 0
        assert snap.gauge_value(
            'oracle.wrongful_open{detector="omega"}') == 1
        assert snap.gauge_value(
            'oracle.converged_at{detector="omega"}') is None

    def test_detector_stats_on_a_real_omega_run(self):
        result = execute(RunSpec(graph="ring:3", seed=5, max_time=400.0,
                                 detector="omega"))
        stats = result.detector_stats("omega.sub")
        assert stats["detector"] == "omega.sub"
        assert stats["wrongful_open"] == 0
        assert stats["converged_at"] is not None
