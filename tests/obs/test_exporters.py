"""Exporter formats: JSONL records and Prometheus textfiles."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.exporters import (
    EXPERIMENT_SCHEMA,
    RUN_SCHEMA,
    dumps_record,
    experiment_record,
    prometheus_text,
    read_jsonl,
    record_snapshot,
    run_record,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.runtime.builder import execute
from repro.runtime.spec import RunSpec


@pytest.fixture(scope="module")
def result():
    return execute(RunSpec(name="exp", graph="ring:3", seed=2,
                           max_time=400.0))


class TestJsonl:
    def test_run_record_shape(self, result):
        record = run_record(result, verdict={"ok": True})
        assert record["schema"] == RUN_SCHEMA
        assert record["summary"]["seed"] == 2
        assert record["metrics"] is not None
        assert record["verdict"] == {"ok": True}

    def test_run_record_without_obs(self, result):
        stripped = execute(RunSpec(name="exp", graph="ring:3", seed=2,
                                   max_time=200.0, obs=False))
        assert run_record(stripped)["metrics"] is None
        assert record_snapshot(run_record(stripped)) is None

    def test_experiment_record(self):
        record = experiment_record("e1", True, 0.12345)
        assert record["schema"] == EXPERIMENT_SCHEMA
        assert record == json.loads(dumps_record(record))

    def test_dumps_is_deterministic(self, result):
        a = dumps_record(run_record(result))
        b = dumps_record(json.loads(a))
        assert a == b
        assert "\n" not in a

    def test_write_read_round_trip(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        records = [run_record(result), experiment_record("e1", True, 1.0)]
        assert write_jsonl(path, records) == 2
        back = read_jsonl(path)
        assert len(back) == 2
        snap = record_snapshot(back[0])
        assert snap == result.obs

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_jsonl(path)


class TestPrometheus:
    def test_textfile_format(self):
        reg = MetricsRegistry()
        reg.counter("net.messages_sent").inc(3)
        reg.counter("net.messages_sent", kind="ping").inc(2)
        reg.gauge("oracle.converged_at").set(42.5)
        h = reg.histogram("dining.hungry_to_eating", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_net_messages_sent counter" in lines
        assert "repro_net_messages_sent 3" in lines
        assert 'repro_net_messages_sent{kind="ping"} 2' in lines
        assert "repro_oracle_converged_at 42.5" in lines
        # Cumulative bucket counts with an explicit +Inf bucket.
        assert 'repro_dining_hungry_to_eating_bucket{le="1"} 1' in lines
        assert 'repro_dining_hungry_to_eating_bucket{le="2"} 1' in lines
        assert 'repro_dining_hungry_to_eating_bucket{le="+Inf"} 2' in lines
        assert "repro_dining_hungry_to_eating_count 2" in lines
        assert text.endswith("\n")

    def test_type_header_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="a").inc()
        reg.counter("c", kind="b").inc()
        text = prometheus_text(reg.snapshot())
        assert text.count("# TYPE repro_c counter") == 1

    def test_write_prometheus(self, result, tmp_path):
        path = tmp_path / "run.prom"
        write_prometheus(path, result.obs)
        content = path.read_text()
        assert "repro_net_messages_sent" in content
        assert "repro_oracle_converged_at" in content


class TestLabelRoundTrip:
    """Label values must survive render → parse, escaping included."""

    AWKWARD = ["rgg:200:0.12:7", 'quo"ted', "back\\slash", "new\nline",
               'both\\"', ""]

    def test_graph_spec_label_round_trips(self):
        from repro.obs.exporters import parse_prometheus_labels

        reg = MetricsRegistry()
        reg.counter("campaign.runs", graph="rgg:200:0.12:7").inc()
        (name, _metric), = list(reg)
        base, _, labels = name.partition("{")
        assert parse_prometheus_labels("{" + labels) == {
            "graph": "rgg:200:0.12:7"}

    @pytest.mark.parametrize("value", AWKWARD)
    def test_awkward_values_round_trip(self, value):
        from repro.obs.exporters import parse_prometheus_labels
        from repro.obs.registry import escape_label_value

        rendered = '{v="' + escape_label_value(value) + '"}'
        assert parse_prometheus_labels(rendered) == {"v": value}

    def test_rendered_textfile_lines_parse_back(self):
        from repro.obs.exporters import _LABELLED_RE, parse_prometheus_labels

        reg = MetricsRegistry()
        for i, value in enumerate(self.AWKWARD):
            reg.counter(f"m{i}.count", spec=value).inc()
        text = prometheus_text(reg.snapshot())
        seen = []
        for line in text.splitlines():
            if line.startswith("#") or "{" not in line:
                continue
            labels = "{" + line.split("{", 1)[1].rsplit("}", 1)[0] + "}"
            seen.append(parse_prometheus_labels(labels)["spec"])
        assert sorted(seen, key=str) == sorted(self.AWKWARD, key=str)

    def test_multiple_labels_sorted_and_parsed(self):
        from repro.obs.exporters import parse_prometheus_labels
        from repro.obs.registry import _label_suffix

        suffix = _label_suffix({"b": "2", "a": "x:y"})
        assert suffix.index('a="') < suffix.index('b="')
        assert parse_prometheus_labels(suffix) == {"a": "x:y", "b": "2"}

    def test_malformed_blocks_rejected(self):
        from repro.obs.exporters import parse_prometheus_labels

        for bad in ['{v="unterminated}', '{v=unquoted}', '{v="a" v2="b"}',
                    '{9bad="x"}', '{v="a"', '{,v="lead"}']:
            with pytest.raises(ConfigurationError):
                parse_prometheus_labels(bad)

    def test_invalid_label_key_rejected_at_registration(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="label name"):
            reg.counter("m.count", **{"bad-key": "v"})
