"""Tests for the span probe (repro.obs.spans)."""

from repro.obs.spans import SPAN_SCHEMA, SpanProbe, span_records
from repro.sim.trace import TraceRecord


def rec(time, kind, pid, **data):
    return TraceRecord(time=time, kind=kind, pid=pid, data=data)


def suspect(time, pid, target, suspected, detector="hb"):
    return rec(time, "suspect", pid, target=target, suspected=suspected,
               detector=detector)


def probe(*records):
    p = SpanProbe()
    for r in records:
        p.on_record(r)
    return p


def spans_of(p, end_time=100.0, kind=None):
    out = p.finalize(end_time)
    return [s for s in out if kind is None or s["kind"] == kind]


# -- suspicion intervals -----------------------------------------------------


def test_wrongful_suspicion_interval():
    p = probe(suspect(5.0, "p0", "p1", True),
              suspect(9.0, "p0", "p1", False))
    (s,) = spans_of(p, kind="suspicion")
    assert (s["start"], s["end"]) == (5.0, 9.0)
    assert s["pid"] == "p0" and s["target"] == "p1"
    assert s["wrongful"] is True
    assert s["truncated"] is False


def test_suspicion_of_crashed_target_is_justified():
    p = probe(rec(3.0, "crash", "p1"),
              suspect(5.0, "p0", "p1", True),
              suspect(9.0, "p0", "p1", False))
    susp = spans_of(p, kind="suspicion")
    assert [s["wrongful"] for s in susp] == [False]


def test_target_crash_splits_open_wrongful_span():
    p = probe(suspect(5.0, "p0", "p1", True),
              rec(8.0, "crash", "p1"),
              suspect(12.0, "p0", "p1", False))
    wrongful, justified = spans_of(p, kind="suspicion")
    assert (wrongful["start"], wrongful["end"],
            wrongful["wrongful"]) == (5.0, 8.0, True)
    assert (justified["start"], justified["end"],
            justified["wrongful"]) == (8.0, 12.0, False)


def test_owner_crash_closes_its_suspicions_without_reopen():
    p = probe(suspect(5.0, "p0", "p1", True),
              rec(8.0, "crash", "p0"))
    susp = spans_of(p, kind="suspicion")
    assert len(susp) == 1
    assert susp[0]["end"] == 8.0
    # the crashed owner's interval ended at the crash, nothing reopened
    assert not p._susp_open


def test_duplicate_suspect_records_do_not_restart_span():
    p = probe(suspect(5.0, "p0", "p1", True),
              suspect(6.0, "p0", "p1", True),
              suspect(9.0, "p0", "p1", False))
    (s,) = spans_of(p, kind="suspicion")
    assert s["start"] == 5.0


def test_open_span_truncated_at_horizon():
    p = probe(suspect(5.0, "p0", "p1", True))
    (s,) = spans_of(p, 42.0, kind="suspicion")
    assert s["end"] == 42.0
    assert s["truncated"] is True


# -- convergence -------------------------------------------------------------


def test_convergence_span_at_last_wrongful_close():
    p = probe(suspect(5.0, "p0", "p1", True),
              suspect(9.0, "p0", "p1", False),
              suspect(20.0, "p2", "p1", True),
              suspect(33.0, "p2", "p1", False))
    (conv,) = spans_of(p, kind="convergence")
    assert conv["start"] == conv["end"] == 33.0
    assert conv["pid"] == "*"
    assert p.convergence_time() == 33.0


def test_never_wrong_run_converges_at_zero():
    p = probe()
    (conv,) = spans_of(p, kind="convergence")
    assert conv["start"] == 0.0


def test_unconverged_run_has_no_convergence_span():
    p = probe(suspect(5.0, "p0", "p1", True))
    assert p.convergence_time() is None
    assert spans_of(p, kind="convergence") == []


def test_truncated_wrongful_close_does_not_move_convergence():
    p = probe(suspect(2.0, "p0", "p1", True),
              suspect(4.0, "p0", "p1", False),
              suspect(50.0, "p2", "p3", True))
    # the open wrongful span is truncated at 100, but convergence (which
    # the run never reached) must not be reported at the horizon
    out = p.finalize(100.0)
    assert [s for s in out if s["kind"] == "convergence"] == []


def test_justified_suspicion_does_not_delay_convergence():
    p = probe(suspect(2.0, "p0", "p1", True),
              suspect(4.0, "p0", "p1", False),
              rec(10.0, "crash", "p2"),
              suspect(11.0, "p0", "p2", True))
    (conv,) = spans_of(p, kind="convergence")
    assert conv["start"] == 4.0


# -- dining phases -----------------------------------------------------------


def test_phase_spans_from_state_records():
    p = probe(rec(1.0, "state", "p0", instance="I", state="hungry"),
              rec(4.0, "state", "p0", instance="I", state="eating"),
              rec(6.0, "state", "p0", instance="I", state="thinking"))
    phases = spans_of(p, 10.0, kind="phase")
    assert [(s["phase"], s["start"], s["end"], s["truncated"])
            for s in phases] == [
        ("hungry", 1.0, 4.0, False),
        ("eating", 4.0, 6.0, False),
        ("thinking", 6.0, 10.0, True),
    ]
    assert all(s["instance"] == "I" for s in phases)


def test_crash_closes_phase_span():
    p = probe(rec(1.0, "state", "p0", instance="I", state="eating"),
              rec(3.0, "crash", "p0"))
    (phase,) = spans_of(p, kind="phase")
    assert (phase["end"], phase["truncated"]) == (3.0, False)
    (crash,) = spans_of(p, kind="crash")
    assert crash["start"] == crash["end"] == 3.0


# -- finalize and export -----------------------------------------------------


def test_finalize_idempotent_and_sorted():
    p = probe(rec(4.0, "state", "p1", instance="I", state="hungry"),
              suspect(2.0, "p0", "p1", True),
              suspect(3.0, "p0", "p1", False))
    one = p.finalize(10.0)
    two = p.finalize(999.0)   # later horizon ignored after finalize
    assert one is two
    starts = [s["start"] for s in one]
    assert starts == sorted(starts)


def test_span_dicts_have_fixed_key_set():
    p = probe(suspect(1.0, "p0", "p1", True))
    keys = {tuple(s) for s in p.finalize(5.0)}
    assert keys == {("kind", "start", "end", "pid", "target", "detector",
                     "wrongful", "instance", "phase", "truncated")}


def test_span_records_shape():
    p = probe(suspect(1.0, "p0", "p1", True), suspect(2.0, "p0", "p1", False))
    records = span_records("runA", 7, 50.0, p.finalize(50.0))
    assert all(r["schema"] == SPAN_SCHEMA for r in records)
    assert all(r["run"] == {"name": "runA", "seed": 7, "end_time": 50.0}
               for r in records)
    assert {r["span"]["kind"] for r in records} == {"suspicion",
                                                    "convergence"}


# -- integration through the runtime -----------------------------------------


def test_execute_with_spans_matches_scalar_metrics():
    from repro.runtime import RunSpec, execute

    spec = RunSpec(name="spans-int", graph="ring:4", seed=7, max_time=400.0,
                   crashes={"p1": 150.0}, spans=True)
    result = execute(spec)
    assert result.spans is not None
    wrongful = [s for s in result.spans
                if s["kind"] == "suspicion" and s["wrongful"]
                and not s["truncated"]]
    assert len(wrongful) == result.wrongful_suspicions
    conv = [s for s in result.spans if s["kind"] == "convergence"]
    if result.convergence_time is not None:
        assert conv and conv[0]["start"] == result.convergence_time
    records = result.span_records()
    assert records and records[0]["run"]["seed"] == 7


def test_execute_without_spans_has_none():
    from repro.runtime import RunSpec, execute

    result = execute(RunSpec(name="no-spans", graph="ring:3", seed=3,
                             max_time=200.0))
    assert result.spans is None
    assert result.span_records() == []


def test_spans_exact_under_counters_sink():
    from repro.runtime import RunSpec, execute

    full = execute(RunSpec(name="s", graph="ring:3", seed=5, max_time=300.0,
                           spans=True))
    counters = execute(RunSpec(name="s", graph="ring:3", seed=5,
                               max_time=300.0, spans=True, trace="counters"))
    assert full.spans == counters.spans
