"""Tests for conflict-graph constructors."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import graphs
from repro.errors import ConfigurationError


def test_pair_graph():
    g = graphs.pair_graph("p", "q")
    assert set(g.nodes) == {"p", "q"} and g.has_edge("p", "q")


def test_ring_structure():
    g = graphs.ring(5)
    assert g.number_of_nodes() == 5 and g.number_of_edges() == 5
    assert all(d == 2 for _, d in g.degree)


def test_ring_rejects_small():
    with pytest.raises(ConfigurationError):
        graphs.ring(2)


def test_clique_structure():
    g = graphs.clique(4)
    assert g.number_of_edges() == 6
    assert sorted(g.nodes) == ["p0", "p1", "p2", "p3"]


def test_star_structure():
    g = graphs.star(4)
    assert g.degree["hub"] == 4
    assert all(g.degree[leaf] == 1 for leaf in g.nodes if leaf != "hub")


def test_path_structure():
    g = graphs.path(4)
    assert g.number_of_edges() == 3
    assert nx.is_connected(g)


def test_grid_structure():
    g = graphs.grid(3, 4)
    assert g.number_of_nodes() == 12
    # Interior/edge/corner degree pattern of a 4-neighbour grid.
    assert g.number_of_edges() == 3 * 3 + 4 * 2  # rows*(cols-1)+cols*(rows-1)


def test_grid_node_attributes():
    g = graphs.grid(2, 2)
    assert g.nodes["n1_0"]["row"] == 1 and g.nodes["n1_0"]["col"] == 0


def test_grid_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        graphs.grid(0, 3)


def test_random_graph_connected():
    rng = np.random.default_rng(1)
    for _ in range(10):
        g = graphs.random_graph(8, 0.1, rng)
        assert nx.is_connected(g)


def test_random_graph_probability_bounds():
    with pytest.raises(ConfigurationError):
        graphs.random_graph(3, 1.5, np.random.default_rng(0))


def test_random_graph_full_probability_is_clique():
    g = graphs.random_graph(5, 1.0, np.random.default_rng(0))
    assert g.number_of_edges() == 10


def test_neighbors_map_sorted_and_stable():
    g = graphs.ring(4)
    nm = graphs.neighbors_map(g)
    assert list(nm) == sorted(g.nodes)
    assert all(ns == sorted(ns) for ns in nm.values())


def test_validate_rejects_empty():
    with pytest.raises(ConfigurationError):
        graphs.validate_conflict_graph(nx.Graph())


def test_validate_rejects_self_loops():
    g = nx.Graph()
    g.add_edge("a", "a")
    with pytest.raises(ConfigurationError):
        graphs.validate_conflict_graph(g)


def test_edge_list_canonical():
    g = nx.Graph()
    g.add_edge("b", "a")
    g.add_edge("c", "a")
    assert graphs.edge_list(g) == [("a", "b"), ("a", "c")]


# -- seeded sparse families (rgg / tree) -------------------------------------


def test_random_geometric_deterministic():
    a = graphs.random_geometric(40, 0.25, seed=5)
    b = graphs.random_geometric(40, 0.25, seed=5)
    assert graphs.edge_list(a) == graphs.edge_list(b)
    assert all(a.nodes[v] == b.nodes[v] for v in a.nodes)


def test_random_geometric_seed_changes_edges():
    a = graphs.random_geometric(40, 0.25, seed=1)
    b = graphs.random_geometric(40, 0.25, seed=2)
    assert graphs.edge_list(a) != graphs.edge_list(b)


def test_random_geometric_edges_respect_radius():
    g = graphs.random_geometric(30, 0.3, seed=3)
    for u, v in g.edges:
        dx = g.nodes[u]["x"] - g.nodes[v]["x"]
        dy = g.nodes[u]["y"] - g.nodes[v]["y"]
        assert dx * dx + dy * dy < 0.3 * 0.3
    assert all(0.0 <= g.nodes[v]["x"] <= 1.0 for v in g.nodes)


def test_random_geometric_rejects_bad_radius():
    with pytest.raises(ConfigurationError):
        graphs.random_geometric(5, 0.0)


def test_cluster_tree_structure():
    g = graphs.cluster_tree(10, arity=3)
    assert nx.is_connected(g)
    assert g.number_of_edges() == 9
    assert g.degree["p0"] == 3                   # root has arity children


def test_cluster_tree_rejects_bad_arity():
    with pytest.raises(ConfigurationError):
        graphs.cluster_tree(5, arity=0)


@given(n=st.integers(1, 40), arity=st.integers(1, 5))
def test_cluster_tree_connected_with_n_minus_1_edges(n, arity):
    g = graphs.cluster_tree(n, arity=arity)
    assert g.number_of_nodes() == n
    assert g.number_of_edges() == n - 1
    assert nx.is_connected(g)
    # No node parents more than `arity` children (+1 edge to its own parent).
    assert all(d <= arity + 1 for _, d in g.degree)


# -- connectivity validation --------------------------------------------------


def test_validate_rejects_disconnected_naming_components():
    g = nx.Graph()
    g.add_edge("a", "b")
    g.add_edge("c", "d")
    with pytest.raises(ConfigurationError) as err:
        graphs.validate_conflict_graph(g)
    msg = str(err.value)
    assert "2 components" in msg
    assert "a" in msg and "c" in msg
    assert "--allow-disconnected" in msg


def test_validate_allow_disconnected_escape_hatch():
    g = nx.Graph()
    g.add_edge("a", "b")
    g.add_edge("c", "d")
    graphs.validate_conflict_graph(g, allow_disconnected=True)  # no raise


def test_validate_accepts_connected():
    graphs.validate_conflict_graph(graphs.ring(4))


@given(n=st.integers(3, 12))
def test_ring_is_2_regular_cycle(n):
    g = graphs.ring(n)
    assert nx.is_connected(g)
    assert all(d == 2 for _, d in g.degree)


@given(n=st.integers(1, 10), p=st.floats(0.0, 1.0))
def test_random_graph_node_count(n, p):
    g = graphs.random_graph(n, p, np.random.default_rng(0))
    assert g.number_of_nodes() == n
