"""Tests for conflict-graph constructors."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import graphs
from repro.errors import ConfigurationError


def test_pair_graph():
    g = graphs.pair_graph("p", "q")
    assert set(g.nodes) == {"p", "q"} and g.has_edge("p", "q")


def test_ring_structure():
    g = graphs.ring(5)
    assert g.number_of_nodes() == 5 and g.number_of_edges() == 5
    assert all(d == 2 for _, d in g.degree)


def test_ring_rejects_small():
    with pytest.raises(ConfigurationError):
        graphs.ring(2)


def test_clique_structure():
    g = graphs.clique(4)
    assert g.number_of_edges() == 6
    assert sorted(g.nodes) == ["p0", "p1", "p2", "p3"]


def test_star_structure():
    g = graphs.star(4)
    assert g.degree["hub"] == 4
    assert all(g.degree[leaf] == 1 for leaf in g.nodes if leaf != "hub")


def test_path_structure():
    g = graphs.path(4)
    assert g.number_of_edges() == 3
    assert nx.is_connected(g)


def test_grid_structure():
    g = graphs.grid(3, 4)
    assert g.number_of_nodes() == 12
    # Interior/edge/corner degree pattern of a 4-neighbour grid.
    assert g.number_of_edges() == 3 * 3 + 4 * 2  # rows*(cols-1)+cols*(rows-1)


def test_grid_node_attributes():
    g = graphs.grid(2, 2)
    assert g.nodes["n1_0"]["row"] == 1 and g.nodes["n1_0"]["col"] == 0


def test_grid_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        graphs.grid(0, 3)


def test_random_graph_connected():
    rng = np.random.default_rng(1)
    for _ in range(10):
        g = graphs.random_graph(8, 0.1, rng)
        assert nx.is_connected(g)


def test_random_graph_probability_bounds():
    with pytest.raises(ConfigurationError):
        graphs.random_graph(3, 1.5, np.random.default_rng(0))


def test_random_graph_full_probability_is_clique():
    g = graphs.random_graph(5, 1.0, np.random.default_rng(0))
    assert g.number_of_edges() == 10


def test_neighbors_map_sorted_and_stable():
    g = graphs.ring(4)
    nm = graphs.neighbors_map(g)
    assert list(nm) == sorted(g.nodes)
    assert all(ns == sorted(ns) for ns in nm.values())


def test_validate_rejects_empty():
    with pytest.raises(ConfigurationError):
        graphs.validate_conflict_graph(nx.Graph())


def test_validate_rejects_self_loops():
    g = nx.Graph()
    g.add_edge("a", "a")
    with pytest.raises(ConfigurationError):
        graphs.validate_conflict_graph(g)


def test_edge_list_canonical():
    g = nx.Graph()
    g.add_edge("b", "a")
    g.add_edge("c", "a")
    assert graphs.edge_list(g) == [("a", "b"), ("a", "c")]


@given(n=st.integers(3, 12))
def test_ring_is_2_regular_cycle(n):
    g = graphs.ring(n)
    assert nx.is_connected(g)
    assert all(d == 2 for _, d in g.degree)


@given(n=st.integers(1, 10), p=st.floats(0.0, 1.0))
def test_random_graph_node_count(n, p):
    g = graphs.random_graph(n, p, np.random.default_rng(0))
    assert g.number_of_nodes() == n
