"""Benchmark E13 — Ablation: the Section 8 fairness wrapper, k sweep.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e13_fair_wrapper


def test_e13_fair_wrapper(run_experiment):
    run_experiment(e13_fair_wrapper)
