"""Microbenchmarks of the simulation substrate itself.

Unlike the experiment benchmarks (single timed simulation runs), these are
true repeated-round microbenchmarks of the library's hot paths: engine
event throughput, process action dispatch, message routing, and the
exclusion checker.  They guard against performance regressions in the
substrate every experiment sits on.
"""

from repro.dining.spec import check_exclusion
from repro.graphs import ring
from repro.sim import Engine, FixedDelays, SimConfig
from repro.sim.component import Component, action, receive
from repro.sim.faults import CrashSchedule


class Chatter(Component):
    def __init__(self, peer):
        super().__init__("chat")
        self.peer = peer

    @action(guard=lambda self: True)
    def talk(self):
        self.send(self.peer, "chat", "gossip")

    @receive("gossip")
    def on_gossip(self, msg):
        pass


def build_chatty_engine(n=6, seed=0):
    eng = Engine(SimConfig(seed=seed, max_time=1e9),
                 delay_model=FixedDelays(1.0))
    pids = [f"p{i}" for i in range(n)]
    for i, pid in enumerate(pids):
        eng.add_process(pid)
    for i, pid in enumerate(pids):
        eng.processes[pid].add_component(Chatter(pids[(i + 1) % n]))
    return eng


def test_engine_event_throughput(benchmark):
    def run_chunk():
        eng = build_chatty_engine()
        eng.run(until=200.0)
        return eng.events_processed

    events = benchmark(run_chunk)
    assert events > 1000


def test_process_step_dispatch(benchmark):
    eng = build_chatty_engine(n=2)
    proc = eng.processes["p0"]
    benchmark(proc.step)


def test_dining_simulation_rate(benchmark):
    """End-to-end cost of one mid-sized dining simulation."""
    from tests.dining.helpers import run_dining

    def run():
        eng, *_ = run_dining(ring(5), seed=1, max_time=400.0)
        return eng.events_processed

    events = benchmark(run)
    assert events > 1000


def test_exclusion_checker_speed(benchmark):
    from tests.dining.helpers import INSTANCE, run_dining

    g = ring(5)
    eng, sched, _, _ = run_dining(g, seed=2, max_time=800.0)
    result = benchmark(
        lambda: check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
    )
    assert result.count >= 0
