"""Microbenchmarks of the simulation substrate itself.

Unlike the experiment benchmarks (single timed simulation runs), these are
true repeated-round microbenchmarks of the library's hot paths: engine
event throughput, process action dispatch, message routing, and the
exclusion checker.  They guard against performance regressions in the
substrate every experiment sits on.

Each run also archives ``benchmarks/results/BENCH_obs.json``: the
measured ops/sec per benchmark plus the key metric snapshot of a pinned
reference run, so the bench trajectory is machine-readable and future
perf work has a baseline to diff against.
"""

import json
import pathlib
import time

from repro.dining.spec import check_exclusion
from repro.graphs import ring
from repro.sim import Engine, FixedDelays, SimConfig
from repro.sim.component import Component, action, receive
from repro.sim.faults import CrashSchedule

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ops/sec per benchmark, accumulated as tests run and archived at the end.
_BENCH_RECORDS: list[dict] = []


def _record_ops(name: str, benchmark) -> None:
    """Harvest mean-time ops/sec from a finished ``benchmark`` fixture."""
    mean = None
    try:
        mean = benchmark.stats.stats.mean
    except AttributeError:
        try:
            mean = benchmark.stats["mean"]
        except (KeyError, TypeError):
            mean = None
    _BENCH_RECORDS.append({
        "benchmark": name,
        "mean_seconds": mean,
        "ops_per_sec": (1.0 / mean) if mean else None,
    })


class Chatter(Component):
    def __init__(self, peer):
        super().__init__("chat")
        self.peer = peer

    @action(guard=lambda self: True)
    def talk(self):
        self.send(self.peer, "chat", "gossip")

    @receive("gossip")
    def on_gossip(self, msg):
        pass


def build_chatty_engine(n=6, seed=0):
    eng = Engine(SimConfig(seed=seed, max_time=1e9),
                 delay_model=FixedDelays(1.0))
    pids = [f"p{i}" for i in range(n)]
    for i, pid in enumerate(pids):
        eng.add_process(pid)
    for i, pid in enumerate(pids):
        eng.processes[pid].add_component(Chatter(pids[(i + 1) % n]))
    return eng


def test_engine_event_throughput(benchmark):
    def run_chunk():
        eng = build_chatty_engine()
        eng.run(until=200.0)
        return eng.events_processed

    events = benchmark(run_chunk)
    _record_ops("engine_event_throughput", benchmark)
    assert events > 1000


def test_process_step_dispatch(benchmark):
    eng = build_chatty_engine(n=2)
    proc = eng.processes["p0"]
    benchmark(proc.step)
    _record_ops("process_step_dispatch", benchmark)


def test_dining_simulation_rate(benchmark):
    """End-to-end cost of one mid-sized dining simulation."""
    from tests.dining.helpers import run_dining

    def run():
        eng, *_ = run_dining(ring(5), seed=1, max_time=400.0)
        return eng.events_processed

    events = benchmark(run)
    _record_ops("dining_simulation_rate", benchmark)
    assert events > 1000


def test_exclusion_checker_speed(benchmark):
    from tests.dining.helpers import INSTANCE, run_dining

    g = ring(5)
    eng, sched, _, _ = run_dining(g, seed=2, max_time=800.0)
    result = benchmark(
        lambda: check_exclusion(eng.trace, g, INSTANCE, sched, eng.now)
    )
    _record_ops("exclusion_checker_speed", benchmark)
    assert result.count >= 0


def test_emit_bench_obs_json():
    """Archive the machine-readable bench record (runs last: file order).

    Alongside the ops/sec harvested above, a pinned reference run
    (deterministic seed) contributes its key metric snapshot, so the
    artifact ties raw substrate speed to detector-quality numbers.

    A ``workloads`` block carries the observability-overhead trio
    (``dining_full`` / ``dining_obs_off`` / ``dining_spans``) in the
    ``BENCH_engine.json`` baseline shape, so the committed file doubles
    as the baseline for ``repro bench --check --baseline
    benchmarks/results/BENCH_obs.json`` (the CI span-overhead gate).
    """
    from repro.perf.bench import WORKLOADS
    from repro.runtime.builder import execute
    from repro.runtime.spec import RunSpec

    spec = RunSpec(name="bench-ref", graph="ring:3", seed=42,
                   max_time=500.0, crashes={"p1": 180.0})
    t0 = time.perf_counter()
    result = execute(spec)
    wall = time.perf_counter() - t0
    obs = result.obs

    # Interleaved best-of-N timing: sequential per-workload budgets are
    # dominated by host noise at these run sizes (~12ms), while the
    # round-robin minimum isolates the real per-workload floor, so the
    # committed overhead percentages are stable run to run.
    names = ("dining_full", "dining_obs_off", "dining_spans")
    reps = 12
    events = {n: WORKLOADS[n](0)() for n in names}  # warmup + event count
    best = {n: float("inf") for n in names}
    for _ in range(reps):
        for n in names:
            runner = WORKLOADS[n](0)
            r0 = time.perf_counter()
            runner()
            best[n] = min(best[n], time.perf_counter() - r0)
    eps = {n: events[n] / best[n] for n in names}
    payload = {
        "schema": "repro.bench.v1",
        "benchmarks": _BENCH_RECORDS,
        "workloads": [{"name": n, "runs": reps, "events": events[n],
                       "wall_seconds": round(best[n], 4),
                       "events_per_sec": round(eps[n], 1)} for n in names],
        "obs_overhead": {
            "obs_pct": round(100.0 * (1.0 - eps["dining_full"]
                                      / eps["dining_obs_off"]), 2),
            "spans_pct": round(100.0 * (1.0 - eps["dining_spans"]
                                        / eps["dining_full"]), 2),
        },
        "reference_run": {
            "spec": {"graph": spec.graph, "seed": spec.seed,
                     "max_time": spec.max_time,
                     "crashes": dict(spec.crashes)},
            "wall_seconds": round(wall, 4),
            "events_per_sec": (round(result.metrics.events_processed / wall)
                               if wall > 0 else None),
            "ok": result.ok,
            "convergence_time": result.convergence_time,
            "wrongful_suspicions": result.wrongful_suspicions,
            "suspicion_churn": result.suspicion_churn,
            "messages_sent": result.metrics.messages_sent,
            "hungry_to_eating_p95": obs.histogram(
                "dining.hungry_to_eating").percentile(95.0),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    assert json.loads(out.read_text())["reference_run"]["ok"] is True
