"""Benchmark E14 — Robustness: reduction under targeted adversaries.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e14_adversary


def test_e14_adversary(run_experiment):
    run_experiment(e14_adversary)
