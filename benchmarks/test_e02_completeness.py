"""Benchmark E2 — Theorem 1: strong completeness over both black boxes, crash-time sweep.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e02_completeness


def test_e2_completeness(run_experiment):
    run_experiment(e02_completeness)
