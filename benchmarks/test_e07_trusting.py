"""Benchmark E7 — Section 9: reduction over a perpetual-WX box extracts T.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e07_trusting


def test_e7_trusting(run_experiment):
    run_experiment(e07_trusting)
