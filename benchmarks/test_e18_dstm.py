"""Benchmark E18 — shared-memory DSTM contention management.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e18_dstm


def test_e18_dstm(run_experiment):
    run_experiment(e18_dstm)
