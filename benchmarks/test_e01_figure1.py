"""Benchmark E1 — Figure 1: session structure of the reduction pair in the exclusive suffix.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e01_figure1


def test_e1_figure1(run_experiment):
    run_experiment(e01_figure1)
