"""Benchmark E10 — Sections 2-3: contention manager boosts obstruction-free STM.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e10_stm


def test_e10_stm(run_experiment):
    run_experiment(e10_stm)
