"""Benchmark E11 — Native heartbeat eventually-perfect detector under partial synchrony.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e11_native_oracle


def test_e11_native_oracle(run_experiment):
    run_experiment(e11_native_oracle)
