"""Benchmark E4 — Section 3: the [8] construction fails on a legal box; ours survives.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e04_flawed_cm


def test_e4_flawed_cm(run_experiment):
    run_experiment(e04_flawed_cm)
