"""Benchmark E9 — Section 2: WSN duty-cycle scheduling, rotation vs always-on.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e09_wsn


def test_e9_wsn(run_experiment):
    run_experiment(e09_wsn)
