"""Benchmarks of the runtime layer itself: the canonical builder, trace
sinks, and parallel campaign execution.

These replace the ad-hoc engine-wiring fixtures campaign benchmarks used
to carry: everything here goes through ``RunSpec → execute``, the same
path scenarios, sweeps, and chaos campaigns use.
"""

from repro.runtime import ParallelExecutor, RunSpec, execute, instantiate

SPEC = RunSpec(graph="ring:4", seed=3, max_time=400.0)


def test_instantiate_cost(benchmark):
    """Pure wiring cost: engine + oracle substrate + dining + clients."""
    built = benchmark(lambda: instantiate(SPEC))
    assert sorted(built.diners) == ["p0", "p1", "p2", "p3"]


def test_execute_full_trace(benchmark):
    result = benchmark.pedantic(lambda: execute(SPEC), rounds=3, iterations=1)
    assert result.ok


def test_execute_counters_sink(benchmark):
    """Metrics-only run: no trace rows retained, no verdict battery."""
    spec = RunSpec(graph="ring:4", seed=3, max_time=400.0, trace="counters")
    result = benchmark.pedantic(lambda: execute(spec), rounds=3, iterations=1)
    assert not result.checked and result.metrics.messages_sent > 0


def test_campaign_serial(benchmark):
    specs = [RunSpec(graph="ring:3", seed=s, max_time=300.0)
             for s in range(4)]
    results = benchmark.pedantic(
        lambda: ParallelExecutor(workers=1).run_specs(specs),
        rounds=1, iterations=1)
    assert all(r.ok for r in results)


def test_campaign_parallel_4_workers(benchmark):
    specs = [RunSpec(graph="ring:3", seed=s, max_time=300.0)
             for s in range(4)]
    results = benchmark.pedantic(
        lambda: ParallelExecutor(workers=4).run_specs(specs),
        rounds=1, iterations=1)
    assert all(r.ok for r in results)
