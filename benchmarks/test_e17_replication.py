"""Benchmark E17 — end-to-end replicated KV over the extracted oracle.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e17_replication


def test_e17_replication(run_experiment):
    run_experiment(e17_replication)
