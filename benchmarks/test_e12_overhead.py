"""Benchmark E12 — Reduction overhead: cost per extracted-detector sample vs n.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e12_overhead


def test_e12_overhead(run_experiment):
    run_experiment(e12_overhead)
