"""Benchmark E16 — failure locality: crash impact radius.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e16_locality


def test_e16_locality(run_experiment):
    run_experiment(e16_locality)
