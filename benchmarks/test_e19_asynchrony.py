"""Benchmark E19 — the asynchronous impossibility symptom.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e19_asynchrony


def test_e19_asynchrony(run_experiment):
    run_experiment(e19_asynchrony)
