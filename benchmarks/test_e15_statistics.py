"""Benchmark E15 — Statistics: extraction convergence across seed sweeps.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e15_statistics


def test_e15_statistics(run_experiment):
    run_experiment(e15_statistics)
