"""Benchmark E3 — Theorem 2: eventual strong accuracy over both black boxes, GST sweep.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e03_accuracy


def test_e3_accuracy(run_experiment):
    run_experiment(e03_accuracy)
