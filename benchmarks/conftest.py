"""Benchmark harness plumbing.

Every benchmark wraps one experiment from :mod:`repro.experiments` in
``benchmark.pedantic`` (a single timed round — these are simulation
experiments, not microbenchmarks), asserts the paper's qualitative claim
(``result.ok``), prints the paper-style table, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md stays reproducible.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Time an experiment module's run(), archive and assert its verdict."""

    def runner(module, **params):
        result = benchmark.pedantic(
            lambda: module.run(**params), rounds=1, iterations=1
        )
        rendered = result.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{result.exp_id.lower()}.txt"
        out.write_text(rendered + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{rendered}\n")
        assert result.ok, rendered
        return result

    return runner
