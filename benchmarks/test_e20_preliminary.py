"""Benchmark E20 — Section 5.1: the single-instance sketch fails.

Extension experiment (see DESIGN.md §5 and EXPERIMENTS.md); asserts the
claim and archives the table under benchmarks/results/.
"""

from repro.experiments import e20_preliminary


def test_e20_preliminary(run_experiment):
    run_experiment(e20_preliminary)
