"""Benchmark E8 — Extracted oracle drives Chandra-Toueg consensus to decision.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e08_consensus


def test_e8_consensus(run_experiment):
    run_experiment(e08_consensus)
