"""Benchmark E5 — Lemmas 5/7/9/11/12: liveness and structure of witnesses and subjects.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e05_liveness


def test_e5_liveness(run_experiment):
    run_experiment(e05_liveness)
