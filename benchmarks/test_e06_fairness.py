"""Benchmark E6 — Section 8: extracted oracle drives eventually k-fair dining.

Regenerates the corresponding paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md); asserts the paper's qualitative claim and archives the
table under benchmarks/results/.
"""

from repro.experiments import e06_fairness


def test_e6_fairness(run_experiment):
    run_experiment(e06_fairness)
