"""The diner client interface and the dining-instance factory contract.

Every dining algorithm exposes the same client surface, so callers — the
paper's witness/subject threads, the contention manager, the WSN duty
scheduler, plain client drivers — can treat any implementation as a black
box:

* ``diner.state`` — current :class:`~repro.types.DinerState`;
* ``diner.become_hungry()`` — legal only while thinking;
* ``diner.exit_eating()``  — legal only while eating; the algorithm must
  complete exiting → thinking in finite time.

The *algorithm* owns the hungry → eating transition.  State changes are
recorded as ``"state"`` trace rows (``instance``, ``state``), the raw
material for every checker in :mod:`repro.dining.spec`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Mapping

import networkx as nx

from repro.errors import ConfigurationError, SpecificationViolation
from repro.graphs import neighbors_map, validate_conflict_graph
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.types import DinerState, ProcessId

if TYPE_CHECKING:  # pragma: no cover
    pass

#: ``suspicion_provider(owner_pid)`` returns the local suspicion query
#: ``suspect(q) -> bool`` that the algorithm at ``owner_pid`` may consult.
SuspicionProvider = Callable[[ProcessId], Callable[[ProcessId], bool]]

_LEGAL_CLIENT_TRANSITIONS = {
    (DinerState.THINKING, DinerState.HUNGRY),
    (DinerState.EATING, DinerState.EXITING),
}


class DinerComponent(Component):
    """Base class for one diner of one dining instance.

    ``name`` is ``f"{instance_id}:{role_tag}"`` and doubles as the message
    tag for intra-instance protocol traffic.
    """

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...]) -> None:
        super().__init__(name)
        self.instance_id = instance_id
        self.neighbors = tuple(neighbors)
        self._state = DinerState.THINKING
        self.sessions_eaten = 0

    # -- client surface ------------------------------------------------------

    @property
    def state(self) -> DinerState:
        return self._state

    def become_hungry(self) -> None:
        """Client transition thinking → hungry."""
        self._client_transition(DinerState.HUNGRY)
        self.on_hungry()

    def exit_eating(self) -> None:
        """Client transition eating → exiting; the algorithm finishes it."""
        self._client_transition(DinerState.EXITING)
        self.on_exit()

    # -- algorithm hooks --------------------------------------------------------

    def on_hungry(self) -> None:
        """Called right after the client becomes hungry."""

    def on_exit(self) -> None:
        """Called right after the client starts exiting."""

    # -- state plumbing -----------------------------------------------------------

    def _set_state(self, new: DinerState) -> None:
        if new is self._state:
            return
        if new is DinerState.EATING:
            self.sessions_eaten += 1
        self._state = new
        self.record("state", instance=self.instance_id, state=new.value)

    def _client_transition(self, new: DinerState) -> None:
        if (self._state, new) not in _LEGAL_CLIENT_TRANSITIONS:
            raise SpecificationViolation(
                f"diner {self.name}@{self.pid}: illegal client transition "
                f"{self._state} -> {new}"
            )
        self._set_state(new)

    def attached(self) -> None:
        # Record the initial thinking state so interval extraction always
        # sees a defined start.
        self.record("state", instance=self.instance_id,
                    state=self._state.value, initial=True)


class DiningInstance(abc.ABC):
    """Factory installing one algorithm instance over a conflict graph.

    Subclasses build their concrete :class:`DinerComponent` per vertex.
    ``attach`` wires every diner onto its (pre-existing) engine process and
    returns the handle map clients use.
    """

    def __init__(self, instance_id: str, graph: nx.Graph) -> None:
        if not instance_id:
            raise ConfigurationError("instance_id must be non-empty")
        # Connectivity is a run-spec-level policy (see RunSpec.allow_
        # disconnected); an instance itself works per component.
        validate_conflict_graph(graph, allow_disconnected=True)
        self.instance_id = instance_id
        self.graph = graph
        self.adjacency = neighbors_map(graph)
        self.diners: dict[ProcessId, DinerComponent] = {}

    @abc.abstractmethod
    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> DinerComponent:
        """Construct the diner component for vertex ``pid``."""

    def component_name(self) -> str:
        """The (per-process-unique) component/message tag of this instance."""
        return f"{self.instance_id}:diner"

    def attach(self, engine: Engine) -> Mapping[ProcessId, DinerComponent]:
        """Install one diner per vertex onto the engine's processes."""
        if self.diners:
            raise ConfigurationError(
                f"instance {self.instance_id} already attached"
            )
        for pid in sorted(self.graph.nodes):
            diner = self.build_diner(pid, tuple(self.adjacency[pid]))
            engine.process(pid).add_component(diner)
            self.diners[pid] = diner
        return self.diners

    def diner(self, pid: ProcessId) -> DinerComponent:
        try:
            return self.diners[pid]
        except KeyError:
            raise ConfigurationError(
                f"instance {self.instance_id}: no diner at {pid!r} "
                "(not attached, or pid not in the conflict graph)"
            ) from None
