"""Eventually k-fair dining as an asynchronous wrapper (paper Section 8).

The paper's secondary result: WF-◇WX dining encapsulates enough synchronism
to schedule *eventually k-fairly* — there is an asynchronous transformation
turning any WF-◇WX solution (plus ◇P, which the reduction supplies) into a
WF-◇WX solution where eventually no diner enters its critical section more
than ``k`` times while a correct neighbor stays hungry (cf. [13]).

:class:`FairDining` is such a transformation, as a wrapper layer:

* on becoming hungry, a diner announces a **want** carrying a Lamport
  timestamp to its neighbors and withdraws it on exit (**served**);
* a hungry diner enters the *inner* black-box instance only while
  *entitled*: for every neighbor with a standing want it either
  (a) suspects the neighbor (◇P completeness keeps crashed neighbors from
  blocking anyone — wait-freedom), or
  (b) has eaten fewer than ``k`` times since that want arrived (the
  overtake budget), or
  (c) holds a strictly older want itself (Lamport ``(ts, id)`` order).

Rule (c) makes the deferral relation a partial order, so no deadlock cycle
can form: among any set of mutually-waiting hungry diners the one with the
oldest want defers to nobody.  Rule (b) bounds overtaking once ◇P stops
suspecting correct processes and wants propagate: a neighbor's standing
want can be overtaken at most ``k`` times on budget plus once more by a
still-older want, giving eventual (k+1)-bounded overtaking in the worst
case and typically ≤ k (experiment E13 quantifies this).

The wrapper presents the standard diner client API and records its states
under its own instance id, so every spec checker applies unchanged.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.dining.base import DinerComponent, DiningInstance, SuspicionProvider
from repro.errors import ConfigurationError
from repro.sim.component import action, receive
from repro.sim.engine import Engine
from repro.types import DinerState, Message, ProcessId


class FairDiner(DinerComponent):
    """One wrapped diner: client API outside, entitlement gate inside."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...],
                 inner: DinerComponent, suspect, k: int) -> None:
        super().__init__(name, instance_id, neighbors)
        if k < 1:
            raise ConfigurationError("fairness bound k must be >= 1")
        self.inner = inner
        self.suspect = suspect
        self.k = int(k)
        self.rounds_completed = 0
        self._lamport = 0
        self._want_seq = 0
        self._my_want: Optional[tuple[int, str]] = None   # (ts, pid)
        #: neighbor -> (their want seq, their (ts, pid), my rounds at arrival)
        self._wants: dict[ProcessId, tuple[int, tuple[int, str], int]] = {}
        self.deferrals = 0   # diagnostic: times entitlement gate held us back

    # -- lamport clock -------------------------------------------------------

    def _tick(self, seen: int = 0) -> int:
        self._lamport = max(self._lamport, seen) + 1
        return self._lamport

    # -- client surface -------------------------------------------------------

    def on_hungry(self) -> None:
        self._want_seq += 1
        ts = self._tick()
        self._my_want = (ts, self.pid)
        for q in self.neighbors:
            self.send(q, self.name, "want", seq=self._want_seq, ts=ts)

    def on_exit(self) -> None:
        self.rounds_completed += 1
        self._my_want = None
        self.inner.exit_eating()
        for q in self.neighbors:
            self.send(q, self.name, "served", seq=self._want_seq)

    # -- the entitlement gate ---------------------------------------------------

    def entitled(self) -> bool:
        """May we enter the inner instance right now?"""
        assert self._my_want is not None
        for q, (_seq, their_want, rounds_then) in self._wants.items():
            if self.suspect(q):
                continue                       # crashed (or presumed so)
            if self.rounds_completed - rounds_then < self.k:
                continue                       # overtake budget not spent
            if self._my_want < their_want:
                continue                       # our hunger is strictly older
            return False
        return True

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and self.inner.state is DinerState.THINKING)
    def enter_inner_when_entitled(self) -> None:
        if self.entitled():
            self.inner.become_hungry()
        else:
            self.deferrals += 1

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and self.inner.state is DinerState.EATING)
    def begin_eating(self) -> None:
        self._set_state(DinerState.EATING)

    @action(guard=lambda self: self.state is DinerState.EXITING
            and self.inner.state is not DinerState.EATING
            and self.inner.state is not DinerState.EXITING)
    def finish_exiting(self) -> None:
        self._set_state(DinerState.THINKING)

    # -- want bookkeeping ----------------------------------------------------------

    @receive("want")
    def on_want(self, msg: Message) -> None:
        self._tick(msg.payload["ts"])
        q = msg.sender
        current = self._wants.get(q)
        if current is not None and current[0] >= msg.payload["seq"]:
            return   # non-FIFO channels: stale want
        self._wants[q] = (
            msg.payload["seq"],
            (msg.payload["ts"], q),
            self.rounds_completed,
        )

    @receive("served")
    def on_served(self, msg: Message) -> None:
        self._tick()
        q = msg.sender
        current = self._wants.get(q)
        if current is not None and current[0] <= msg.payload["seq"]:
            del self._wants[q]


class FairDining(DiningInstance):
    """Wrap any dining factory into an eventually k-fair instance.

    ``inner_factory(instance_id, graph)`` builds the underlying black box;
    the wrapper adds one :class:`FairDiner` per vertex in front of it.
    """

    def __init__(self, instance_id: str, graph: nx.Graph,
                 inner_factory, suspicion_provider: SuspicionProvider,
                 k: int = 2) -> None:
        super().__init__(instance_id, graph)
        self.inner = inner_factory(f"{instance_id}.inner", graph)
        self.suspicion_provider = suspicion_provider
        self.k = k
        self._inner_diners = None

    def attach(self, engine: Engine):
        self._inner_diners = self.inner.attach(engine)
        return super().attach(engine)

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> FairDiner:
        assert self._inner_diners is not None
        return FairDiner(
            self.component_name(), self.instance_id, neighbors,
            inner=self._inner_diners[pid],
            suspect=self.suspicion_provider(pid),
            k=self.k,
        )
