"""The fault-intolerant baseline: classic Chandy–Misra hygienic dining.

Identical to :class:`~repro.dining.wf_ewx.WaitFreeEWXDining` but with a
never-suspecting oracle — i.e. the suspicion override can never fire.  In
failure-free runs this is the textbook algorithm: perpetual weak exclusion
and starvation-freedom.  Under a single crash, any neighbor whose shared
fork is stranded at the crashed process starves forever — the phenomenon
that motivates failure detectors (experiment E2's baseline contrast).
"""

from __future__ import annotations

import networkx as nx

from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.types import ProcessId


def never_suspect(pid: ProcessId):
    """The null oracle: trusts everyone forever."""
    return lambda q: False


class HygienicDining(WaitFreeEWXDining):
    """Chandy–Misra dining: perpetual WX, no crash tolerance."""

    def __init__(self, instance_id: str, graph: nx.Graph) -> None:
        super().__init__(instance_id, graph, suspicion_provider=never_suspect)
