"""The dining-philosophers layer.

A *dining instance* (paper Section 4) is an undirected conflict graph whose
vertices are diners cycling through thinking → hungry → eating → exiting.
A solution schedules hungry→eating transitions subject to an exclusion
criterion and a progress criterion.

This package provides:

* :mod:`repro.dining.base` — the diner client interface every algorithm
  implements (so the reduction can treat any of them as a black box);
* :mod:`repro.dining.spec` — trace checkers for ◇WX / WX / wait-freedom /
  k-fairness;
* :mod:`repro.dining.wf_ewx` — the ◇P-based wait-free ◇WX algorithm
  (hygienic dining with suspicion override, faithful to [12]);
* :mod:`repro.dining.hygienic` — the fault-intolerant Chandy–Misra baseline
  (the same algorithm with a never-suspecting oracle);
* :mod:`repro.dining.deferred` — an adversarial-but-legal WF-◇WX box that
  defeats the flawed construction of [8] (paper Section 3);
* :mod:`repro.dining.perpetual` — a wait-free *perpetual* WX box (for the
  Section 9 experiment extracting T);
* :mod:`repro.dining.client` — environment drivers that make diners hungry;
* :mod:`repro.dining.fairness` — overtaking counters for eventual
  k-fairness.
"""

from repro.dining.base import DinerComponent, DiningInstance
from repro.dining.client import EagerClient, PeriodicClient, ScriptedClient
from repro.dining.deferred import DeferredExclusionDining
from repro.dining.fair_wrapper import FairDining
from repro.dining.hygienic import HygienicDining, never_suspect
from repro.dining.manager import ManagerDining
from repro.dining.unfair import UnfairManagerDining
from repro.dining.perpetual import PerpetualDining
from repro.dining.spec import (
    ExclusionReport,
    WaitFreedomReport,
    check_exclusion,
    check_wait_freedom,
    eating_intervals,
)
from repro.dining.wf_ewx import WaitFreeEWXDining

__all__ = [
    "DeferredExclusionDining",
    "DinerComponent",
    "DiningInstance",
    "EagerClient",
    "FairDining",
    "ExclusionReport",
    "HygienicDining",
    "ManagerDining",
    "PeriodicClient",
    "PerpetualDining",
    "ScriptedClient",
    "UnfairManagerDining",
    "WaitFreeEWXDining",
    "WaitFreedomReport",
    "check_exclusion",
    "check_wait_freedom",
    "eating_intervals",
    "never_suspect",
]
