"""A coordinator-based WF-◇WX dining box (third black-box implementation).

Structurally unlike the edge-token hygienic algorithm: scheduling is done
by a *manager* role that migrates under suspicion.

* Every diner's manager estimate is the smallest instance vertex its local
  ◇P does not suspect (an Ω-style election restricted to the instance).
* A hungry diner sends a ``request`` (with a fresh id) to its current
  estimate and re-sends whenever the estimate changes.
* The manager role runs at every process but only answers when it believes
  itself the manager: it grants the oldest compatible request (no granted
  conflict-graph neighbor), queues the rest, and reclaims grants whose
  holders it suspects (their crash would otherwise block neighbors).
* A diner eats on a grant matching its current request id; stale grants
  (from deposed managers or superseded requests) are declined so the
  issuing manager frees the slot.

Why the specification holds:

* **wait-freedom** — once ◇P converges, all correct diners agree on the
  same correct manager; requests reach it, grants are issued
  oldest-first among compatible requests, eating is finite, and crashed
  holders are reclaimed — so every hungry correct diner is eventually
  granted.
* **◇WX** — while estimates disagree, two self-believed managers can grant
  conflicting sessions (real scheduling mistakes); after convergence a
  single manager enforces exclusion, and only finitely many stale grants
  are in flight.

Used as the third box in experiments E2/E3 to stress the reduction's
universality claim across qualitatively different implementations.
"""

from __future__ import annotations

import itertools
from typing import Optional

import networkx as nx

from repro.dining.base import DinerComponent, DiningInstance, SuspicionProvider
from repro.sim.component import Component, action, receive
from repro.types import DinerState, Message, ProcessId

_request_ids = itertools.count(1)


class ManagedDiner(DinerComponent):
    """The diner-side protocol: request / await grant / release."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...],
                 vertices: tuple[ProcessId, ...], suspect,
                 manager_tag: str) -> None:
        super().__init__(name, instance_id, neighbors)
        self.vertices = tuple(sorted(vertices))
        self.suspect = suspect
        self.manager_tag = manager_tag
        self._request_id: Optional[int] = None
        self._requested_from: Optional[ProcessId] = None
        self._granted_by: Optional[ProcessId] = None

    def manager_estimate(self) -> ProcessId:
        for v in self.vertices:
            if v == self.pid or not self.suspect(v):
                return v
        return self.pid   # suspect everyone: act as own manager

    def on_hungry(self) -> None:
        self._request_id = next(_request_ids)
        self._requested_from = None   # force a (re)send

    def on_exit(self) -> None:
        if self._granted_by is not None:
            self.send(self._granted_by, self.manager_tag, "release",
                      rid=self._request_id)
        self._granted_by = None
        self._request_id = None
        self._requested_from = None

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and self._requested_from != self.manager_estimate())
    def send_request(self) -> None:
        """(Re)send the request whenever the manager estimate moves."""
        target = self.manager_estimate()
        self._requested_from = target
        self.send(target, self.manager_tag, "request", rid=self._request_id)

    @receive("grant")
    def on_grant(self, msg: Message) -> None:
        rid = msg.payload["rid"]
        if self.state is DinerState.HUNGRY and rid == self._request_id:
            self._granted_by = msg.sender
            self._set_state(DinerState.EATING)
        else:
            # Stale grant (old request or already eating via another
            # manager): decline so the issuer frees the slot.
            self.send(msg.sender, self.manager_tag, "release", rid=rid)

    @action(guard=lambda self: self.state is DinerState.EXITING)
    def finish_exiting(self) -> None:
        self._set_state(DinerState.THINKING)


class ManagerRole(Component):
    """The manager-side protocol, active at every process of the instance."""

    def __init__(self, name: str, graph: nx.Graph, suspect,
                 diner_tag: str) -> None:
        super().__init__(name)
        self.graph = graph
        self.suspect = suspect
        self.diner_tag = diner_tag
        self.vertices = tuple(sorted(graph.nodes))
        #: rid -> holder, for sessions this manager believes are running.
        self.granted: dict[int, ProcessId] = {}
        #: pending requests, oldest first: (rid, requester).
        self.queue: list[tuple[int, ProcessId]] = []
        self.grants_issued = 0

    def _suspects(self, q: ProcessId) -> bool:
        """Self-queries are never suspicion (a live process trusts itself)."""
        return q != self.pid and self.suspect(q)

    def believes_self_manager(self) -> bool:
        for v in self.vertices:
            if v == self.pid:
                return True
            if not self.suspect(v):
                return False
        return True

    def _conflicts(self, who: ProcessId) -> bool:
        busy = set(self.granted.values())
        return who in busy or any(
            n in busy for n in self.graph.neighbors(who)
        )

    @receive("request")
    def on_request(self, msg: Message) -> None:
        entry = (msg.payload["rid"], msg.sender)
        if entry not in self.queue and entry[0] not in self.granted:
            self.queue.append(entry)

    @receive("release")
    def on_release(self, msg: Message) -> None:
        self.granted.pop(msg.payload["rid"], None)

    @action(guard=lambda self: bool(self.queue)
            and self.believes_self_manager())
    def serve(self) -> None:
        """Grant the oldest compatible request; reclaim dead holders first."""
        for rid, holder in list(self.granted.items()):
            if self._suspects(holder):
                del self.granted[rid]   # holder presumed crashed: reclaim
        # Never grant past an older waiting request it would conflict with
        # (otherwise younger requests around a blocked head starve it).
        blocked: set[ProcessId] = set()
        for i, (rid, who) in enumerate(self.queue):
            if self._suspects(who):
                # A crashed requester would occupy a slot forever.
                del self.queue[i]
                return
            if not self._conflicts(who) and who not in blocked:
                del self.queue[i]
                self.granted[rid] = who
                self.grants_issued += 1
                self.send(who, self.diner_tag, "grant", rid=rid)
                return
            blocked.add(who)
            blocked.update(self.graph.neighbors(who))


class ManagerDining(DiningInstance):
    """Factory for the coordinator-based box."""

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider) -> None:
        super().__init__(instance_id, graph)
        self.suspicion_provider = suspicion_provider
        self.managers: dict[ProcessId, ManagerRole] = {}

    def manager_tag(self) -> str:
        return f"{self.instance_id}:mgr"

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> ManagedDiner:
        return ManagedDiner(
            self.component_name(), self.instance_id, neighbors,
            vertices=tuple(self.graph.nodes),
            suspect=self.suspicion_provider(pid),
            manager_tag=self.manager_tag(),
        )

    def attach(self, engine):
        diners = super().attach(engine)
        for pid in sorted(self.graph.nodes):
            role = ManagerRole(self.manager_tag(), self.graph,
                               self.suspicion_provider(pid),
                               diner_tag=self.component_name())
            engine.process(pid).add_component(role)
            self.managers[pid] = role
        return diners
