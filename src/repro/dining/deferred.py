"""An adversarial-but-legal WF-◇WX black box (the Section 3 counterexample).

The paper's Section 3 observes that the construction of [8] (Guerraoui et
al., boosting obstruction-freedom) extracts ◇P correctly only from dining
implementations that guarantee an exclusive suffix *even when some process
never exits its critical section*.  Legal WF-◇WX implementations exist that
do not: e.g. the algorithm of [12] owes exclusion only after (1) ◇P stops
erring and (2) every diner that entered eating before that has exited.

:class:`DeferredExclusionDining` makes that worst legal citizen concrete.
It extends the base ◇P algorithm with one extra scheduling rule: a hungry
diner may ignore (eat concurrently with) any neighbor whose *current*
eating session began at or before an internal ``mistake_horizon`` time C.

Legality ("a correct solution in every run where correct diners eat
finitely", which is all the specification demands):

* **wait-freedom** — strictly more permissive than the base algorithm;
* **◇WX** — sessions that began by C close in finite time (correct diners
  eat finitely; a crashed eater is not *live*, so eating over it violates
  nothing), after which the extra rule never fires again and the base
  algorithm's eventual exclusion takes over.

In runs where a diner eats *forever* — precisely the run the construction
of [8] manufactures — this box keeps scheduling its neighbor concurrently,
so the [8] detector suspects a correct process infinitely often (experiment
E4).  The paper's two-instance reduction keeps working because its subject
threads always eat finite sessions while observed.

Implementation notes: the box consults the global clock and a shared
per-instance ledger of open eating sessions.  Both are *modelling* devices
for an adversarial implementation's internal behaviour — the client-facing
surface is still the plain black-box dining API, which is all the
reduction sees.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.dining.base import SuspicionProvider
from repro.dining.wf_ewx import EWXDiner, WaitFreeEWXDining
from repro.sim.component import action
from repro.types import DinerState, ProcessId, Time


class SessionLedger:
    """Shared record of the open eating session (if any) of each diner."""

    def __init__(self) -> None:
        self._open: dict[ProcessId, Time] = {}

    def opened(self, pid: ProcessId, at: Time) -> None:
        self._open[pid] = at

    def closed(self, pid: ProcessId) -> None:
        self._open.pop(pid, None)

    def open_since(self, pid: ProcessId) -> Optional[Time]:
        return self._open.get(pid)


class DeferredDiner(EWXDiner):
    """Base diner plus the 'ignore pre-horizon eaters' scheduling rule."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...], suspect,
                 ledger: SessionLedger, mistake_horizon: Time) -> None:
        super().__init__(name, instance_id, neighbors, suspect)
        self.ledger = ledger
        self.mistake_horizon = float(mistake_horizon)

    def _ignorable(self, q: ProcessId) -> bool:
        """May we eat concurrently with ``q``?  Only if q's current session
        opened at or before the internal horizon C."""
        since = self.ledger.open_since(q)
        return since is not None and since <= self.mistake_horizon

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and any(self._ignorable(q) and not self.fork[q]
                    for q in self.neighbors)
            and all(self.fork[q] or self.suspect(q) or self._ignorable(q)
                    for q in self.neighbors))
    def enter_over_stale_sessions(self) -> None:
        """The adversarial grant: eat over neighbors stuck in pre-C sessions."""
        self._begin_eating()

    # Ledger bookkeeping rides on the state setter so *every* path into or
    # out of eating (base rule or adversarial rule) is covered.
    def _set_state(self, new: DinerState) -> None:
        if new is DinerState.EATING:
            self.ledger.opened(self.pid, self.process.env_now())
        elif self.state is DinerState.EATING:
            self.ledger.closed(self.pid)
        super()._set_state(new)


class DeferredExclusionDining(WaitFreeEWXDining):
    """Factory for the adversarial box.

    ``mistake_horizon`` is the internal time C until which freshly-started
    eating sessions remain 'ignorable' for as long as they stay open.
    """

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider,
                 mistake_horizon: Time = 100.0) -> None:
        super().__init__(instance_id, graph, suspicion_provider)
        self.mistake_horizon = float(mistake_horizon)
        self.ledger = SessionLedger()

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> DeferredDiner:
        return DeferredDiner(
            self.component_name(), self.instance_id, neighbors,
            suspect=self.suspicion_provider(pid),
            ledger=self.ledger, mistake_horizon=self.mistake_horizon,
        )
