"""Deliberately broken dining implementations (negative controls).

A verification suite is only trustworthy if it *fails* the guilty: these
mutants violate exactly one clause of the dining specification each, and
``tests/dining/test_mutants.py`` asserts every checker convicts its mutant
(and acquits it of the clauses it does not violate).

* :class:`RecklessDining` — schedules every hungry diner immediately:
  perfectly wait-free, never exclusive (◇WX violated: conflicts recur
  forever under recurring hunger).
* :class:`SnobbishDining` — a correct algorithm that permanently refuses
  one victim diner: exclusion holds, wait-freedom violated.
* :class:`LateDining` — stops scheduling anyone after an internal cutoff:
  trivially exclusive eventually, wait-freedom violated for everyone
  hungry after the cutoff.

These are **not** legal black boxes for the reduction; they exist to test
the test equipment.  (Contrast with
:class:`~repro.dining.deferred.DeferredExclusionDining`, which is legal.)
"""

from __future__ import annotations

import networkx as nx

from repro.dining.base import DinerComponent, DiningInstance
from repro.dining.hygienic import never_suspect
from repro.dining.wf_ewx import EWXDiner
from repro.sim.component import action
from repro.types import DinerState, ProcessId, Time


class _GreedyDiner(DinerComponent):
    """Eats the moment it is hungry; no coordination whatsoever."""

    @action(guard=lambda self: self.state is DinerState.HUNGRY)
    def grab(self) -> None:
        self._set_state(DinerState.EATING)

    @action(guard=lambda self: self.state is DinerState.EXITING)
    def finish(self) -> None:
        self._set_state(DinerState.THINKING)


class RecklessDining(DiningInstance):
    """Wait-free, never exclusive."""

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> DinerComponent:
        return _GreedyDiner(self.component_name(), self.instance_id,
                            neighbors)


class _SnubbedDiner(EWXDiner):
    """A hygienic diner whose eat rule is disabled forever."""

    @action(guard=lambda self: False)
    def enter_critical_section(self) -> None:  # pragma: no cover - never runs
        raise AssertionError("victim must never eat")


class SnobbishDining(DiningInstance):
    """Correct hygienic dining, except ``victim`` is never scheduled."""

    def __init__(self, instance_id: str, graph: nx.Graph,
                 victim: ProcessId) -> None:
        super().__init__(instance_id, graph)
        self.victim = victim

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> DinerComponent:
        cls = _SnubbedDiner if pid == self.victim else EWXDiner
        return cls(self.component_name(), self.instance_id, neighbors,
                   suspect=never_suspect(pid))


class _QuittingDiner(_GreedyDiner):
    """Greedy until the cutoff, then never schedules again."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...], cutoff: Time) -> None:
        super().__init__(name, instance_id, neighbors)
        self.cutoff = float(cutoff)

    @action(guard=lambda self: self.state is DinerState.HUNGRY)
    def grab(self) -> None:
        if self.process.env_now() < self.cutoff:
            self._set_state(DinerState.EATING)


class LateDining(DiningInstance):
    """Schedules greedily until ``cutoff``, then starves everyone."""

    def __init__(self, instance_id: str, graph: nx.Graph,
                 cutoff: Time = 200.0) -> None:
        super().__init__(instance_id, graph)
        self.cutoff = cutoff

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> DinerComponent:
        return _QuittingDiner(self.component_name(), self.instance_id,
                              neighbors, cutoff=self.cutoff)
