"""A legal WF-◇WX box with bounded-but-brutal unfairness.

The paper's Section 5.1 observes that WF-◇WX "does not guarantee fairness
insofar as it is possible for p to eat an unbounded number of times between
each time q eats" — which is why the reduction needs two instances and the
hand-off.  This box makes that latitude concrete in a bounded form that is
still wait-free: its manager serves one designated **VIP** diner up to
``burst`` consecutive times whenever the VIP is asking, before letting
anyone else in.

* **wait-freedom** — the VIP streak is capped at ``burst``; afterwards the
  oldest non-VIP compatible request is served, so nobody starves;
* **◇WX** — inherited from the manager scheme (single manager after ◇P
  converges).

Experiment E20 runs the paper's *preliminary* single-instance construction
over this box (VIP = the witness): between two subject meals the witness
eats up to ``burst`` times, reads ``haveping = false`` on all but the
first, and so suspects the correct subject forever — while the paper's
two-instance reduction on the very same box stays correct, because the
subjects' hand-off keeps one of them eating at all times and exclusion
throttles the witnesses regardless of the box's scheduling bias.
"""

from __future__ import annotations

import networkx as nx

from repro.dining.base import SuspicionProvider
from repro.dining.manager import ManagedDiner, ManagerDining, ManagerRole
from repro.errors import ConfigurationError
from repro.sim.component import action
from repro.types import ProcessId


class UnfairManagerRole(ManagerRole):
    """Manager that favours the VIP for up to ``burst`` consecutive grants."""

    def __init__(self, name: str, graph: nx.Graph, suspect, diner_tag: str,
                 vip: ProcessId, burst: int) -> None:
        super().__init__(name, graph, suspect, diner_tag)
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self.vip = vip
        self.burst = int(burst)
        self._vip_streak = 0

    def _grant(self, index: int) -> None:
        rid, who = self.queue.pop(index)
        self.granted[rid] = who
        self.grants_issued += 1
        if who == self.vip:
            self._vip_streak += 1
        else:
            self._vip_streak = 0
        self.send(who, self.diner_tag, "grant", rid=rid)

    @action(guard=lambda self: bool(self.queue)
            and self.believes_self_manager())
    def serve(self) -> None:  # overrides the fair policy
        for rid, holder in list(self.granted.items()):
            if self._suspects(holder):
                del self.granted[rid]
        # VIP first, while its streak budget lasts.
        if self._vip_streak < self.burst:
            for i, (rid, who) in enumerate(self.queue):
                if who == self.vip and not self._conflicts(who):
                    self._grant(i)
                    return
        # Otherwise: oldest compatible non-VIP (with the anti-starvation
        # blocked-set rule of the parent).
        blocked: set[ProcessId] = set()
        for i, (rid, who) in enumerate(self.queue):
            if self._suspects(who):
                del self.queue[i]
                return
            if who != self.vip and not self._conflicts(who) \
                    and who not in blocked:
                self._grant(i)
                return
            blocked.add(who)
            blocked.update(self.graph.neighbors(who))
        # Nobody else is asking: the VIP may continue past its budget
        # (granting it then starves no one).
        if all(who == self.vip for _, who in self.queue):
            for i, (rid, who) in enumerate(self.queue):
                if not self._conflicts(who):
                    self._grant(i)
                    return


class UnfairManagerDining(ManagerDining):
    """Factory for the VIP-biased box."""

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider,
                 vip: ProcessId, burst: int = 3) -> None:
        super().__init__(instance_id, graph, suspicion_provider)
        if vip not in graph.nodes:
            raise ConfigurationError(f"vip {vip!r} is not a diner")
        self.vip = vip
        self.burst = burst

    def attach(self, engine):
        from repro.dining.base import DiningInstance

        diners = DiningInstance.attach(self, engine)   # diners only
        for pid in sorted(self.graph.nodes):
            role = UnfairManagerRole(
                self.manager_tag(), self.graph,
                self.suspicion_provider(pid),
                diner_tag=self.component_name(),
                vip=self.vip, burst=self.burst,
            )
            engine.process(pid).add_component(role)
            self.managers[pid] = role
        return diners
