"""Trace checkers for the dining problem specification.

The paper's two requirements (Section 4):

* **Eventual Weak Exclusion (◇WX)** — for every run there is a time after
  which no two *live* neighbors eat simultaneously.  On a finite trace this
  is reported as violation data (count + time of the last violation) rather
  than a boolean, because finitely many violations are legal; experiments
  assert convergence against their own knowledge of the run (e.g. the
  oracle's convergence time).
* **Wait-Freedom** — if correct processes eat for finite time, every
  correct hungry process eventually eats, regardless of crashes.

Perpetual weak exclusion (WX, Section 9) and eventual k-fairness
(Section 8) checkers are also provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace, intervals_overlap, state_intervals
from repro.types import DinerState, ProcessId, Time

Interval = tuple[Time, Time]


def state_series(trace: Trace, instance: str, pid: ProcessId) -> list[tuple[Time, str]]:
    """The diner's ``(time, state)`` series for one instance."""
    return trace.series(
        "state", "state", pid=pid, where=lambda r: r.get("instance") == instance
    )


def _clip(intervals: Sequence[Interval], cutoff: Optional[Time]) -> list[Interval]:
    """Clip intervals at a crash time (a crashed diner stops conflicting)."""
    if cutoff is None:
        return list(intervals)
    out = []
    for a, b in intervals:
        if a >= cutoff:
            continue
        out.append((a, min(b, cutoff)))
    return out


def eating_intervals(
    trace: Trace,
    instance: str,
    pid: ProcessId,
    end_time: Time,
    schedule: CrashSchedule | None = None,
) -> list[Interval]:
    """Closed eating sessions of one diner; clipped at its crash if any."""
    series = state_series(trace, instance, pid)
    ivs = state_intervals(series, DinerState.EATING.value, end_time)
    cutoff = schedule.crash_time(pid) if schedule is not None else None
    return _clip(ivs, cutoff)


def hungry_intervals(
    trace: Trace,
    instance: str,
    pid: ProcessId,
    end_time: Time,
) -> list[Interval]:
    """Closed hungry sessions of one diner (not crash-clipped)."""
    series = state_series(trace, instance, pid)
    return state_intervals(series, DinerState.HUNGRY.value, end_time)


@dataclass(frozen=True)
class ExclusionViolation:
    """Two live neighbors eating simultaneously during ``[start, end)``."""

    u: ProcessId
    v: ProcessId
    start: Time
    end: Time


@dataclass
class ExclusionReport:
    """◇WX / WX verdict data for one instance."""

    instance: str
    violations: list[ExclusionViolation] = field(default_factory=list)
    end_time: Time = 0.0

    @property
    def count(self) -> int:
        return len(self.violations)

    @property
    def last_violation_end(self) -> Optional[Time]:
        """End of the final violation — the empirical ◇WX convergence point."""
        return max((v.end for v in self.violations), default=None)

    @property
    def perpetual_ok(self) -> bool:
        """True iff the run satisfies *perpetual* weak exclusion."""
        return not self.violations

    def eventually_exclusive_by(self, t: Time) -> bool:
        """Did all violations end by time ``t``?  (◇WX convergence test.)"""
        last = self.last_violation_end
        return last is None or last <= t

    def format_table(self) -> str:
        head = (
            f"exclusion[{self.instance}]: {self.count} violation(s), "
            f"last ends at "
            f"{'-' if self.last_violation_end is None else f'{self.last_violation_end:.1f}'}"
        )
        rows = [
            f"  {v.u}<->{v.v}: [{v.start:.1f}, {v.end:.1f})"
            for v in self.violations[:20]
        ]
        if self.count > 20:
            rows.append(f"  ... {self.count - 20} more")
        return "\n".join([head] + rows)


def check_exclusion(
    trace: Trace,
    graph: nx.Graph,
    instance: str,
    schedule: CrashSchedule,
    end_time: Time,
) -> ExclusionReport:
    """Find every interval during which two live neighbors ate together."""
    report = ExclusionReport(instance=instance, end_time=end_time)
    ivs = {
        pid: eating_intervals(trace, instance, pid, end_time, schedule)
        for pid in graph.nodes
    }
    for u, v in sorted(tuple(sorted(e)) for e in graph.edges):
        for a in ivs[u]:
            for b in ivs[v]:
                if intervals_overlap(a, b):
                    report.violations.append(
                        ExclusionViolation(
                            u=u, v=v,
                            start=max(a[0], b[0]), end=min(a[1], b[1]),
                        )
                    )
    report.violations.sort(key=lambda x: (x.start, x.end, x.u, x.v))
    return report


@dataclass
class WaitFreedomReport:
    """Wait-freedom verdict for one instance."""

    instance: str
    ok: bool
    starving: list[ProcessId] = field(default_factory=list)
    max_wait: Time = 0.0
    sessions: dict[ProcessId, int] = field(default_factory=dict)

    def format_table(self) -> str:
        lines = [
            f"wait-freedom[{self.instance}]: {'OK' if self.ok else 'VIOLATED'} "
            f"(max hungry wait {self.max_wait:.1f})"
        ]
        if self.starving:
            lines.append(f"  starving: {', '.join(self.starving)}")
        for pid, n in sorted(self.sessions.items()):
            lines.append(f"  {pid}: {n} eating session(s)")
        return "\n".join(lines)


def check_wait_freedom(
    trace: Trace,
    graph: nx.Graph,
    instance: str,
    schedule: CrashSchedule,
    end_time: Time,
    grace: Time = 0.0,
) -> WaitFreedomReport:
    """Every correct diner's hunger is served.

    A correct diner still hungry at the end of the run counts as starving
    unless its pending hunger began within ``grace`` of ``end_time``
    (finite-run allowance: 'eventually' cannot be refuted by a fresh
    request).  ``max_wait`` is the longest completed-or-pending hungry
    interval across correct diners.
    """
    starving: list[ProcessId] = []
    max_wait = 0.0
    sessions: dict[ProcessId, int] = {}
    for pid in sorted(graph.nodes):
        series = state_series(trace, instance, pid)
        sessions[pid] = sum(
            1 for _, s in series if s == DinerState.EATING.value
        )
        if schedule.is_faulty(pid):
            continue
        for start, end in state_intervals(series, DinerState.HUNGRY.value, end_time):
            max_wait = max(max_wait, end - start)
            closed = end < end_time or (
                series and series[-1][1] != DinerState.HUNGRY.value
            )
            if not closed and start < end_time - grace:
                starving.append(pid)
    return WaitFreedomReport(
        instance=instance,
        ok=not starving,
        starving=starving,
        max_wait=max_wait,
        sessions=sessions,
    )


@dataclass(frozen=True)
class OvertakeSample:
    """How often neighbor ``eater`` ate during one hungry interval of ``waiter``."""

    waiter: ProcessId
    eater: ProcessId
    hungry_start: Time
    count: int


def overtake_samples(
    trace: Trace,
    graph: nx.Graph,
    instance: str,
    end_time: Time,
) -> list[OvertakeSample]:
    """For every hungry interval of every diner, count each neighbor's
    eating-session onsets inside it (the k-fairness statistic, Section 8)."""
    onsets: dict[ProcessId, list[Time]] = {}
    hungry: dict[ProcessId, list[Interval]] = {}
    for pid in graph.nodes:
        series = state_series(trace, instance, pid)
        onsets[pid] = [t for t, s in series if s == DinerState.EATING.value]
        hungry[pid] = state_intervals(series, DinerState.HUNGRY.value, end_time)
    samples: list[OvertakeSample] = []
    for pid in sorted(graph.nodes):
        for start, end in hungry[pid]:
            for nbr in sorted(graph.neighbors(pid)):
                n = sum(1 for t in onsets[nbr] if start < t <= end)
                samples.append(OvertakeSample(pid, nbr, start, n))
    return samples


def eventual_k_fairness(
    samples: Sequence[OvertakeSample],
    k: int,
    after: Time = 0.0,
) -> tuple[bool, int]:
    """Does every sample starting after ``after`` respect the bound ``k``?

    Returns ``(ok, worst_count_in_suffix)``.
    """
    suffix = [s for s in samples if s.hungry_start >= after]
    worst = max((s.count for s in suffix), default=0)
    return worst <= k, worst
