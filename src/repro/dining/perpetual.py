"""Wait-free dining under *perpetual* weak exclusion (paper Section 9).

Delporte-Gallet et al. proved (T + S) sufficient for Fault-Tolerant Mutual
Exclusion — wait-freedom with live neighbors *never* eating simultaneously.
The key requirement on the oracle is **crash-accurate suspicion**: a
process is only ever treated as ignorable if it has really crashed, so the
suspicion override of the hygienic protocol never creates a violation.

This module provides the perpetual-WX black box used by the Section 9
experiment (applying the paper's reduction to a WX box extracts T):

* :func:`accurate_provider` — suspicion from the P substrate (crash ⟹
  eventually suspected; never suspects live processes).  P ⪰ (T + S), so a
  box built on it is a legal FTME solution.
* :func:`trusting_plus_strong_provider` — the (T + S)-composition rule from
  the paper: ``q`` is ignorable iff T revoked a previously-granted trust
  (revocation ⟹ crash, by trusting accuracy) **or** both T and S suspect a
  never-trusted ``q`` (covering processes that crash before registering;
  safe only while S's suspicions are crash-accurate — the full FTME
  protocol removes that caveat with machinery out of scope here, see
  DESIGN.md §6).

:class:`PerpetualDining` is the hygienic algorithm run with such a
provider; with crash-accurate suspicion it yields zero exclusion
violations in every run (checked by ``ExclusionReport.perpetual_ok``).
"""

from __future__ import annotations

import networkx as nx

from repro.dining.base import SuspicionProvider
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.oracles.perfect import PerfectDetector
from repro.oracles.strong import StrongDetector
from repro.oracles.trusting import TrustingDetector
from repro.types import ProcessId


def accurate_provider(modules: dict[ProcessId, PerfectDetector]) -> SuspicionProvider:
    """Suspicion straight from per-process P modules."""

    def provider(pid: ProcessId):
        module = modules[pid]
        return lambda q: module.suspected(q)

    return provider


def trusting_plus_strong_provider(
    t_modules: dict[ProcessId, TrustingDetector],
    s_modules: dict[ProcessId, StrongDetector],
) -> SuspicionProvider:
    """The (T + S) ignorability rule described in the module docstring."""

    def provider(pid: ProcessId):
        t = t_modules[pid]
        s = s_modules[pid]

        def suspect(q: ProcessId) -> bool:
            if t.suspected(q) and t.has_trusted(q):
                return True  # trust revoked: q crashed, by trusting accuracy
            return t.suspected(q) and s.suspected(q)

        return suspect

    return provider


class PerpetualDining(WaitFreeEWXDining):
    """Hygienic dining whose suspicion source must be crash-accurate.

    The class is behaviourally the parent algorithm; it exists to document
    (and let experiments assert) the stronger contract: with a
    crash-accurate provider the run must satisfy *perpetual* weak
    exclusion, i.e. ``check_exclusion(...).perpetual_ok``.
    """

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider) -> None:
        super().__init__(instance_id, graph, suspicion_provider)
