"""Wait-free dining under eventual weak exclusion, from ◇P.

This is the sufficiency-side algorithm (the paper's reference [12], Pike &
Song): classic hygienic dining (Chandy–Misra fork/request-token protocol)
with a *suspicion override* — a hungry diner may begin eating once, for
every neighbor, it either holds the shared fork or currently suspects the
neighbor per its local ◇P module.

Why the two properties hold:

* **Wait-freedom** — a crashed neighbor is eventually permanently suspected
  (◇P strong completeness), so its unrecoverable fork stops blocking anyone;
  among correct processes the hygienic clean/dirty priority gives classic
  starvation-freedom.
* **◇WX** — while ◇P makes mistakes a diner may eat without a live
  neighbor's fork, so both may eat together; once ◇P converges no correct
  neighbor is suspected, eating again requires real forks, and fork tokens
  are never duplicated — so live neighbors stop eating simultaneously.

Per-edge token discipline (the hygienic invariants, enforced and tested):

* exactly one **fork** and one **request token** per edge, on opposite
  sides or in transit;
* forks start dirty at the lower-id endpoint (an acyclic priority
  orientation);
* a holder yields a *dirty* fork on request unless eating (cleaning it in
  transit); a *clean* fork is kept until after the holder eats;
* a transferred fork lands **clean only at a hungry receiver whose last
  meal is older than the sender's** (meal-recency rule, below); otherwise
  it lands dirty.

The meal-recency rule replaces the classic "clean on arrival at the
requester" convention, which is sound only when every meal consumes all
of the eater's forks.  The suspicion override breaks that premise: a
diner may eat while a fork sits at its neighbor, so the neighbor-side
orientation silently survives the meal, and a later request can land the
fork clean at the *more recent* eater.  Three such inverted edges close a
cycle of clean forks among hungry diners — permanent deadlock (first
reproduced by the chaos runner under heavy retransmission delay, where a
request token crossed the wire ~270 time units late).  Landing forks
clean only along the true meal-recency order keeps the blocking relation
a sub-order of a total order, hence acyclic: deadlock-freedom, and the
globally oldest hungry diner always wins every shared edge, hence
starvation-freedom.  Fork transfers carry the sender's last-meal stamp;
the simulation's event clock serves as the timestamp (a Lamport clock
would do the same job in a real deployment).
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.dining.base import DinerComponent, DiningInstance, SuspicionProvider
from repro.sim.component import action, receive
from repro.types import DinerState, Message, ProcessId

Suspect = Callable[[ProcessId], bool]


class EWXDiner(DinerComponent):
    """One diner of a :class:`WaitFreeEWXDining` instance."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...], suspect: Suspect) -> None:
        super().__init__(name, instance_id, neighbors)
        self.suspect = suspect
        # Initial orientation: the lower id holds the fork, dirty; the
        # higher id holds the request token.  Installed on attach (needs pid).
        self.fork: dict[ProcessId, bool] = {}
        self.dirty: dict[ProcessId, bool] = {}
        self.token: dict[ProcessId, bool] = {}
        #: Edges with an outstanding fork request (duplicate suppression).
        self._requested: set[ProcessId] = set()
        #: Last-meal stamp ``(has_eaten, begin_time)``; never-eaten ranks
        #: oldest, ties break by pid (higher pid older, matching the
        #: initial dirty-at-lower-id orientation).  Travels on every fork
        #: transfer so :meth:`on_fork` can order the endpoints by recency.
        self._last_meal: tuple[int, float] = (0, 0.0)

    def attached(self) -> None:
        super().attached()
        for q in self.neighbors:
            holds_fork = self.pid < q
            self.fork[q] = holds_fork
            self.dirty[q] = holds_fork  # all initial forks are dirty
            self.token[q] = not holds_fork

    # -- protocol actions ------------------------------------------------------

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and any(not self.fork[q] and self.token[q] and q not in self._requested
                    for q in self.neighbors))
    def request_missing_forks(self) -> None:
        """Hungry and missing forks: spend request tokens."""
        for q in self.neighbors:
            if not self.fork[q] and self.token[q] and q not in self._requested:
                self.token[q] = False
                self._requested.add(q)
                self.send(q, self.name, "req")

    @action(guard=lambda self: self.state is not DinerState.EATING
            and any(self.token[q] and self.fork[q] and self.dirty[q]
                    for q in self.neighbors))
    def yield_dirty_forks(self) -> None:
        """Honour requests: a dirty fork goes to the requester, stamped
        with our meal recency so the receiver can orient it."""
        for q in self.neighbors:
            if self.token[q] and self.fork[q] and self.dirty[q]:
                self.fork[q] = False
                self.dirty[q] = False
                self.send(q, self.name, "fork", last_meal=self._last_meal)

    @receive("req")
    def on_request(self, msg: Message) -> None:
        """The edge's request token arrives (we now owe a fork, eventually)."""
        self.token[msg.sender] = True

    @receive("fork")
    def on_fork(self, msg: Message) -> None:
        """The edge's fork arrives — clean only if we genuinely outrank
        the sender.

        A clean fork encodes priority, and it is kept until its holder
        eats — so a clean landing at the wrong endpoint can block an edge
        forever.  The sender stamps the transfer with its last-meal
        recency; the fork lands clean only at a receiver that is hungry
        *and* ate less recently than the sender (see the module docstring
        for why weaker, session-local staleness rules admit clean-fork
        deadlock cycles under the suspicion override).  A non-hungry or
        more-recently-fed receiver gets it dirty: still usable for its
        next meal, but yieldable on request.
        """
        q = msg.sender
        theirs = tuple(msg.payload.get("last_meal", (0, 0.0)))
        fresh = (self.state is DinerState.HUNGRY
                 and self._outranks(q, theirs))
        self.fork[q] = True
        self.dirty[q] = not fresh
        self._requested.discard(q)

    def _outranks(self, q: ProcessId, their_meal: tuple[int, float]) -> bool:
        """Is our last meal older than ``q``'s (higher dining priority)?

        Never-eaten outranks has-eaten; among equals, earlier meal wins;
        exact ties break toward the higher pid, matching the initial
        orientation (lower id starts with the dirty fork, i.e. junior).
        """
        mine = self._last_meal
        if mine[0] != their_meal[0]:
            return mine[0] < their_meal[0]
        if mine[1] != their_meal[1]:
            return mine[1] < their_meal[1]
        return self.pid > q

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and all(self.fork[q] or self.suspect(q) for q in self.neighbors))
    def enter_critical_section(self) -> None:
        """The ◇WX scheduling rule: fork OR suspicion, for every neighbor."""
        self._begin_eating()

    @action(guard=lambda self: self.state is DinerState.EXITING)
    def finish_exiting(self) -> None:
        """Exiting completes in one step; deferred requests are honoured by
        :meth:`yield_dirty_forks` as soon as the scheduler reaches it."""
        self._set_state(DinerState.THINKING)

    # -- shared helpers (also used by the adversarial subclass) -----------------

    def _begin_eating(self) -> None:
        for q in self.neighbors:
            if self.fork[q]:
                self.dirty[q] = True  # eating dirties every held fork
        # Becoming the most recent eater demotes us below every neighbor;
        # for forks we do not hold (suspicion-override edges) the stamp
        # comparison in on_fork applies the demotion when they next arrive.
        self._last_meal = (1, float(self.process.env_now()))
        self._set_state(DinerState.EATING)

    # -- diagnostics -------------------------------------------------------------

    def holds_fork(self, q: ProcessId) -> bool:
        return self.fork[q]

    def fork_state(self) -> dict[ProcessId, tuple[bool, bool, bool]]:
        """``q -> (fork, dirty, token)`` snapshot (test aid)."""
        return {
            q: (self.fork[q], self.dirty[q], self.token[q])
            for q in self.neighbors
        }


class WaitFreeEWXDining(DiningInstance):
    """Factory for one WF-◇WX instance over an arbitrary conflict graph.

    ``suspicion_provider(pid)`` supplies each diner's local suspicion query;
    pass modules of :class:`~repro.oracles.EventuallyPerfectDetector` for the
    honest construction, or any other oracle to explore the hierarchy.
    """

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider) -> None:
        super().__init__(instance_id, graph)
        self.suspicion_provider = suspicion_provider

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> EWXDiner:
        return EWXDiner(
            self.component_name(), self.instance_id, neighbors,
            suspect=self.suspicion_provider(pid),
        )
