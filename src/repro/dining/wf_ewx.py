"""Wait-free dining under eventual weak exclusion, from ◇P.

This is the sufficiency-side algorithm (the paper's reference [12], Pike &
Song): classic hygienic dining (Chandy–Misra fork/request-token protocol)
with a *suspicion override* — a hungry diner may begin eating once, for
every neighbor, it either holds the shared fork or currently suspects the
neighbor per its local ◇P module.

Why the two properties hold:

* **Wait-freedom** — a crashed neighbor is eventually permanently suspected
  (◇P strong completeness), so its unrecoverable fork stops blocking anyone;
  among correct processes the hygienic clean/dirty priority gives classic
  starvation-freedom.
* **◇WX** — while ◇P makes mistakes a diner may eat without a live
  neighbor's fork, so both may eat together; once ◇P converges no correct
  neighbor is suspected, eating again requires real forks, and fork tokens
  are never duplicated — so live neighbors stop eating simultaneously.

Per-edge token discipline (the hygienic invariants, enforced and tested):

* exactly one **fork** and one **request token** per edge, on opposite
  sides or in transit;
* forks start dirty at the lower-id endpoint (an acyclic priority
  orientation);
* a holder yields a *dirty* fork on request unless eating (cleaning it in
  transit); a *clean* fork is kept until after the holder eats.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.dining.base import DinerComponent, DiningInstance, SuspicionProvider
from repro.sim.component import action, receive
from repro.types import DinerState, Message, ProcessId

Suspect = Callable[[ProcessId], bool]


class EWXDiner(DinerComponent):
    """One diner of a :class:`WaitFreeEWXDining` instance."""

    def __init__(self, name: str, instance_id: str,
                 neighbors: tuple[ProcessId, ...], suspect: Suspect) -> None:
        super().__init__(name, instance_id, neighbors)
        self.suspect = suspect
        # Initial orientation: the lower id holds the fork, dirty; the
        # higher id holds the request token.  Installed on attach (needs pid).
        self.fork: dict[ProcessId, bool] = {}
        self.dirty: dict[ProcessId, bool] = {}
        self.token: dict[ProcessId, bool] = {}
        #: Edges with an outstanding fork request, mapped to the eating
        #: session count at request time.  Prevents duplicate requests and
        #: lets :meth:`on_fork` recognize stale grants (see below).
        self._requested: dict[ProcessId, int] = {}

    def attached(self) -> None:
        super().attached()
        for q in self.neighbors:
            holds_fork = self.pid < q
            self.fork[q] = holds_fork
            self.dirty[q] = holds_fork  # all initial forks are dirty
            self.token[q] = not holds_fork

    # -- protocol actions ------------------------------------------------------

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and any(not self.fork[q] and self.token[q] and q not in self._requested
                    for q in self.neighbors))
    def request_missing_forks(self) -> None:
        """Hungry and missing forks: spend request tokens."""
        for q in self.neighbors:
            if not self.fork[q] and self.token[q] and q not in self._requested:
                self.token[q] = False
                self._requested[q] = self.sessions_eaten
                self.send(q, self.name, "req")

    @action(guard=lambda self: self.state is not DinerState.EATING
            and any(self.token[q] and self.fork[q] and self.dirty[q]
                    for q in self.neighbors))
    def yield_dirty_forks(self) -> None:
        """Honour requests: a dirty fork goes to the requester (cleaned)."""
        for q in self.neighbors:
            if self.token[q] and self.fork[q] and self.dirty[q]:
                self.fork[q] = False
                self.dirty[q] = False
                self.send(q, self.name, "fork")

    @receive("req")
    def on_request(self, msg: Message) -> None:
        """The edge's request token arrives (we now owe a fork, eventually)."""
        self.token[msg.sender] = True

    @receive("fork")
    def on_fork(self, msg: Message) -> None:
        """The edge's fork arrives — clean only if it answers the *current*
        hunger.

        A clean fork encodes priority: "the holder requested it for the
        meal it is about to have".  With the suspicion override we may have
        eaten (and possibly gotten hungry again) before a requested fork
        arrives.  Keeping such a stale grant clean would hand us priority
        over a neighbor that ate less recently — corrupting the hygienic
        precedence order into cycles (clean-fork deadlock) or stranding a
        clean fork at a thinking process forever.  So the fork lands clean
        only while we are still hungry in the same session that requested
        it; otherwise it lands dirty (yieldable on request).
        """
        q = msg.sender
        fresh = (self.state is DinerState.HUNGRY
                 and self._requested.get(q) == self.sessions_eaten)
        self.fork[q] = True
        self.dirty[q] = not fresh
        self._requested.pop(q, None)

    @action(guard=lambda self: self.state is DinerState.HUNGRY
            and all(self.fork[q] or self.suspect(q) for q in self.neighbors))
    def enter_critical_section(self) -> None:
        """The ◇WX scheduling rule: fork OR suspicion, for every neighbor."""
        self._begin_eating()

    @action(guard=lambda self: self.state is DinerState.EXITING)
    def finish_exiting(self) -> None:
        """Exiting completes in one step; deferred requests are honoured by
        :meth:`yield_dirty_forks` as soon as the scheduler reaches it."""
        self._set_state(DinerState.THINKING)

    # -- shared helpers (also used by the adversarial subclass) -----------------

    def _begin_eating(self) -> None:
        for q in self.neighbors:
            if self.fork[q]:
                self.dirty[q] = True  # eating dirties every held fork
        self._set_state(DinerState.EATING)

    # -- diagnostics -------------------------------------------------------------

    def holds_fork(self, q: ProcessId) -> bool:
        return self.fork[q]

    def fork_state(self) -> dict[ProcessId, tuple[bool, bool, bool]]:
        """``q -> (fork, dirty, token)`` snapshot (test aid)."""
        return {
            q: (self.fork[q], self.dirty[q], self.token[q])
            for q in self.neighbors
        }


class WaitFreeEWXDining(DiningInstance):
    """Factory for one WF-◇WX instance over an arbitrary conflict graph.

    ``suspicion_provider(pid)`` supplies each diner's local suspicion query;
    pass modules of :class:`~repro.oracles.EventuallyPerfectDetector` for the
    honest construction, or any other oracle to explore the hierarchy.
    """

    def __init__(self, instance_id: str, graph: nx.Graph,
                 suspicion_provider: SuspicionProvider) -> None:
        super().__init__(instance_id, graph)
        self.suspicion_provider = suspicion_provider

    def build_diner(self, pid: ProcessId,
                    neighbors: tuple[ProcessId, ...]) -> EWXDiner:
        return EWXDiner(
            self.component_name(), self.instance_id, neighbors,
            suspect=self.suspicion_provider(pid),
        )
