"""Environment drivers that exercise diners.

A client is a separate component that owns the *application side* of a
diner: deciding when to become hungry and how long to eat.  Clients are
environment code, so (unlike algorithm components) they may read the
global clock via ``env_now``.

All clients guarantee finite eating sessions — the precondition under
which the dining specification applies ("eating is always finite for
correct processes", Section 4).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError
from repro.sim.component import Component, action
from repro.types import DinerState, Time


class EagerClient(Component):
    """Becomes hungry again immediately after each thinking transition.

    Eating lasts ``eat_steps`` of this client's own actions — a clock-free
    duration, handy when the environment should be as asynchronous as the
    algorithms.
    """

    def __init__(self, name: str, diner: DinerComponent, eat_steps: int = 3,
                 max_sessions: Optional[int] = None) -> None:
        super().__init__(name)
        if eat_steps < 1:
            raise ConfigurationError("eat_steps must be >= 1")
        self.diner = diner
        self.eat_steps = int(eat_steps)
        self.max_sessions = max_sessions
        self._remaining = 0

    def _wants_more(self) -> bool:
        return self.max_sessions is None or self.diner.sessions_eaten < self.max_sessions

    @action(guard=lambda self: self.diner.state is DinerState.THINKING
            and self._wants_more())
    def get_hungry(self) -> None:
        self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def chew(self) -> None:
        if self._remaining == 0:
            self._remaining = self.eat_steps
        self._remaining -= 1
        if self._remaining == 0:
            self.diner.exit_eating()


class PeriodicClient(Component):
    """Thinks for a random while, eats for a random while, repeats.

    ``think_time`` and ``eat_time`` are ``(lo, hi)`` uniform ranges in
    virtual time; randomness comes from the supplied generator so runs stay
    reproducible.
    """

    def __init__(
        self,
        name: str,
        diner: DinerComponent,
        rng: np.random.Generator,
        think_time: tuple[Time, Time] = (5.0, 15.0),
        eat_time: tuple[Time, Time] = (2.0, 6.0),
    ) -> None:
        super().__init__(name)
        for lo, hi in (think_time, eat_time):
            if lo < 0 or hi < lo:
                raise ConfigurationError("time ranges must satisfy 0 <= lo <= hi")
        self.diner = diner
        self.rng = rng
        self.think_time = think_time
        self.eat_time = eat_time
        self._next_hungry_at: Optional[Time] = None
        self._eat_until: Optional[Time] = None

    @action(guard=lambda self: self.diner.state is DinerState.THINKING)
    def maybe_hungry(self) -> None:
        now = self.process.env_now()
        if self._next_hungry_at is None:
            self._next_hungry_at = now + float(self.rng.uniform(*self.think_time))
        if now >= self._next_hungry_at:
            self._next_hungry_at = None
            self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def maybe_exit(self) -> None:
        now = self.process.env_now()
        if self._eat_until is None:
            self._eat_until = now + float(self.rng.uniform(*self.eat_time))
        if now >= self._eat_until:
            self._eat_until = None
            self.diner.exit_eating()


class ScriptedClient(Component):
    """Becomes hungry at the scripted times, eating ``eat_time`` each session.

    Deterministic; used by unit tests that need exact contention patterns.
    """

    def __init__(self, name: str, diner: DinerComponent,
                 hungry_times: Sequence[Time], eat_time: Time = 3.0) -> None:
        super().__init__(name)
        self.diner = diner
        self.hungry_times = sorted(hungry_times)
        self.eat_time = float(eat_time)
        self._idx = 0
        self._eat_until: Optional[Time] = None

    @action(guard=lambda self: self.diner.state is DinerState.THINKING
            and self._idx < len(self.hungry_times))
    def scripted_hunger(self) -> None:
        if self.process.env_now() >= self.hungry_times[self._idx]:
            self._idx += 1
            self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def timed_exit(self) -> None:
        now = self.process.env_now()
        if self._eat_until is None:
            self._eat_until = now + self.eat_time
        if now >= self._eat_until:
            self._eat_until = None
            self.diner.exit_eating()
