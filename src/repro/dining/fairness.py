"""Eventual k-fairness measurement (paper Section 8).

*Eventual k-fairness* ([13]): for each run there is a time after which no
process enters its critical section more than ``k`` consecutive times while
any correct neighbor remains hungry.  We measure the equivalent overtaking
statistic from traces: for every maximal hungry interval of a diner, how
many times did each neighbor start eating inside it?

The paper's secondary result: composing any WF-◇WX solution with the
reduction (→ ◇P) and the construction of [13] (→ fair dining) yields
eventual 2-fairness.  Our ◇P-based hygienic algorithm exhibits eventual
bounded overtaking directly, which experiment E6 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.dining.spec import OvertakeSample, eventual_k_fairness, overtake_samples
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace
from repro.types import ProcessId, Time


@dataclass
class FairnessReport:
    """Overtaking statistics for one instance."""

    instance: str
    samples: list[OvertakeSample] = field(default_factory=list)

    def worst_overall(self) -> int:
        return max((s.count for s in self.samples), default=0)

    def worst_after(self, t: Time) -> int:
        return max((s.count for s in self.samples if s.hungry_start >= t), default=0)

    def eventual_k(self, horizon: Time) -> Optional[int]:
        """Smallest k such that all samples after ``horizon`` respect k."""
        return self.worst_after(horizon)

    def convergence_to_k(self, k: int) -> Optional[Time]:
        """Earliest hungry-start time from which every sample has count <= k.

        ``None`` when the final suffix exceeds ``k`` — including the case
        where the last sample itself offends, so no fair suffix was ever
        *witnessed* (an empty suffix is not evidence of convergence).
        """
        offenders = [s.hungry_start for s in self.samples if s.count > k]
        if not offenders:
            return 0.0
        cutoff = max(offenders) + 1e-9
        witnessed = any(s.hungry_start >= cutoff for s in self.samples)
        if not witnessed:
            return None
        ok, _ = eventual_k_fairness(self.samples, k, after=cutoff)
        return cutoff if ok else None

    def per_pair_worst(self) -> dict[tuple[ProcessId, ProcessId], int]:
        out: dict[tuple[ProcessId, ProcessId], int] = {}
        for s in self.samples:
            key = (s.waiter, s.eater)
            out[key] = max(out.get(key, 0), s.count)
        return out

    def format_table(self) -> str:
        lines = [
            f"fairness[{self.instance}]: worst overtaking {self.worst_overall()}"
        ]
        for (w, e), n in sorted(self.per_pair_worst().items()):
            lines.append(f"  {e} overtook hungry {w} up to {n}x")
        return "\n".join(lines)


def measure_fairness(
    trace: Trace,
    graph: nx.Graph,
    instance: str,
    end_time: Time,
    schedule: CrashSchedule | None = None,
) -> FairnessReport:
    """Collect overtaking samples for correct waiters.

    Crashed waiters are excluded (fairness protects *correct* hungry
    processes); crashed eaters still count as overtakers while live.
    """
    samples = overtake_samples(trace, graph, instance, end_time)
    if schedule is not None:
        samples = [s for s in samples if not schedule.is_faulty(s.waiter)]
    return FairnessReport(instance=instance, samples=list(samples))
