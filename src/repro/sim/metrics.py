"""Run metrics: message, step, and event accounting.

A :class:`RunMetrics` snapshot summarizes the cost of a run; experiment
E12 (reduction overhead) is built on these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class RunMetrics:
    """Immutable cost summary of a simulation run."""

    virtual_time: float
    events_processed: int
    messages_sent: int
    messages_delivered: int
    messages_by_kind: Mapping[str, int]
    steps_by_process: Mapping[str, int]
    #: Wire messages lost to link faults (0 on reliable channels).
    messages_dropped: int = 0
    #: Wire messages duplicated by link faults.
    messages_duplicated: int = 0
    #: Transport retransmissions (0 when no transport is installed).
    retransmissions: int = 0

    @property
    def total_steps(self) -> int:
        return sum(self.steps_by_process.values())

    def messages_per_time(self) -> float:
        """Average message rate over virtual time (0 for an empty run)."""
        if self.virtual_time <= 0:
            return 0.0
        return self.messages_sent / self.virtual_time

    def format_table(self) -> str:
        """Human-readable one-block summary."""
        lines = [
            f"virtual time        : {self.virtual_time:.1f}",
            f"events processed    : {self.events_processed}",
            f"messages sent       : {self.messages_sent}",
            f"messages delivered  : {self.messages_delivered}",
            f"messages dropped    : {self.messages_dropped}",
            f"messages duplicated : {self.messages_duplicated}",
            f"retransmissions     : {self.retransmissions}",
            f"total process steps : {self.total_steps}",
            "messages by kind    :",
        ]
        for kind, n in sorted(self.messages_by_kind.items()):
            lines.append(f"  {kind:<18}: {n}")
        return "\n".join(lines)


def collect_metrics(engine: "Engine") -> RunMetrics:
    """Snapshot the cost counters of ``engine``."""
    transport = engine.network.transport
    return RunMetrics(
        virtual_time=engine.clock.now,
        events_processed=engine.events_processed,
        messages_sent=engine.network.sent,
        messages_delivered=engine.network.delivered,
        messages_by_kind=dict(engine.network.sent_by_kind),
        steps_by_process={
            pid: proc.steps_taken for pid, proc in engine.processes.items()
        },
        messages_dropped=engine.network.dropped,
        messages_duplicated=engine.network.duplicated,
        retransmissions=0 if transport is None else transport.retransmissions,
    )
