"""Run metrics: message, step, and event accounting.

A :class:`RunMetrics` summarizes the cost of a run; experiment E12
(reduction overhead) is built on these numbers.

Since the observability layer landed, every traffic counter already
lives in the engine's :class:`~repro.obs.registry.MetricsRegistry`
(``net.*``, ``transport.*``).  :class:`RunMetrics` is therefore no
longer a second accounting system: it is a **read-only view** over a
:class:`~repro.obs.registry.MetricsSnapshot`, with the historical field
names (``messages_sent``, ``steps_by_process``, ...) preserved as
properties.  :func:`collect_metrics` publishes the engine-side facts the
registry did not already hold (virtual time, processed events, per-
process step counts — as ``sim.*`` gauges) and freezes one snapshot that
backs both ``RunResult.metrics`` and ``RunResult.obs``.

.. deprecated::
    Constructing ``RunMetrics`` from loose keyword values
    (``RunMetrics(virtual_time=..., messages_sent=...)``) predates the
    registry and is kept only for backward compatibility — it builds a
    synthetic snapshot under the hood (see :meth:`RunMetrics.from_values`).
    New code should read metrics off a run's snapshot instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.obs.registry import MetricsRegistry, MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

#: Registry names backing the legacy view fields.
_G_VIRTUAL_TIME = "sim.virtual_time"
_G_EVENTS = "sim.events_processed"
_G_STEPS_PREFIX = 'sim.steps{process="'
_C_SENT = "net.messages_sent"
_C_SENT_KIND_PREFIX = 'net.messages_sent{kind="'
_C_DELIVERED = "net.messages_delivered"
_C_DROPPED = "net.messages_dropped"
_C_DUPLICATED = "net.messages_duplicated"
_C_RETRANSMISSIONS = "transport.retransmissions"


def _labelled(mapping: Mapping[str, float], prefix: str) -> dict[str, int]:
    """Decode single-label series ``name{label="value"}`` -> value map."""
    out: dict[str, int] = {}
    for full, v in mapping.items():
        if full.startswith(prefix) and full.endswith('"}'):
            out[full[len(prefix):-2]] = int(v)
    return out


class RunMetrics:
    """Read-only cost summary of a run, viewing its metrics snapshot.

    All fields are derived properties over :attr:`snapshot`; nothing is
    stored twice, so this view and every registry exporter necessarily
    agree.  Instances pickle (the snapshot is plain data) and compare by
    snapshot value.
    """

    __slots__ = ("snapshot",)

    def __init__(self, snapshot: Optional[MetricsSnapshot] = None,
                 **legacy: Any) -> None:
        if snapshot is None:
            # Deprecated keyword-value construction (see module docstring).
            snapshot = RunMetrics.from_values(**legacy).snapshot
        elif legacy:
            raise TypeError(
                "pass either a MetricsSnapshot or legacy keyword values, "
                "not both")
        self.snapshot = snapshot

    @classmethod
    def from_values(
        cls,
        virtual_time: float = 0.0,
        events_processed: int = 0,
        messages_sent: int = 0,
        messages_delivered: int = 0,
        messages_by_kind: Optional[Mapping[str, int]] = None,
        steps_by_process: Optional[Mapping[str, int]] = None,
        messages_dropped: int = 0,
        messages_duplicated: int = 0,
        retransmissions: int = 0,
    ) -> "RunMetrics":
        """Build a view over a synthetic snapshot (tests, legacy callers)."""
        reg = MetricsRegistry()
        reg.gauge(_G_VIRTUAL_TIME).set(float(virtual_time))
        reg.gauge(_G_EVENTS).set(float(events_processed))
        reg.counter(_C_SENT).inc(messages_sent)
        reg.counter(_C_DELIVERED).inc(messages_delivered)
        reg.counter(_C_DROPPED).inc(messages_dropped)
        reg.counter(_C_DUPLICATED).inc(messages_duplicated)
        reg.counter(_C_RETRANSMISSIONS).inc(retransmissions)
        for kind, n in (messages_by_kind or {}).items():
            reg.counter(_C_SENT, kind=kind).inc(n)
        for pid, n in (steps_by_process or {}).items():
            reg.gauge("sim.steps", process=str(pid)).set(float(n))
        return cls(reg.snapshot())

    # -- the historical fields, now registry-backed --------------------------

    @property
    def virtual_time(self) -> float:
        return float(self.snapshot.gauge_value(_G_VIRTUAL_TIME, 0.0))

    @property
    def events_processed(self) -> int:
        return int(self.snapshot.gauge_value(_G_EVENTS, 0.0))

    @property
    def messages_sent(self) -> int:
        return int(self.snapshot.counter_value(_C_SENT))

    @property
    def messages_delivered(self) -> int:
        return int(self.snapshot.counter_value(_C_DELIVERED))

    @property
    def messages_by_kind(self) -> dict[str, int]:
        return _labelled(self.snapshot.counters, _C_SENT_KIND_PREFIX)

    @property
    def steps_by_process(self) -> dict[str, int]:
        return _labelled(self.snapshot.gauges, _G_STEPS_PREFIX)

    @property
    def messages_dropped(self) -> int:
        """Wire messages lost to link faults (0 on reliable channels)."""
        return int(self.snapshot.counter_value(_C_DROPPED))

    @property
    def messages_duplicated(self) -> int:
        """Wire messages duplicated by link faults."""
        return int(self.snapshot.counter_value(_C_DUPLICATED))

    @property
    def retransmissions(self) -> int:
        """Transport retransmissions (0 when no transport is installed)."""
        return int(self.snapshot.counter_value(_C_RETRANSMISSIONS))

    @property
    def total_steps(self) -> int:
        return sum(self.steps_by_process.values())

    # -- derived views --------------------------------------------------------

    def messages_per_time(self) -> float:
        """Average message rate over virtual time (0 for an empty run)."""
        if self.virtual_time <= 0:
            return 0.0
        return self.messages_sent / self.virtual_time

    def format_table(self) -> str:
        """Human-readable one-block summary."""
        lines = [
            f"virtual time        : {self.virtual_time:.1f}",
            f"events processed    : {self.events_processed}",
            f"messages sent       : {self.messages_sent}",
            f"messages delivered  : {self.messages_delivered}",
            f"messages dropped    : {self.messages_dropped}",
            f"messages duplicated : {self.messages_duplicated}",
            f"retransmissions     : {self.retransmissions}",
            f"total process steps : {self.total_steps}",
            "messages by kind    :",
        ]
        for kind, n in sorted(self.messages_by_kind.items()):
            lines.append(f"  {kind:<18}: {n}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunMetrics):
            return NotImplemented
        return self.snapshot == other.snapshot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunMetrics(sent={self.messages_sent}, "
                f"delivered={self.messages_delivered}, "
                f"events={self.events_processed}, "
                f"t={self.virtual_time:.1f})")


def collect_metrics(engine: "Engine") -> RunMetrics:
    """Freeze ``engine``'s cost counters into a registry-backed view.

    Publishes the engine-side facts the registry does not hold on its own
    (virtual time, processed events, per-process step counts) as ``sim.*``
    gauges, finalizes the convergence probes, and snapshots once — the
    returned view and :meth:`Engine.metrics_snapshot` therefore report
    from the same numbers.
    """
    reg = engine.registry
    reg.gauge(_G_VIRTUAL_TIME).set(float(engine.clock.now))
    reg.gauge(_G_EVENTS).set(float(engine.events_processed))
    for pid, proc in engine.processes.items():
        reg.gauge("sim.steps", process=str(pid)).set(float(proc.steps_taken))
    return RunMetrics(engine.metrics_snapshot())
