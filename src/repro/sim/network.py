"""Message channels with pluggable delay and link-fault models.

By default, channel semantics follow the paper's Section 4 exactly:

* **Reliable** — every message sent to a correct process is eventually
  delivered; messages are neither lost, duplicated, nor corrupted.
* **Non-FIFO** — each message gets an independent random delay, so later
  messages can overtake earlier ones.

Two optional layers relax and then restore that contract:

* a :class:`~repro.sim.link_faults.LinkFaultModel` makes the wire
  fair-lossy (drops, duplicates, scheduled partitions), composing with
  any delay model — the fault model picks how many copies survive, the
  delay model picks when each copy arrives;
* a :class:`~repro.sim.transport.ReliableTransport`, once installed,
  carries all application traffic in retransmitted, deduplicated wire
  envelopes, re-establishing reliable exactly-once delivery over the
  faulty wire with zero changes to algorithm code.

Delay models encode the synchrony assumptions:

* :class:`AsynchronousDelays` — unbounded (heavy-tailed) delays; the pure
  asynchronous model in which the reduction algorithm must work.
* :class:`PartialSynchronyDelays` — arbitrary delays before an (unknown)
  global stabilization time ``gst``, bounded by ``delta`` afterwards; the
  model in which a *native* eventually-perfect detector is implementable
  (used only by :mod:`repro.oracles.eventually_perfect`).
* :class:`FixedDelays` — constant delay; useful in unit tests.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.sim.transport import TRANSPORT_TAG
from repro.types import Message, ProcessId, Time

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.link_faults import LinkFaultModel
    from repro.sim.transport import ReliableTransport


class DelayModel(abc.ABC):
    """Maps each sent message to a strictly positive delivery delay."""

    #: True when every draw this model makes goes through ``rng.random()``
    #: or ``rng.uniform(lo, hi)`` (one underlying uniform double per call).
    #: The network then serves the shared ``"network"`` stream from a
    #: prefetched :class:`~repro.sim.rng.BatchedDoubles` view with
    #: bit-identical results.  Models drawing from any other distribution
    #: (e.g. lognormal, whose ziggurat consumes a variable number of
    #: underlying draws) must leave this False — the conservative default
    #: for external subclasses.
    uniform_only: bool = False

    @abc.abstractmethod
    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        """Return the channel delay for ``msg`` sent at time ``now``."""


class FixedDelays(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    uniform_only = True  # draws nothing at all

    def __init__(self, delay: Time = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self._delay = float(delay)

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        return self._delay


class AsynchronousDelays(DelayModel):
    """Unbounded delays: lognormal body with occasional heavy stragglers.

    ``median`` is the *median* of the lognormal body (``exp(mu)``); the
    distribution's mean is larger, ``median * exp(sigma**2 / 2)``, plus the
    straggler contribution.  ``straggler_prob`` of messages take an extra
    uniform(0, straggler_max) delay, modelling arbitrarily slow channels.
    All delays are finite (reliability), but no bound is promised to the
    algorithms.
    """

    def __init__(
        self,
        median: Time = 1.0,
        sigma: float = 0.5,
        straggler_prob: float = 0.05,
        straggler_max: Time = 25.0,
    ) -> None:
        self.median = float(median)
        self.sigma = float(sigma)
        self.straggler_prob = float(straggler_prob)
        self.straggler_max = float(straggler_max)

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        d = float(rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        if rng.random() < self.straggler_prob:
            d += float(rng.uniform(0.0, self.straggler_max))
        return max(d, 1e-9)


class PartialSynchronyDelays(DelayModel):
    """GST-style partial synchrony (Dwork-Lynch-Stockmeyer / Chandra-Toueg).

    Before the (algorithm-unknown) global stabilization time ``gst``,
    delays are chaotic: uniform in ``(0, pre_gst_max]``.  From ``gst`` on,
    every delay is at most ``delta``.
    """

    uniform_only = True

    def __init__(self, gst: Time, delta: Time = 1.0, pre_gst_max: Time = 30.0) -> None:
        if delta <= 0 or pre_gst_max <= 0:
            raise ValueError("delta and pre_gst_max must be positive")
        self.gst = float(gst)
        self.delta = float(delta)
        self.pre_gst_max = float(pre_gst_max)

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        if now >= self.gst:
            return float(rng.uniform(0.1 * self.delta, self.delta))
        # Chaotic period: the draw may be long, but every message sent
        # before GST is delivered by gst + delta, so that post-GST the
        # channel bound delta holds for all in-flight traffic (standard
        # GST semantics, needed for heartbeat timeouts to converge).
        deliver_at = now + float(rng.uniform(1e-9, self.pre_gst_max))
        cap = self.gst + float(rng.uniform(0.1 * self.delta, self.delta))
        return max(min(deliver_at, cap) - now, 1e-9)


class Network:
    """Routes messages between processes through the engine's event queue.

    ``send`` is the application-level entry point (counted in ``sent``);
    ``transmit`` is the raw wire below any installed transport, where the
    optional link-fault model drops, duplicates, or partitions traffic.
    """

    def __init__(self, delay_model: DelayModel,
                 fault_model: "LinkFaultModel | None" = None) -> None:
        self.delay_model = delay_model
        self.fault_model = fault_model
        #: Installed by :meth:`repro.sim.transport.ReliableTransport.install`.
        self.transport: "ReliableTransport | None" = None
        self._engine: "Engine | None" = None
        # Wire RNG views; populated at bind() (send/transmit require it).
        self._rng_faults = None
        self._rng_wire = None
        self._wire_model: DelayModel | None = None
        self._bind_registry(MetricsRegistry())
        #: Optional hook (msg -> None) observed on every send; used by
        #: tests and metrics, never by algorithms.
        self.on_send: Optional[Callable[[Message], None]] = None

    def _bind_registry(self, registry: MetricsRegistry) -> None:
        """Report into ``registry`` (the engine's, once bound).

        All traffic counters live in the metrics registry; the classic
        ``sent`` / ``dropped`` / ... attributes below are read-only views
        over it, so one source of truth feeds both the in-process API and
        every exporter.
        """
        self._registry = registry
        self._c_sent = registry.counter("net.messages_sent")
        self._c_delivered = registry.counter("net.messages_delivered")
        self._c_dropped = registry.counter("net.messages_dropped")
        self._c_duplicated = registry.counter("net.messages_duplicated")
        self._kinds_sent: set[str] = set()
        self._kinds_dropped: set[str] = set()
        # Per-kind counter caches: labelled registry lookups format a label
        # suffix on every call, far too slow for the per-message path.
        self._c_sent_kind: dict[str, object] = {}
        self._c_dropped_kind: dict[str, object] = {}

    def bind(self, engine: "Engine") -> None:
        self._engine = engine
        self._bind_registry(engine.registry)
        # Wire-path RNG views, fixed at bind time.  The link-faults stream
        # only ever sees random() draws, so it is always batchable; the
        # shared delay stream is batchable only when the delay model
        # advertises one-uniform-double-per-call draws.
        self._rng_faults = engine.rng.batched("link-faults")
        self._rebind_wire_rng()

    def _rebind_wire_rng(self) -> None:
        self._wire_model = self.delay_model
        if self.delay_model.uniform_only:
            self._rng_wire = self._engine.rng.batched("network")
        else:
            self._rng_wire = self._engine.rng.stream("network")

    # -- traffic counters (registry-backed views) ----------------------------

    @property
    def sent(self) -> int:
        return int(self._c_sent.value)

    @property
    def delivered(self) -> int:
        return int(self._c_delivered.value)

    @property
    def dropped(self) -> int:
        return int(self._c_dropped.value)

    @property
    def duplicated(self) -> int:
        return int(self._c_duplicated.value)

    @property
    def sent_by_kind(self) -> dict[str, int]:
        return {
            k: int(self._registry.counter("net.messages_sent", kind=k).value)
            for k in sorted(self._kinds_sent)
        }

    @property
    def dropped_by_kind(self) -> dict[str, int]:
        return {
            k: int(self._registry.counter("net.messages_dropped", kind=k).value)
            for k in sorted(self._kinds_dropped)
        }

    def send(self, msg: Message) -> None:
        """Accept an application message for delayed, non-FIFO delivery.

        With no fault model the channel is reliable (Section 4).  With a
        fault model but no transport, the wire's faults reach the
        application — deliberately, for chaos experiments.  With a
        transport installed, the message is carried reliably over the
        faulty wire instead.
        """
        engine = self._engine
        assert engine is not None, "network not bound to an engine"
        self._c_sent.inc()
        kind = msg.kind
        c_kind = self._c_sent_kind.get(kind)
        if c_kind is None:
            c_kind = self._registry.counter("net.messages_sent", kind=kind)
            self._c_sent_kind[kind] = c_kind
            self._kinds_sent.add(kind)
        c_kind.inc()
        if self.on_send is not None:
            self.on_send(msg)
        if engine.config.record_messages:
            engine.trace.record(
                "send", pid=msg.sender, to=msg.receiver, tag=msg.tag,
                msg_kind=msg.kind, uid=msg.uid,
            )
        transport = self.transport
        if transport is not None and msg.tag != TRANSPORT_TAG:
            transport.wrap_and_send(msg)
        else:
            self.transmit(msg)

    def transmit(self, msg: Message) -> None:
        """Put ``msg`` on the raw wire: fault verdict, then delay per copy."""
        engine = self._engine
        assert engine is not None, "network not bound to an engine"
        now = engine.clock._now
        copies = 1
        if self.fault_model is not None:
            fate = self.fault_model.fate(msg, now, self._rng_faults)
            if fate.copies == 0:
                self._c_dropped.inc()
                kind = msg.kind
                c_kind = self._c_dropped_kind.get(kind)
                if c_kind is None:
                    c_kind = self._registry.counter(
                        "net.messages_dropped", kind=kind)
                    self._c_dropped_kind[kind] = c_kind
                    self._kinds_dropped.add(kind)
                c_kind.inc()
                if engine.config.record_messages:
                    engine.trace.record(
                        "drop", pid=msg.sender, to=msg.receiver, tag=msg.tag,
                        msg_kind=msg.kind, uid=msg.uid, reason=fate.reason,
                    )
                return
            if fate.copies > 1:
                self._c_duplicated.inc()
            copies = fate.copies
        delay_model = self.delay_model
        if delay_model is not self._wire_model:
            self._rebind_wire_rng()
        rng = self._rng_wire
        if copies == 1:
            d = delay_model.delay(msg, now, rng)
            engine._push(now + d, "deliver", msg)
        else:
            for _ in range(copies):
                d = delay_model.delay(msg, now, rng)
                engine._push(now + d, "deliver", msg)

    def note_delivered(self, msg: Message) -> None:
        self._c_delivered.inc()


def mean_delay_estimate(model: DelayModel, now: Time, samples: int = 256,
                        seed: int = 0) -> float:
    """Monte-Carlo estimate of a model's *mean* delay at time ``now``.

    Test aid.  Note the estimate is the distribution mean, not the median:
    for :class:`AsynchronousDelays` it approaches
    ``median * exp(sigma**2 / 2)`` plus the straggler contribution, not the
    ``median`` parameter itself.
    """
    rng = np.random.default_rng(seed)
    probe = Message(sender="a", receiver="b", tag="t", kind="probe")
    return float(np.mean([model.delay(probe, now, rng) for _ in range(samples)]))
