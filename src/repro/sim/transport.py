"""Reliable non-FIFO channel emulation over fair-lossy links.

The paper's algorithms assume reliable channels (Section 4): every message
sent to a correct process is delivered exactly once.  When a
:class:`~repro.sim.link_faults.LinkFaultModel` makes the wire fair-lossy,
:class:`ReliableTransport` restores exactly that contract — transparently,
so witness/subject threads, dining boxes, and detectors run *unchanged*:

* every application message is wrapped in a sequence-numbered ``rtp.data``
  envelope on a per-directed-link sequence space;
* the receiver acknowledges every data envelope (``rtp.ack``), including
  re-received duplicates, so lost acks are also recovered;
* unacked envelopes are retransmitted with exponential backoff plus
  seeded jitter (capped at ``rto_max``, so retry traffic stays bounded);
* the receiver deduplicates by ``(link, seq)`` before handing the inner
  message to the process inbox — faults may duplicate wire envelopes, but
  the application sees each message exactly once.

Fair-lossy links guarantee that a message retransmitted forever between
correct processes is eventually delivered, and likewise its ack — so the
emulated channel is *reliable*; delivery order stays arbitrary (non-FIFO),
matching the paper's channel model.  Retransmission to a crashed receiver
is cut short using engine ground truth: the paper's model does not promise
delivery to crashed processes, and an eternal retry chain would only burn
event budget.

The transport is infrastructure, not algorithm code: it lives on the
engine's wire path (no process steps are consumed) and draws all timing
jitter from the seeded ``"transport"`` stream, keeping runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.obs.registry import MetricsRegistry
from repro.types import Message, Time

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

from repro.sim.link_faults import Link

#: Tag reserved for transport wire envelopes; never a component name.
TRANSPORT_TAG = "__rtp__"
DATA_KIND = "rtp.data"
ACK_KIND = "rtp.ack"


@dataclass(frozen=True)
class RetransmitPolicy:
    """Retransmission timing: exponential backoff with seeded jitter.

    The first retry fires ``rto_initial`` (±``jitter`` fraction) after the
    original send; each subsequent retry multiplies the timeout by
    ``backoff`` up to ``rto_max``.
    """

    rto_initial: Time = 8.0
    rto_max: Time = 120.0
    backoff: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.rto_initial <= 0 or self.rto_max < self.rto_initial:
            raise ConfigurationError("need 0 < rto_initial <= rto_max")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")


@dataclass
class _Pending:
    """One unacknowledged application message."""

    inner: Message
    rto: Time
    attempts: int = 0


@dataclass
class TransportStats:
    """Counter snapshot (see :meth:`ReliableTransport.stats`)."""

    data_sent: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    duplicates_suppressed: int = 0
    delivered_unique: int = 0
    abandoned: int = 0


class ReliableTransport:
    """Sequence/ack/retransmit layer between ``Network.send`` and inboxes.

    Install with :meth:`install`; from then on every application message
    routed through the network is carried by the transport.  The wire
    envelopes themselves traverse the raw (possibly faulty) channel via
    ``Network.transmit``.
    """

    def __init__(self, policy: RetransmitPolicy | None = None) -> None:
        self.policy = policy or RetransmitPolicy()
        self._engine: "Engine | None" = None
        self._rng = None  # batched "transport" stream, set at install()
        self._next_seq: dict[Link, int] = {}
        self._pending: dict[tuple[Link, int], _Pending] = {}
        # Per-link dedup state: [highest contiguous seq seen, sparse seqs above].
        self._seen: dict[Link, list] = {}
        self._bind_registry(MetricsRegistry())

    def _bind_registry(self, registry: MetricsRegistry) -> None:
        """Report counters into ``registry`` (the engine's, once installed)."""
        self._c_data_sent = registry.counter("transport.data_sent")
        self._c_retransmissions = registry.counter("transport.retransmissions")
        self._c_acks_sent = registry.counter("transport.acks_sent")
        self._c_dup_suppressed = registry.counter(
            "transport.duplicates_suppressed")
        self._c_delivered_unique = registry.counter(
            "transport.delivered_unique")
        self._c_abandoned = registry.counter("transport.abandoned")

    # -- wiring ---------------------------------------------------------------

    def install(self, engine: "Engine") -> "ReliableTransport":
        """Attach to ``engine``: all application traffic now flows through
        this transport.  Returns self for chaining."""
        if self._engine is not None:
            raise ConfigurationError("transport already installed")
        if engine.network.transport is not None:
            raise ConfigurationError("engine already has a transport")
        self._engine = engine
        engine.network.transport = self
        self._bind_registry(engine.registry)
        # Retransmission jitter only ever draws single uniform doubles, so
        # the seeded "transport" stream is served batched (bit-identical).
        self._rng = engine.rng.batched("transport")
        return self

    # -- counters (registry-backed views) --------------------------------------

    @property
    def data_sent(self) -> int:
        return int(self._c_data_sent.value)

    @property
    def retransmissions(self) -> int:
        return int(self._c_retransmissions.value)

    @property
    def acks_sent(self) -> int:
        return int(self._c_acks_sent.value)

    @property
    def duplicates_suppressed(self) -> int:
        return int(self._c_dup_suppressed.value)

    @property
    def delivered_unique(self) -> int:
        return int(self._c_delivered_unique.value)

    @property
    def abandoned(self) -> int:
        return int(self._c_abandoned.value)

    def owns(self, msg: Message) -> bool:
        """Is ``msg`` a transport wire envelope (vs. application traffic)?"""
        return msg.tag == TRANSPORT_TAG

    # -- send path (called by Network.send) ------------------------------------

    def wrap_and_send(self, msg: Message) -> None:
        """Carry application message ``msg`` reliably to its receiver."""
        engine = self._require_engine()
        link: Link = (msg.sender, msg.receiver)
        seq = self._next_seq.get(link, 0) + 1
        self._next_seq[link] = seq
        self._pending[(link, seq)] = _Pending(inner=msg,
                                              rto=self.policy.rto_initial)
        self._c_data_sent.inc()
        self._transmit_data(link, seq, msg)
        self._arm_timer(link, seq)

    # -- receive path (called by Engine._do_deliver) -----------------------------

    def on_wire_deliver(self, envelope: Message) -> None:
        """Handle a wire envelope reaching a live process."""
        engine = self._engine  # delivery implies installed
        seq = int(envelope.payload["seq"])
        if envelope.kind == DATA_KIND:
            link: Link = (envelope.sender, envelope.receiver)
            # Ack unconditionally — re-received duplicates mean the previous
            # ack was (or may have been) lost.
            ack = Message(sender=envelope.receiver, receiver=envelope.sender,
                          tag=TRANSPORT_TAG, kind=ACK_KIND,
                          payload={"seq": seq})
            self._c_acks_sent.inc()
            engine.network.transmit(ack)
            if self._mark_seen(link, seq):
                inner: Message = envelope.payload["inner"]
                self._c_delivered_unique.inc()
                engine.deliver_payload(inner)
            else:
                self._c_dup_suppressed.inc()
        elif envelope.kind == ACK_KIND:
            link = (envelope.receiver, envelope.sender)
            self._pending.pop((link, seq), None)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown transport envelope {envelope!r}")

    # -- internals --------------------------------------------------------------

    def _transmit_data(self, link: Link, seq: int, inner: Message) -> None:
        engine = self._engine
        envelope = Message(sender=link[0], receiver=link[1],
                           tag=TRANSPORT_TAG, kind=DATA_KIND,
                           payload={"seq": seq, "inner": inner})
        engine.network.transmit(envelope)

    def _arm_timer(self, link: Link, seq: int) -> None:
        engine = self._engine
        entry = self._pending.get((link, seq))
        if entry is None:  # pragma: no cover - defensive
            return
        spread = self.policy.jitter * entry.rto
        delay = entry.rto + (self._rng.uniform(-spread, spread) if spread
                             else 0.0)
        engine.schedule_call(engine.clock._now + max(delay, 1e-9),
                             lambda: self._on_timer(link, seq))

    def _on_timer(self, link: Link, seq: int) -> None:
        engine = self._engine
        entry = self._pending.get((link, seq))
        if entry is None:
            return  # acked in the meantime
        sender, receiver = link
        sender_proc = engine.processes.get(sender)
        receiver_proc = engine.processes.get(receiver)
        if (sender_proc is None or sender_proc.crashed
                or receiver_proc is None or receiver_proc.crashed):
            # A crashed sender stops (crash-stop); a crashed receiver will
            # never ack and is owed no delivery — drop the retry chain.
            del self._pending[(link, seq)]
            self._c_abandoned.inc()
            return
        entry.attempts += 1
        entry.rto = min(entry.rto * self.policy.backoff, self.policy.rto_max)
        self._c_retransmissions.inc()
        self._transmit_data(link, seq, entry.inner)
        self._arm_timer(link, seq)

    def _mark_seen(self, link: Link, seq: int) -> bool:
        """Record ``seq`` on ``link``; False if it was already delivered.

        Dedup state is compacted to a contiguous watermark plus a sparse
        set of out-of-order seqs, so memory stays proportional to the
        reordering window rather than the run length.
        """
        state = self._seen.setdefault(link, [0, set()])
        watermark, sparse = state
        if seq <= watermark or seq in sparse:
            return False
        sparse.add(seq)
        while watermark + 1 in sparse:
            watermark += 1
            sparse.discard(watermark)
        state[0] = watermark
        return True

    def in_flight(self) -> int:
        """Number of not-yet-acknowledged application messages."""
        return len(self._pending)

    def stats(self) -> TransportStats:
        """Immutable-ish snapshot of the transport counters."""
        return TransportStats(
            data_sent=self.data_sent,
            retransmissions=self.retransmissions,
            acks_sent=self.acks_sent,
            duplicates_suppressed=self.duplicates_suppressed,
            delivered_unique=self.delivered_unique,
            abandoned=self.abandoned,
        )

    def _require_engine(self) -> "Engine":
        if self._engine is None:
            raise SimulationError("transport not installed on an engine")
        return self._engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ReliableTransport(pending={len(self._pending)}, "
                f"sent={self.data_sent}, rexmit={self.retransmissions})")
