"""A shared-memory substrate: atomic registers with read/write/CAS.

The paper's footnote 1 notes its results transfer to shared-memory
systems, and the contention-manager discussion (Sections 2–3) is set in
shared memory.  This module provides that substrate: a
:class:`SharedMemory` is a bank of named atomic registers accessible from
any component.

**Atomicity model.**  The engine executes one guarded action at a time
(interleaving semantics), so a register operation performed inside an
action is atomic by construction — exactly the standard "one shared-memory
operation per atomic step" model.  Algorithms that care about the
one-op-per-step discipline must structure their actions accordingly (the
DSTM implementation in :mod:`repro.apps.dstm` does); the substrate itself
enforces only atomicity, not the op-per-step budget.

Crash semantics: a crashed process simply stops taking steps; values it
wrote remain visible (shared memory is not wiped by crashes) — which is
precisely why obstruction-free designs avoid locks.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

Register = Hashable


class SharedMemory:
    """A bank of named atomic registers.

    Register names are arbitrary hashable keys (tuples like
    ``("orec", "x")`` read well).  Unwritten registers read as ``default``.
    """

    def __init__(self) -> None:
        self._regs: dict[Register, Any] = {}
        self.reads = 0
        self.writes = 0
        self.cas_attempts = 0
        self.cas_successes = 0

    def read(self, name: Register, default: Any = None) -> Any:
        """Atomic read."""
        self.reads += 1
        return self._regs.get(name, default)

    def write(self, name: Register, value: Any) -> None:
        """Atomic write."""
        self.writes += 1
        self._regs[name] = value

    def cas(self, name: Register, expected: Any, new: Any,
            default: Any = None) -> bool:
        """Atomic compare-and-swap; True iff the swap happened."""
        self.cas_attempts += 1
        current = self._regs.get(name, default)
        if current == expected:
            self._regs[name] = new
            self.cas_successes += 1
            return True
        return False

    def snapshot(self) -> dict[Register, Any]:
        """Copy of all registers (checker/diagnostic use only)."""
        return dict(self._regs)

    def op_counts(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "cas_attempts": self.cas_attempts,
            "cas_successes": self.cas_successes,
        }
