"""Temporal-logic style operators over finite time series.

Eventual properties ("there exists a time after which ...") are checked on
finite traces as *holds-in-suffix* queries that also report the convergence
point, so experiments can record both the verdict and when stabilization
happened.  A series is a time-ordered list of ``(time, value)`` samples; the
value is assumed to persist until the next sample (step function).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, TypeVar

from repro.types import Time

T = TypeVar("T")
Series = Sequence[tuple[Time, T]]


def value_at(series: Series, t: Time, default: Any = None) -> Any:
    """Step-function evaluation of ``series`` at time ``t``."""
    out = default
    for ts, v in series:
        if ts > t:
            break
        out = v
    return out


def holds_at_end(series: Series, pred: Callable[[T], bool],
                 default: Any = None) -> bool:
    """Does ``pred`` hold for the final (persisting) value?"""
    if not series:
        return pred(default) if default is not None else False
    return pred(series[-1][1])


def convergence_time(
    series: Series,
    pred: Callable[[T], bool],
    initial: Any = None,
) -> Optional[Time]:
    """Earliest time after which ``pred(value)`` holds for the rest of the series.

    Returns the start of the final maximal suffix in which every sample (and
    the persisting final value) satisfies ``pred``; ``None`` if the final
    value itself violates ``pred`` or the series is empty and ``initial``
    violates it.  A result of ``0.0`` means the predicate held throughout.
    """
    samples = list(series)
    if initial is not None:
        samples = [(0.0, initial)] + samples
    if not samples:
        return None
    conv: Optional[Time] = None
    for ts, v in samples:
        if pred(v):
            if conv is None:
                conv = ts
        else:
            conv = None
    return conv


def eventually_always(series: Series, pred: Callable[[T], bool],
                      initial: Any = None) -> bool:
    """◇□ pred over the finite series (True iff a converging suffix exists)."""
    return convergence_time(series, pred, initial=initial) is not None


def always(series: Series, pred: Callable[[T], bool], initial: Any = None) -> bool:
    """□ pred over the finite series."""
    samples = list(series)
    if initial is not None:
        samples = [(0.0, initial)] + samples
    return all(pred(v) for _, v in samples)


def count_violations(series: Series, pred: Callable[[T], bool]) -> int:
    """Number of samples violating ``pred`` (finite-mistakes measurements)."""
    return sum(1 for _, v in series if not pred(v))


def change_times(series: Series) -> list[Time]:
    """Times at which the sampled value actually changed."""
    out: list[Time] = []
    prev: Any = object()
    for ts, v in series:
        if v != prev:
            out.append(ts)
            prev = v
    return out


def stable_suffix_start(series: Series) -> Optional[Time]:
    """Time from which the value never changes again (None for empty series)."""
    times = change_times(series)
    return times[-1] if times else None


def leads_to(
    triggers: Sequence[Time],
    responses: Sequence[Time],
    within: Optional[Time] = None,
) -> bool:
    """Every trigger is followed by some response (optionally within a bound).

    Implements the ``P leads-to Q`` progress pattern used by wait-freedom
    checks: for each trigger time there must exist a strictly later response.
    """
    responses = sorted(responses)
    for t in triggers:
        later = [r for r in responses if r > t]
        if not later:
            return False
        if within is not None and later[0] - t > within:
            return False
    return True
