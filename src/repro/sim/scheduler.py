"""Pluggable process-step scheduling policies.

The engine schedules each process's next atomic step after a delay drawn
from a policy.  The default (:class:`UniformSteps`) keeps every process
within a bounded speed band; the others model harsher asynchrony:

* :class:`BurstySteps` — runs of quick steps separated by long random
  pauses (a process that 'goes quiet' without crashing);
* :class:`GSTSteps` — chaotic pauses before a stabilization time, bounded
  speed afterwards: the process-side analogue of
  :class:`~repro.sim.network.PartialSynchronyDelays`.

Every policy keeps delays finite, so correct processes still take
infinitely many steps — the paper's liveness assumption.  Policies are
per-run objects; per-process state lives in the policy keyed by pid.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ProcessId, Time


class StepPolicy(abc.ABC):
    """Draws the delay before a process's next step."""

    #: True when every draw the policy makes goes through ``rng.random()``
    #: or ``rng.uniform(lo, hi)`` — i.e. consumes exactly one underlying
    #: uniform double per call.  The engine then serves such policies from
    #: a prefetched :class:`~repro.sim.rng.BatchedDoubles` view of the
    #: per-process stream with bit-identical results.  Policies using any
    #: other distribution must leave this False (the conservative default
    #: for external subclasses) to keep their stream scalar.
    uniform_only: bool = False

    @abc.abstractmethod
    def next_delay(self, pid: ProcessId, now: Time,
                   rng: np.random.Generator) -> Time:
        """Strictly positive delay until ``pid``'s next step."""


class UniformSteps(StepPolicy):
    """Delays uniform in ``[lo, hi]`` (the engine's classic behaviour)."""

    uniform_only = True

    def __init__(self, lo: Time = 0.4, hi: Time = 1.2) -> None:
        if not 0 < lo <= hi:
            raise ConfigurationError("need 0 < lo <= hi")
        self.lo, self.hi = float(lo), float(hi)

    def next_delay(self, pid: ProcessId, now: Time,
                   rng: np.random.Generator) -> Time:
        return float(rng.uniform(self.lo, self.hi))


class BurstySteps(StepPolicy):
    """Fast bursts separated by occasional long pauses.

    Each step: with probability ``pause_prob`` the process stalls for a
    uniform ``[pause_lo, pause_hi]`` span; otherwise it steps quickly
    (uniform ``[lo, hi]``).
    """

    uniform_only = True

    def __init__(self, lo: Time = 0.2, hi: Time = 0.6,
                 pause_prob: float = 0.02,
                 pause_lo: Time = 10.0, pause_hi: Time = 60.0) -> None:
        if not 0 <= pause_prob < 1:
            raise ConfigurationError("pause_prob must be in [0, 1)")
        if not (0 < lo <= hi and 0 < pause_lo <= pause_hi):
            raise ConfigurationError("bad delay ranges")
        self.lo, self.hi = float(lo), float(hi)
        self.pause_prob = float(pause_prob)
        self.pause_lo, self.pause_hi = float(pause_lo), float(pause_hi)

    def next_delay(self, pid: ProcessId, now: Time,
                   rng: np.random.Generator) -> Time:
        if rng.random() < self.pause_prob:
            return float(rng.uniform(self.pause_lo, self.pause_hi))
        return float(rng.uniform(self.lo, self.hi))


class GSTSteps(StepPolicy):
    """Chaotic before ``gst`` (pauses up to ``pre_gst_max``), uniform after."""

    uniform_only = True

    def __init__(self, gst: Time, lo: Time = 0.4, hi: Time = 1.2,
                 pre_gst_max: Time = 40.0, pause_prob: float = 0.1) -> None:
        if pre_gst_max <= 0:
            raise ConfigurationError("pre_gst_max must be positive")
        self.gst = float(gst)
        self.uniform = UniformSteps(lo, hi)
        self.pre_gst_max = float(pre_gst_max)
        self.pause_prob = float(pause_prob)

    def next_delay(self, pid: ProcessId, now: Time,
                   rng: np.random.Generator) -> Time:
        if now < self.gst and rng.random() < self.pause_prob:
            # A pre-GST stall, but never past gst by more than one band so
            # the post-GST speed bound holds from gst on.
            stall = float(rng.uniform(0.0, self.pre_gst_max))
            return min(stall, max(self.gst - now, 0.0) + self.uniform.hi)
        return self.uniform.next_delay(pid, now, rng)
