"""The discrete-event simulation engine.

The engine owns the global clock, the event queue, the network, the trace,
and the process table.  Three event kinds drive a run:

* ``step``    — a process executes one atomic guarded-action step, then its
  next step is scheduled after a random per-process delay (asynchrony:
  relative process speeds are unbounded across processes but every correct
  process keeps taking steps — the paper's liveness assumption);
* ``deliver`` — a message reaches its destination's inbox;
* ``crash``   — a process ceases execution permanently;
* ``call``    — an experiment-driver callback (environment only).

Typical usage::

    cfg = SimConfig(seed=7, max_time=2_000)
    eng = Engine(cfg, delay_model=AsynchronousDelays(),
                 crash_schedule=CrashSchedule.single("q", at=300.0))
    p = eng.add_process("p"); q = eng.add_process("q")
    ... attach components ...
    eng.run()          # to cfg.max_time
    eng.trace          # inspect
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.obs.probes import RunProbes
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.spans import SpanProbe
from repro.sim.clock import Clock
from repro.sim.faults import CrashSchedule
from repro.sim.link_faults import LinkFaultModel
from repro.sim.network import AsynchronousDelays, DelayModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import StepPolicy
from repro.sim.sinks import TraceSink
from repro.sim.trace import Trace
from repro.sim.transport import TRANSPORT_TAG as _TRANSPORT_TAG
from repro.types import Message, ProcessId, Time


@dataclass
class SimConfig:
    """Knobs for a simulation run.

    ``step_min``/``step_max`` bound the delay between consecutive steps of a
    process, scaled by that process's ``speeds`` factor (default 1.0).
    Unequal speed factors model unbounded *relative* process speeds.
    """

    seed: int = 0
    max_time: Time = 10_000.0
    step_min: Time = 0.4
    step_max: Time = 1.2
    record_messages: bool = False
    speeds: Mapping[ProcessId, float] = field(default_factory=dict)
    #: Optional step-scheduling policy; overrides step_min/step_max when set
    #: (the per-process ``speeds`` factor still applies on top).
    step_policy: Optional[StepPolicy] = None
    #: Hard cap on processed events, as a runaway guard.
    max_events: int = 50_000_000
    #: Trace sink spec (``"full"`` | ``"ring:N"`` | ``"counters"``) or a
    #: prebuilt :class:`~repro.sim.sinks.TraceSink`; bounds trace memory on
    #: long campaigns (see :mod:`repro.sim.sinks`).
    trace_sink: "str | TraceSink" = "full"
    #: Install convergence probes (:mod:`repro.obs.probes`) on the trace
    #: stream.  The metrics registry itself always exists (network and
    #: transport counters live in it); this knob only controls the
    #: detector-quality probes.
    obs: bool = True
    #: Materialize typed spans (:mod:`repro.obs.spans`) from the trace
    #: stream: per-pair suspicion intervals, dining phases, crash points,
    #: the convergence marker.  Off by default — spans retain one tuple
    #: per interval for the whole run, where the scalar probes keep O(1)
    #: state.
    spans: bool = False


class Engine:
    """Event loop for one simulated run."""

    def __init__(
        self,
        config: SimConfig | None = None,
        delay_model: DelayModel | None = None,
        crash_schedule: CrashSchedule | None = None,
        fault_model: "LinkFaultModel | None" = None,
    ) -> None:
        self.config = config or SimConfig()
        self.clock = Clock()
        self.rng = RngRegistry(self.config.seed)
        #: Per-run metrics registry: network/transport counters plus (when
        #: ``config.obs``) the convergence probes all report here.
        self.registry = MetricsRegistry()
        self.trace = Trace(sink=self.config.trace_sink)
        self.trace.bind_clock(lambda: self.clock.now)
        self.probes: Optional[RunProbes] = None
        if self.config.obs:
            self.probes = RunProbes(self.registry)
            self.trace.subscribe(self.probes.on_record,
                                 kinds=RunProbes.KINDS)
        self.span_probe: Optional[SpanProbe] = None
        if self.config.spans:
            self.span_probe = SpanProbe()
            self.trace.subscribe(self.span_probe.on_record,
                                 kinds=SpanProbe.KINDS)
        self.network = Network(delay_model or AsynchronousDelays(),
                               fault_model=fault_model)
        self.network.bind(self)
        self.crash_schedule = crash_schedule or CrashSchedule.none()
        self.processes: dict[ProcessId, Process] = {}
        self._heap: list[tuple[Time, int, str, object]] = []
        self._seq = itertools.count()
        self.events_processed = 0
        self._stopped = False
        # Per-process step-scheduling cache: pid -> (rng, speed).  The rng
        # is a BatchedDoubles view of the pid's step stream when the step
        # policy draws only uniform doubles (or there is no policy), else
        # the raw generator.  Populated lazily on first step.
        self._step_cache: dict[ProcessId, tuple[object, float]] = {}

    # -- construction ---------------------------------------------------------

    def add_process(self, pid: ProcessId) -> Process:
        """Create and register a process; its step loop starts immediately."""
        if pid in self.processes:
            raise ConfigurationError(f"duplicate process id {pid!r}")
        proc = Process(pid)
        proc.bind(self)
        self.processes[pid] = proc
        jitter = float(self.rng.stream(f"step:{pid}").uniform(0.0, self.config.step_max))
        self._push(self.clock.now + jitter, "step", pid)
        crash_at = self.crash_schedule.crash_time(pid)
        if crash_at is not None:
            self._push(crash_at, "crash", pid)
        return proc

    def process(self, pid: ProcessId) -> Process:
        try:
            return self.processes[pid]
        except KeyError:
            raise ConfigurationError(f"unknown process {pid!r}") from None

    # -- scheduling (engine/network internal + experiment drivers) ---------------

    def schedule_delivery(self, msg: Message, at: Time) -> None:
        self._push(at, "deliver", msg)

    def schedule_call(self, at: Time, fn: Callable[[], None]) -> None:
        """Run an environment callback at virtual time ``at``."""
        self._push(at, "call", fn)

    def inject_crash(self, pid: ProcessId, at: Time | None = None) -> None:
        """Crash ``pid`` at time ``at`` (default: now).

        For dynamically-determined faults (e.g. energy depletion in the WSN
        application) that cannot be declared in the upfront
        :class:`~repro.sim.faults.CrashSchedule`.  Ground truth for trace
        checkers is then ``trace.crash_times()``.
        """
        self._push(self.clock.now if at is None else at, "crash", pid)

    def stop(self) -> None:
        """Halt the run after the current event."""
        self._stopped = True

    # -- running ------------------------------------------------------------------

    def run(
        self,
        until: Time | None = None,
        stop_when: Callable[[], bool] | None = None,
        check_every_events: int = 64,
    ) -> Trace:
        """Process events until ``until`` (default ``config.max_time``).

        ``stop_when`` is polled every ``check_every_events`` processed events
        and ends the run early when it returns True.
        """
        horizon = self.config.max_time if until is None else float(until)
        self._stopped = False
        since_check = 0
        # Hot loop: locals for everything touched per event, dispatch
        # inlined (no _dispatch call), clock advanced by direct slot write
        # after the same backwards check Clock.advance_to performs.  The
        # event counter is kept in a local and synced back in the finally
        # block so it stays correct when a handler raises.
        heap = self._heap
        pop = heapq.heappop
        clock = self.clock
        do_step = self._do_step
        do_deliver = self._do_deliver
        do_crash = self._do_crash
        max_events = self.config.max_events
        events = self.events_processed
        try:
            while heap and not self._stopped:
                item = heap[0]
                t = item[0]
                if t > horizon:
                    break
                pop(heap)
                if t < clock._now:
                    raise SimulationError(
                        f"clock cannot move backwards: {t} < {clock._now}"
                    )
                clock._now = t
                kind = item[2]
                if kind == "step":
                    do_step(item[3])
                elif kind == "deliver":
                    do_deliver(item[3])
                elif kind == "crash":
                    do_crash(item[3])
                elif kind == "call":
                    item[3]()
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind!r}")
                events += 1
                if events >= max_events:
                    raise SimulationError(
                        f"event cap exceeded ({self.config.max_events}); "
                        f"trace sink {self.trace.mode!r} retains "
                        f"{len(self.trace)} of {self.trace.total_recorded} "
                        f"records ({self.trace.evicted} evicted) — "
                        "runaway simulation? (infinite action loop, or a "
                        "retransmission storm — check transport "
                        "backoff/rto_max)"
                    )
                since_check += 1
                if stop_when is not None and since_check >= check_every_events:
                    since_check = 0
                    if stop_when():
                        break
        finally:
            self.events_processed = events
        # Land the clock on the horizon so back-to-back run() calls resume
        # cleanly and open state intervals close at the right time.
        if not self._stopped and (stop_when is None) and horizon >= self.clock.now:
            self.clock.advance_to(horizon)
        return self.trace

    # -- queries --------------------------------------------------------------------

    def live_pids(self) -> list[ProcessId]:
        return [pid for pid, p in self.processes.items() if not p.crashed]

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Freeze the run's metrics (finalizing probe gauges first)."""
        if self.probes is not None:
            self.probes.finalize(self.clock.now)
        return self.registry.snapshot()

    @property
    def now(self) -> Time:
        return self.clock.now

    # -- internals --------------------------------------------------------------------

    def _push(self, t: Time, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (t, next(self._seq), kind, payload))

    def _dispatch(self, kind: str, payload: object) -> None:
        if kind == "step":
            self._do_step(payload)  # type: ignore[arg-type]
        elif kind == "deliver":
            self._do_deliver(payload)  # type: ignore[arg-type]
        elif kind == "crash":
            self._do_crash(payload)  # type: ignore[arg-type]
        elif kind == "call":
            payload()  # type: ignore[operator]
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind!r}")

    def _step_state(self, pid: ProcessId) -> tuple[object, float]:
        """Build (and cache) the per-process step-scheduling entry."""
        policy = self.config.step_policy
        if policy is None or policy.uniform_only:
            # All draws on this stream are single uniform doubles, so a
            # batched view reproduces the raw stream bit-for-bit.
            rng: object = self.rng.batched(f"step:{pid}")
        else:
            rng = self.rng.stream(f"step:{pid}")
        entry = (rng, float(self.config.speeds.get(pid, 1.0)))
        self._step_cache[pid] = entry
        return entry

    def _do_step(self, pid: ProcessId) -> None:
        proc = self.processes[pid]
        if proc.crashed:
            return
        proc.step()
        entry = self._step_cache.get(pid)
        if entry is None:
            entry = self._step_state(pid)
        rng, speed = entry
        now = self.clock._now
        policy = self.config.step_policy
        if policy is not None:
            delay = policy.next_delay(pid, now, rng)
        else:
            delay = rng.uniform(self.config.step_min, self.config.step_max)
        heapq.heappush(self._heap,
                       (now + delay * speed, next(self._seq), "step", pid))

    def _do_deliver(self, msg: Message) -> None:
        proc = self.processes.get(msg.receiver)
        if proc is None:
            raise SimulationError(f"message to unknown process {msg.receiver!r}")
        if proc.crashed:
            return
        network = self.network
        transport = network.transport
        if transport is not None and msg.tag == _TRANSPORT_TAG:
            transport.on_wire_deliver(msg)
            return
        # Direct path: the receiver is already resolved and live, so hand
        # over inline (deliver_payload would repeat both lookups).  Inbox
        # buckets are keyed by tag (see Process._inbox).
        inbox = proc._inbox
        bucket = inbox.get(msg.tag)
        if bucket is None:
            inbox[msg.tag] = [msg]
        else:
            bucket.append(msg)
        proc._inbox_count += 1
        network._c_delivered.inc()
        if self.config.record_messages:
            self.trace.record(
                "deliver", pid=msg.receiver, frm=msg.sender, tag=msg.tag,
                msg_kind=msg.kind, uid=msg.uid,
            )

    def deliver_payload(self, msg: Message) -> None:
        """Hand an application message to its (live) receiver's inbox.

        Called by the transport after envelope dedup (the raw-channel
        direct path is inlined in :meth:`_do_deliver`); either way the
        ``delivered`` count and ``deliver`` trace rows are produced in
        exactly one place per path, so metrics mean the same thing with
        or without a transport installed.
        """
        proc = self.processes.get(msg.receiver)
        if proc is None or proc.crashed:
            return
        proc.deliver(msg)
        self.network.note_delivered(msg)
        if self.config.record_messages:
            self.trace.record(
                "deliver", pid=msg.receiver, frm=msg.sender, tag=msg.tag,
                msg_kind=msg.kind, uid=msg.uid,
            )

    def _do_crash(self, pid: ProcessId) -> None:
        proc = self.processes[pid]
        if not proc.crashed:
            proc.crash(self.clock.now)
            self.trace.record("crash", pid=pid)
