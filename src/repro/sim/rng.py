"""Deterministic random-number streams.

A single master seed fans out into named, independent streams (one per
process, one for the network, one per fault injector, ...).  Stream
derivation uses :func:`numpy.random.SeedSequence.spawn`-style keying via
``SeedSequence(entropy, spawn_key)`` so that adding a new stream never
perturbs existing ones — essential for comparing runs across code versions.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_key(name: str) -> int:
    """Stable 64-bit key for a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class BatchedDoubles:
    """Stream-preserving batched view over a generator's uniform doubles.

    numpy's ``Generator.random()`` and ``Generator.uniform(lo, hi)`` each
    consume exactly one underlying double, and scalar ``uniform(lo, hi)``
    equals ``lo + (hi - lo) * random()`` bit-for-bit.  This wrapper
    therefore prefetches ``random(size=batch)`` blocks and serves them one
    at a time: any interleaving of :meth:`random` and :meth:`uniform`
    calls yields exactly the values the raw generator would have produced
    for the same call sequence — which is what lets the engine batch its
    hot streams without perturbing seeded runs.

    The contract is all-or-nothing per stream: once a stream is wrapped,
    every subsequent draw must go through the wrapper (a direct draw on
    the raw generator would skip the prefetched-but-unserved tail).
    Draws that are *not* expressible as one uniform double per call
    (e.g. ``lognormal``) must keep using the raw generator; see the
    ``uniform_only`` flags on delay models and step policies.
    """

    __slots__ = ("_gen", "_batch", "_buf", "_idx", "_len")

    def __init__(self, gen: np.random.Generator, batch: int = 256) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self._gen = gen
        self._batch = int(batch)
        self._buf: list[float] = []
        self._idx = 0
        self._len = 0

    def _refill(self) -> None:
        # tolist() converts the whole block to Python floats in one C call,
        # so per-draw service is a plain list index (no np.float64 boxing).
        self._buf = self._gen.random(size=self._batch).tolist()
        self._idx = 0
        self._len = self._batch

    def random(self) -> float:
        """Next double in [0, 1) — identical to ``gen.random()``."""
        i = self._idx
        if i >= self._len:
            self._refill()
            i = 0
        self._idx = i + 1
        return self._buf[i]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Next uniform in [low, high) — identical to ``gen.uniform``."""
        i = self._idx
        if i >= self._len:
            self._refill()
            i = 0
        self._idx = i + 1
        return low + (high - low) * self._buf[i]


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("network")
    >>> b = reg.stream("process:p")
    >>> a is reg.stream("network")   # streams are cached
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._batched: dict[str, BatchedDoubles] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stream_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def batched(self, name: str, batch: int = 256) -> BatchedDoubles:
        """A (cached) :class:`BatchedDoubles` view of stream ``name``.

        Safe to request after the raw stream has already been consumed —
        the wrapper prefetches from the generator's *current* state.  All
        later draws on the stream must then go through the wrapper.
        """
        wrapper = self._batched.get(name)
        if wrapper is None:
            wrapper = BatchedDoubles(self.stream(name), batch=batch)
            self._batched[name] = wrapper
        return wrapper

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a new registry whose streams are independent of this one.

        Useful when one experiment runs several sub-simulations from a single
        experiment-level seed.
        """
        return RngRegistry(seed=(self.seed * 1_000_003 + _stream_key(salt)) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
