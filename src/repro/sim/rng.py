"""Deterministic random-number streams.

A single master seed fans out into named, independent streams (one per
process, one for the network, one per fault injector, ...).  Stream
derivation uses :func:`numpy.random.SeedSequence.spawn`-style keying via
``SeedSequence(entropy, spawn_key)`` so that adding a new stream never
perturbs existing ones — essential for comparing runs across code versions.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_key(name: str) -> int:
    """Stable 64-bit key for a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("network")
    >>> b = reg.stream("process:p")
    >>> a is reg.stream("network")   # streams are cached
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stream_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a new registry whose streams are independent of this one.

        Useful when one experiment runs several sub-simulations from a single
        experiment-level seed.
        """
        return RngRegistry(seed=(self.seed * 1_000_003 + _stream_key(salt)) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
