"""The simulator's discrete global clock.

Per the paper (Section 4): *"we posit a discrete global clock T whose range
of clock ticks is the set of natural numbers. T is merely a conceptual
device and inaccessible to processes in the system."*

Algorithm components therefore never hold a :class:`Clock`; only the engine,
delay models, fault injectors, and trace checkers read it.  (Client drivers
that model *environment* behaviour — e.g. "think for a while, then get
hungry" — may read it, because the environment is not part of the algorithm.)
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.types import Time


class Clock:
    """Monotonically non-decreasing virtual time."""

    __slots__ = ("_now",)

    def __init__(self, start: Time = 0.0) -> None:
        self._now: Time = float(start)

    @property
    def now(self) -> Time:
        """Current virtual time."""
        return self._now

    def advance_to(self, t: Time) -> None:
        """Move the clock forward to ``t``.

        Raises :class:`SimulationError` on an attempt to move backwards,
        which would indicate a corrupted event queue.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(now={self._now:.3f})"
