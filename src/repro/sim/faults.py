"""Crash-fault schedules.

Per the paper's fault model, processes fail only by *crashing*: they cease
execution without warning and never recover.  A :class:`CrashSchedule`
declares, ahead of a run, which processes crash and when; the engine injects
the crashes at the scheduled virtual times.

The schedule object is also the ground truth that *trace checkers* and the
simulated stronger oracles (P, T, S — see :mod:`repro.oracles`) consult.
Algorithm code never sees it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ProcessId, Time


class CrashSchedule:
    """An immutable map ``pid -> crash time`` for the faulty processes."""

    def __init__(self, crashes: Mapping[ProcessId, Time] | None = None) -> None:
        self._crashes: dict[ProcessId, Time] = dict(crashes or {})
        for pid, t in self._crashes.items():
            if t < 0:
                raise ConfigurationError(f"negative crash time for {pid}: {t}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def none(cls) -> "CrashSchedule":
        """A failure-free schedule."""
        return cls({})

    @classmethod
    def single(cls, pid: ProcessId, at: Time) -> "CrashSchedule":
        return cls({pid: at})

    @classmethod
    def random(
        cls,
        pids: Iterable[ProcessId],
        max_faulty: int,
        horizon: Time,
        rng: np.random.Generator,
    ) -> "CrashSchedule":
        """Crash a uniformly-chosen subset of at most ``max_faulty`` processes
        at uniform times in ``(0, horizon)``."""
        pool = list(pids)
        k = int(rng.integers(0, max_faulty + 1))
        k = min(k, len(pool))
        chosen = rng.choice(len(pool), size=k, replace=False) if k else []
        return cls({pool[int(i)]: float(rng.uniform(0.0, horizon)) for i in chosen})

    # -- queries -----------------------------------------------------------------

    @property
    def faulty(self) -> frozenset[ProcessId]:
        """Processes that crash at some point in the run."""
        return frozenset(self._crashes)

    def crash_time(self, pid: ProcessId) -> Optional[Time]:
        """Crash time of ``pid``, or None if correct."""
        return self._crashes.get(pid)

    def is_faulty(self, pid: ProcessId) -> bool:
        return pid in self._crashes

    def is_live_at(self, pid: ProcessId, t: Time) -> bool:
        """Live = not yet crashed (correct processes are always live)."""
        ct = self._crashes.get(pid)
        return ct is None or t < ct

    def correct(self, pids: Iterable[ProcessId]) -> frozenset[ProcessId]:
        """The correct subset of ``pids``."""
        return frozenset(p for p in pids if p not in self._crashes)

    def items(self):
        return self._crashes.items()

    def last_crash_time(self) -> Time:
        """Time of the final crash (0.0 for a failure-free schedule)."""
        return max(self._crashes.values(), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{p}@{t:.2f}" for p, t in sorted(self._crashes.items()))
        return f"CrashSchedule({{{body}}})"
