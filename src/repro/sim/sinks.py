"""Pluggable trace sinks: where a :class:`~repro.sim.trace.Trace` puts rows.

The default sink retains every record in memory (exactly the historical
behavior).  Long campaigns that only need verdict counters or a recent
window can swap in a bounded sink so a run's memory no longer grows with
its event count:

``"full"``      retain everything (default);
``"ring:N"``    retain only the most recent ``N`` records, counting
                evictions — checkers still work on the retained window,
                and consumers that need the whole history can detect the
                truncation via :attr:`TraceSink.evicted`;
``"counters"``  retain nothing; only aggregate counts survive (the trace
                itself still tracks kind histograms, crash times, and the
                last record time, which are maintained out-of-band).

Sinks are deliberately dumb appenders: filtering, kind histograms, and
crash bookkeeping stay in :class:`~repro.sim.trace.Trace` so every sink
mode reports them exactly.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence, Union

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import TraceRecord


class TraceSink:
    """Storage strategy for trace rows.

    Subclasses define ``mode`` (a stable, human-readable spec string that
    round-trips through :func:`make_sink`), append records, report how
    many they have evicted, and expose the retained window in time order.
    """

    mode: str = "abstract"

    #: False for sinks that keep no rows at all.  The owning trace uses
    #: this to skip building :class:`TraceRecord` objects entirely when no
    #: subscriber needs them either (the lazy fast path); such elided
    #: records are accounted via :meth:`skip_one`.
    retains: bool = True

    @property
    def evicted(self) -> int:
        raise NotImplementedError

    def append(self, rec: "TraceRecord") -> None:
        raise NotImplementedError

    def skip_one(self) -> None:
        """Account for one record elided before construction.

        Only called on non-retaining sinks (``retains`` False); retaining
        sinks never see elided records.
        """
        raise NotImplementedError

    def retained(self) -> Sequence["TraceRecord"]:
        raise NotImplementedError


class FullTraceSink(TraceSink):
    """Keep every record (the historical in-memory behavior)."""

    mode = "full"

    def __init__(self) -> None:
        self._records: list["TraceRecord"] = []

    @property
    def evicted(self) -> int:
        return 0

    def append(self, rec: "TraceRecord") -> None:
        self._records.append(rec)

    def retained(self) -> Sequence["TraceRecord"]:
        return self._records


class RingTraceSink(TraceSink):
    """Keep only the most recent ``capacity`` records, counting evictions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"ring sink capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.mode = f"ring:{self.capacity}"
        self._records: deque["TraceRecord"] = deque(maxlen=self.capacity)
        self._evicted = 0

    @property
    def evicted(self) -> int:
        return self._evicted

    def append(self, rec: "TraceRecord") -> None:
        if len(self._records) == self.capacity:
            self._evicted += 1
        self._records.append(rec)

    def retained(self) -> Sequence["TraceRecord"]:
        return list(self._records)


class CounterTraceSink(TraceSink):
    """Retain nothing; every appended record counts as evicted.

    Aggregate views (kind histogram, crash times, last record time) are
    maintained by the owning trace and stay exact; anything needing the
    rows themselves must use a retaining sink.
    """

    mode = "counters"
    retains = False

    def __init__(self) -> None:
        self._evicted = 0

    @property
    def evicted(self) -> int:
        return self._evicted

    def append(self, rec: "TraceRecord") -> None:
        self._evicted += 1

    def skip_one(self) -> None:
        self._evicted += 1

    def retained(self) -> Sequence["TraceRecord"]:
        return ()


def make_sink(spec: Union[str, TraceSink, None]) -> TraceSink:
    """Build a sink from a spec string (``full`` | ``ring:N`` | ``counters``),
    pass an existing sink through, or default (``None``) to full retention."""
    if spec is None:
        return FullTraceSink()
    if isinstance(spec, TraceSink):
        return spec
    kind, _, arg = str(spec).partition(":")
    if kind == "full":
        return FullTraceSink()
    if kind == "counters":
        return CounterTraceSink()
    if kind == "ring":
        try:
            capacity = int(arg)
        except ValueError:
            raise ConfigurationError(
                f"bad ring sink capacity {arg!r} in {spec!r}") from None
        return RingTraceSink(capacity)
    raise ConfigurationError(
        f"unknown trace sink spec {spec!r} (use full | ring:N | counters)")
