"""Structured run traces and queries over them.

Everything observable about a run — diner state transitions, oracle output
changes, crashes, optionally every message — is appended to a single
:class:`Trace` as :class:`TraceRecord` rows.  Trace checkers (exclusion,
wait-freedom, completeness, accuracy, fairness) operate purely on these
rows, never on live simulator state, so a trace can be saved and re-checked.

Record kinds used across the library (by convention):

``"state"``     diner phase change: ``instance``, ``role``, ``state`` (str)
``"suspect"``   oracle output change: ``target``, ``suspected`` (bool)
``"crash"``     process crash
``"send"``      message sent (only when ``record_messages`` is on)
``"deliver"``   message delivered (only when ``record_messages`` is on)
plus algorithm-specific kinds (``"ping"``, ``"decide"``, ``"duty"``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.sim.sinks import TraceSink, make_sink
from repro.types import ProcessId, Time


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One observed event: ``(time, kind, pid, data)``."""

    time: Time
    kind: str
    pid: ProcessId
    data: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Trace:
    """An append-only sequence of :class:`TraceRecord` rows, time-ordered.

    Storage is delegated to a pluggable :class:`~repro.sim.sinks.TraceSink`
    (``"full"`` by default; ``"ring:N"`` and ``"counters"`` bound memory on
    long campaigns — see :mod:`repro.sim.sinks`).  Aggregate views — the
    kind histogram, crash times, total record count, and last record time —
    are maintained here, out-of-band, so they stay exact in every sink
    mode; only row-level queries (:meth:`records`, :meth:`series`) are
    limited to the sink's retained window.
    """

    def __init__(self, sink: Union[TraceSink, str, None] = None) -> None:
        self._sink = make_sink(sink)
        self._now_fn: Optional[Callable[[], Time]] = None
        self._kind_counts: dict[str, int] = {}
        self._crash_times: dict[ProcessId, Time] = {}
        self._last_time: Time = 0.0
        self._total = 0
        self._observers: list[
            tuple[Callable[[TraceRecord], None], Optional[frozenset]]
        ] = []
        # Union of all subscribed kind filters; None once any subscriber
        # wants everything.  Against a non-retaining sink, records whose
        # kind is outside this set are never constructed (lazy fast path).
        self._needed_kinds: Optional[set[str]] = set()

    def bind_clock(self, now_fn: Callable[[], Time]) -> None:
        self._now_fn = now_fn

    def subscribe(self, observer: Callable[[TraceRecord], None],
                  kinds: Optional[Iterable[str]] = None) -> None:
        """Observe every record as it is appended, *before* sink retention.

        Subscribers (e.g. :class:`repro.obs.probes.RunProbes`) see the full
        record stream regardless of sink mode, so anything computed from
        the stream stays exact under ``ring:N`` and ``counters`` sinks.
        Observers are run-local and are not pickled with the trace.

        ``kinds``, when given, restricts delivery to records of those
        kinds.  Declaring the filter matters beyond skipping callbacks:
        when every subscriber is filtered and the sink retains nothing
        (``counters``), records of unwanted kinds are never even built.
        """
        ks = None if kinds is None else frozenset(kinds)
        self._observers.append((observer, ks))
        if ks is None:
            self._needed_kinds = None
        elif self._needed_kinds is not None:
            self._needed_kinds |= ks

    # -- sink introspection --------------------------------------------------

    @property
    def mode(self) -> str:
        """The active sink mode (``full`` | ``ring:N`` | ``counters``)."""
        return self._sink.mode

    @property
    def evicted(self) -> int:
        """Records dropped by the sink (0 under full retention)."""
        return self._sink.evicted

    @property
    def truncated(self) -> bool:
        """True when row-level queries no longer see the whole history."""
        return self._sink.evicted > 0

    @property
    def total_recorded(self) -> int:
        """Total records ever appended, retained or not."""
        return self._total

    # -- pickling (results cross process boundaries in parallel campaigns) ---

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_now_fn"] = None   # bound clock closures don't pickle
        state["_observers"] = []  # run-local; may close over live objects
        state["_needed_kinds"] = set()
        return state

    # -- writing ------------------------------------------------------------

    def record(self, kind: str, pid: ProcessId,
               **data: Any) -> Optional[TraceRecord]:
        """Append one record; returns it, or None when it was elided.

        Elision (the lazy fast path) happens only when the sink retains
        nothing *and* no subscriber asked for this ``kind`` — the
        aggregate views (totals, kind histogram, crash times, last time)
        are still maintained exactly, so nothing observable about the
        trace changes besides the saved construction cost.
        """
        t = self._now_fn() if self._now_fn is not None else 0.0
        needed = self._needed_kinds
        if (needed is not None and kind not in needed
                and not self._sink.retains):
            self._sink.skip_one()
            self._total += 1
            self._last_time = t
            counts = self._kind_counts
            counts[kind] = counts.get(kind, 0) + 1
            if kind == "crash":
                self._crash_times[pid] = t
            return None
        rec = TraceRecord(time=t, kind=kind, pid=pid, data=data)
        self._append(rec)
        return rec

    def _append(self, rec: TraceRecord) -> None:
        """Sink a prebuilt record and maintain the exact aggregate views."""
        self._sink.append(rec)
        self._total += 1
        self._last_time = rec.time
        kind = rec.kind
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "crash":
            self._crash_times[rec.pid] = rec.time
        for observer, kinds in self._observers:
            if kinds is None or kind in kinds:
                observer(rec)

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sink.retained())

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._sink.retained())

    def records(
        self,
        kind: str | None = None,
        pid: ProcessId | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """All retained records matching the given filters, in time order."""
        out = []
        for r in self._sink.retained():
            if kind is not None and r.kind != kind:
                continue
            if pid is not None and r.pid != pid:
                continue
            if where is not None and not where(r):
                continue
            out.append(r)
        return out

    def series(
        self,
        kind: str,
        field_name: str,
        pid: ProcessId | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[tuple[Time, Any]]:
        """``(time, value)`` pairs of ``data[field_name]`` for matching rows."""
        return [
            (r.time, r.data[field_name])
            for r in self.records(kind=kind, pid=pid, where=where)
        ]

    def last_time(self) -> Time:
        """Time of the final record (0.0 for an empty trace).

        Exact in every sink mode: maintained as records are appended, not
        recovered from the (possibly truncated) retained window.
        """
        return self._last_time

    def crash_times(self) -> dict[ProcessId, Time]:
        """Map of crashed process -> crash time.

        Ground truth for trace checkers, so it is kept out-of-band and
        survives ring-buffer eviction and counters-only sinks.
        """
        return dict(self._crash_times)

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds — exact in every sink mode."""
        return dict(self._kind_counts)


def state_intervals(
    events: Sequence[tuple[Time, str]],
    state: str,
    end_time: Time,
) -> list[tuple[Time, Time]]:
    """Convert a state-change series into closed intervals spent in ``state``.

    ``events`` is a time-ordered ``(time, new_state)`` series.  An interval
    still open at the end of the run is closed at ``end_time`` (a diner that
    crashed or never exited is 'in state' until then, which is exactly what
    exclusion checkers need: a crashed eater stops conflicting only once
    crashed — callers clip by crash time separately if required).
    """
    out: list[tuple[Time, Time]] = []
    start: Optional[Time] = None
    for t, s in events:
        if s == state and start is None:
            start = t
        elif s != state and start is not None:
            out.append((start, t))
            start = None
    if start is not None:
        out.append((start, max(end_time, start)))
    return out


def intervals_overlap(a: tuple[Time, Time], b: tuple[Time, Time]) -> bool:
    """True when two closed-open intervals genuinely overlap (not merely touch)."""
    return a[0] < b[1] and b[0] < a[1]


def overlapping_pairs(
    xs: Iterable[tuple[Time, Time]],
    ys: Iterable[tuple[Time, Time]],
) -> list[tuple[tuple[Time, Time], tuple[Time, Time]]]:
    """All genuinely overlapping pairs between two interval lists."""
    return [
        (a, b)
        for a in xs
        for b in ys
        if intervals_overlap(a, b)
    ]
