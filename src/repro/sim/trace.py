"""Structured run traces and queries over them.

Everything observable about a run — diner state transitions, oracle output
changes, crashes, optionally every message — is appended to a single
:class:`Trace` as :class:`TraceRecord` rows.  Trace checkers (exclusion,
wait-freedom, completeness, accuracy, fairness) operate purely on these
rows, never on live simulator state, so a trace can be saved and re-checked.

Record kinds used across the library (by convention):

``"state"``     diner phase change: ``instance``, ``role``, ``state`` (str)
``"suspect"``   oracle output change: ``target``, ``suspected`` (bool)
``"crash"``     process crash
``"send"``      message sent (only when ``record_messages`` is on)
``"deliver"``   message delivered (only when ``record_messages`` is on)
plus algorithm-specific kinds (``"ping"``, ``"decide"``, ``"duty"``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.types import ProcessId, Time


@dataclass(frozen=True)
class TraceRecord:
    """One observed event: ``(time, kind, pid, data)``."""

    time: Time
    kind: str
    pid: ProcessId
    data: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Trace:
    """An append-only sequence of :class:`TraceRecord` rows, time-ordered."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._now_fn: Optional[Callable[[], Time]] = None

    def bind_clock(self, now_fn: Callable[[], Time]) -> None:
        self._now_fn = now_fn

    # -- writing ------------------------------------------------------------

    def record(self, kind: str, pid: ProcessId, **data: Any) -> TraceRecord:
        t = self._now_fn() if self._now_fn is not None else 0.0
        rec = TraceRecord(time=t, kind=kind, pid=pid, data=data)
        self._records.append(rec)
        return rec

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: str | None = None,
        pid: ProcessId | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """All records matching the given filters, in time order."""
        out = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if pid is not None and r.pid != pid:
                continue
            if where is not None and not where(r):
                continue
            out.append(r)
        return out

    def series(
        self,
        kind: str,
        field_name: str,
        pid: ProcessId | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[tuple[Time, Any]]:
        """``(time, value)`` pairs of ``data[field_name]`` for matching rows."""
        return [
            (r.time, r.data[field_name])
            for r in self.records(kind=kind, pid=pid, where=where)
        ]

    def last_time(self) -> Time:
        """Time of the final record (0.0 for an empty trace)."""
        return self._records[-1].time if self._records else 0.0

    def crash_times(self) -> dict[ProcessId, Time]:
        """Map of crashed process -> crash time."""
        return {r.pid: r.time for r in self.records(kind="crash")}

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds (diagnostic aid)."""
        out: dict[str, int] = {}
        for r in self._records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out


def state_intervals(
    events: Sequence[tuple[Time, str]],
    state: str,
    end_time: Time,
) -> list[tuple[Time, Time]]:
    """Convert a state-change series into closed intervals spent in ``state``.

    ``events`` is a time-ordered ``(time, new_state)`` series.  An interval
    still open at the end of the run is closed at ``end_time`` (a diner that
    crashed or never exited is 'in state' until then, which is exactly what
    exclusion checkers need: a crashed eater stops conflicting only once
    crashed — callers clip by crash time separately if required).
    """
    out: list[tuple[Time, Time]] = []
    start: Optional[Time] = None
    for t, s in events:
        if s == state and start is None:
            start = t
        elif s != state and start is not None:
            out.append((start, t))
            start = None
    if start is not None:
        out.append((start, max(end_time, start)))
    return out


def intervals_overlap(a: tuple[Time, Time], b: tuple[Time, Time]) -> bool:
    """True when two closed-open intervals genuinely overlap (not merely touch)."""
    return a[0] < b[1] and b[0] < a[1]


def overlapping_pairs(
    xs: Iterable[tuple[Time, Time]],
    ys: Iterable[tuple[Time, Time]],
) -> list[tuple[tuple[Time, Time], tuple[Time, Time]]]:
    """All genuinely overlapping pairs between two interval lists."""
    return [
        (a, b)
        for a in xs
        for b in ys
        if intervals_overlap(a, b)
    ]
