"""Adversarial network and scheduling behaviours.

The paper's model lets an adversary pick message delays and relative
process speeds arbitrarily (subject only to reliability and eventual
bounds).  This module makes targeted adversaries expressible:

* :class:`TargetedDelays` — wraps any base :class:`~repro.sim.network.DelayModel`
  and applies extra delay rules to selected messages (by kind, tag prefix,
  endpoint, or arbitrary predicate).  Delays stay finite, so channels stay
  reliable — the adversary can slow the reduction's ping/ack traffic or a
  victim process's channels arbitrarily but not break them.
* :func:`slow_process` — a :class:`~repro.sim.engine.SimConfig` speeds entry
  making one process's steps k× slower (unbounded *relative* speeds).

Experiment E14 uses these to stress the reduction: its properties must
survive any such adversary, converging later but still converging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.network import DelayModel
from repro.types import Message, ProcessId, Time

MessagePredicate = Callable[[Message], bool]


def by_kind(*kinds: str) -> MessagePredicate:
    """Match messages of any of the given kinds (e.g. ``"ping"``, ``"ack"``)."""
    kindset = frozenset(kinds)
    return lambda msg: msg.kind in kindset


def by_endpoint(pid: ProcessId) -> MessagePredicate:
    """Match all traffic to or from one process (a victim adversary)."""
    return lambda msg: pid in (msg.sender, msg.receiver)


def by_tag_prefix(prefix: str) -> MessagePredicate:
    """Match messages routed to components whose tag starts with ``prefix``."""
    return lambda msg: msg.tag.startswith(prefix)


@dataclass(frozen=True)
class DelayRule:
    """Extra treatment for matching messages.

    ``factor`` multiplies the base delay; ``extra_max`` adds a uniform
    random delay in ``[0, extra_max]``; ``until`` limits the rule to sends
    before that time (None = forever — legal as long as delays stay
    finite, which they do).
    """

    predicate: MessagePredicate
    factor: float = 1.0
    extra_max: Time = 0.0
    until: Optional[Time] = None

    def applies(self, msg: Message, now: Time) -> bool:
        if self.until is not None and now >= self.until:
            return False
        return self.predicate(msg)


class TargetedDelays(DelayModel):
    """A base delay model plus targeted adversarial rules."""

    def __init__(self, base: DelayModel, rules: Sequence[DelayRule]) -> None:
        self.base = base
        self.rules = list(rules)
        for rule in self.rules:
            if rule.factor < 1.0 or rule.extra_max < 0:
                raise ConfigurationError(
                    "adversary may only slow messages down (factor >= 1, "
                    "extra_max >= 0); dropping them would break reliability"
                )

    @property
    def uniform_only(self) -> bool:
        # Own draws are plain uniforms; batchability hinges on the base.
        return self.base.uniform_only

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        d = self.base.delay(msg, now, rng)
        for rule in self.rules:
            if rule.applies(msg, now):
                d *= rule.factor
                if rule.extra_max > 0:
                    d += float(rng.uniform(0.0, rule.extra_max))
        return d


def slow_process(pid: ProcessId, factor: float) -> Mapping[ProcessId, float]:
    """A ``SimConfig.speeds`` entry making ``pid`` take steps ``factor``×
    slower than everyone else."""
    if factor < 1.0:
        raise ConfigurationError("slowdown factor must be >= 1")
    return {pid: float(factor)}


class EscalatingDelays(DelayModel):
    """Genuinely asynchronous channels: stragglers grow with the clock.

    Most messages take a quick uniform delay, but with probability
    ``straggler_prob`` a message is held for ``straggler_factor * now`` —
    so no fixed (or adaptively doubled) timeout stays ahead of the channel
    forever.  This is the environment in which ◇P is *not* implementable;
    experiment E19 uses it to show the equivalence cutting both ways: the
    heartbeat detector keeps making mistakes, and the ◇P-based dining box
    correspondingly keeps violating exclusion.
    """

    uniform_only = True

    def __init__(self, base_lo: Time = 0.2, base_hi: Time = 2.0,
                 straggler_prob: float = 0.05,
                 straggler_factor: float = 0.5) -> None:
        if not 0 <= straggler_prob <= 1 or straggler_factor < 0:
            raise ConfigurationError("bad straggler parameters")
        self.base_lo, self.base_hi = float(base_lo), float(base_hi)
        self.straggler_prob = float(straggler_prob)
        self.straggler_factor = float(straggler_factor)

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        d = float(rng.uniform(self.base_lo, self.base_hi))
        if rng.random() < self.straggler_prob:
            d += self.straggler_factor * max(now, 1.0)
        return d


class OutageDelays(DelayModel):
    """Asynchrony via ever-longer channel outages.

    The network alternates quiet periods (base delays) with total outages:
    every message sent during outage ``k`` is held until the outage ends.
    Outage durations grow geometrically (``growth`` per outage), so they
    outpace *any* adaptive timeout that backs off by a constant factor per
    mistake — the precise sense in which ◇P is not implementable here.
    Delays remain finite, so channels stay reliable.
    """

    def __init__(self, base: Optional[DelayModel] = None,
                 first_outage: Time = 120.0, initial_duration: Time = 25.0,
                 recovery: Time = 150.0, growth: float = 2.4) -> None:
        if growth <= 1.0 or initial_duration <= 0 or recovery <= 0:
            raise ConfigurationError("need growth > 1 and positive durations")
        from repro.sim.network import FixedDelays

        self.base = base if base is not None else FixedDelays(1.0)
        self.first_outage = float(first_outage)
        self.initial_duration = float(initial_duration)
        self.recovery = float(recovery)
        self.growth = float(growth)
        self._outages: list[tuple[Time, Time]] = []   # (start, end)

    @property
    def uniform_only(self) -> bool:
        # Outage scheduling is deterministic; only the base model draws.
        return self.base.uniform_only

    def _outage_at(self, now: Time) -> Optional[tuple[Time, Time]]:
        """The outage containing ``now``, extending the schedule lazily."""
        start = (self._outages[-1][1] + self.recovery if self._outages
                 else self.first_outage)
        duration = self.initial_duration * self.growth ** len(self._outages)
        while start <= now:
            self._outages.append((start, start + duration))
            start = start + duration + self.recovery
            duration *= self.growth
        for s, e in reversed(self._outages):
            if s <= now < e:
                return (s, e)
            if e <= now:
                break
        return None

    def delay(self, msg: Message, now: Time, rng: np.random.Generator) -> Time:
        d = self.base.delay(msg, now, rng)
        outage = self._outage_at(now)
        if outage is not None:
            return (outage[1] - now) + d
        return d

    def outages_before(self, t: Time) -> list[tuple[Time, Time]]:
        """The outage windows scheduled before ``t`` (checker aid)."""
        self._outage_at(t)
        return [(s, e) for s, e in self._outages if s < t]
