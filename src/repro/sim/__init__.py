"""Discrete-event simulator for asynchronous message-passing systems.

This package is the execution substrate for every experiment in the
reproduction.  It implements the system model of the paper's Section 4:

* a finite set of processes executing **guarded actions** as atomic steps
  (receive at most one message, make a state transition, send messages);
* **reliable, non-FIFO channels** — every message sent to a correct process
  is eventually delivered, exactly once, uncorrupted, in arbitrary order;
* **crash faults** — a faulty process ceases execution without warning and
  never recovers;
* a **discrete global clock** that is a conceptual device only: algorithm
  code cannot read it, but delay models and trace checkers can.

Beyond the paper's model, the substrate can also inject link faults
(:mod:`repro.sim.link_faults`: drops, duplication, partitions over
fair-lossy links) and recover reliability by retransmission
(:mod:`repro.sim.transport`), so the same algorithms can be stressed
under realistic network failure — see ``docs/fault_model.md``.

Determinism: a single master seed fans out into independent per-purpose RNG
streams (:mod:`repro.sim.rng`), so any run is reproducible bit-for-bit.
"""

from repro.sim.clock import Clock
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.sim.link_faults import LinkFaultModel, Partition
from repro.sim.network import (
    AsynchronousDelays,
    DelayModel,
    FixedDelays,
    Network,
    PartialSynchronyDelays,
)
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.sinks import (
    CounterTraceSink,
    FullTraceSink,
    RingTraceSink,
    TraceSink,
    make_sink,
)
from repro.sim.trace import Trace, TraceRecord
from repro.sim.transport import ReliableTransport, RetransmitPolicy

__all__ = [
    "AsynchronousDelays",
    "Clock",
    "Component",
    "CounterTraceSink",
    "CrashSchedule",
    "DelayModel",
    "Engine",
    "FixedDelays",
    "FullTraceSink",
    "LinkFaultModel",
    "Network",
    "PartialSynchronyDelays",
    "Partition",
    "Process",
    "ReliableTransport",
    "RetransmitPolicy",
    "RingTraceSink",
    "RngRegistry",
    "SimConfig",
    "Trace",
    "TraceRecord",
    "TraceSink",
    "action",
    "make_sink",
    "receive",
]
