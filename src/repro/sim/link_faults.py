"""Link-fault injection: lossy, duplicating, and partitionable channels.

The paper's Section 4 assumes *reliable* channels, and
:class:`~repro.sim.network.Network` honours that by default.  The wider
failure-detector literature, however, standardly works over **fair-lossy**
links — channels may drop or duplicate individual messages, but if a
correct process sends infinitely many messages to a correct process,
infinitely many are delivered — with reliability recovered by
retransmission (see :mod:`repro.sim.transport`).

A :class:`LinkFaultModel` composes with any
:class:`~repro.sim.network.DelayModel`: the delay model decides *when* a
surviving copy arrives, the fault model decides *how many* copies survive
(0 = dropped, 1 = normal, 2 = duplicated).  Supported faults:

* per-message **drop** probability, globally, per message kind, and per
  directed link;
* **duplication** probability (the duplicate gets an independent delay,
  so duplicates also arrive out of order);
* scheduled **partitions** — time-windowed bipartitions of the process
  set that drop *all* crossing traffic for their duration.

Fairness guarantee: random losses on a link never exceed
``max_consecutive_drops`` in a row, so infinitely many sends imply
infinitely many deliveries (fair-lossy).  Partition windows are finite by
construction and therefore cannot violate eventual fairness either.
All randomness is drawn from the engine's seeded ``"link-faults"``
stream, so faulty runs replay bit-for-bit from their seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Message, ProcessId, Time

#: A directed link, ``(sender, receiver)``.
Link = tuple[ProcessId, ProcessId]


@dataclass(frozen=True)
class Partition:
    """A time-windowed bipartition ``side`` vs. everyone else.

    While ``start <= now < end``, every message crossing the cut (sender
    and receiver on different sides) is dropped.  Traffic within either
    side is unaffected.
    """

    start: Time
    end: Time
    side: frozenset[ProcessId]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"partition window must be non-empty: [{self.start}, {self.end})"
            )
        if not self.side:
            raise ConfigurationError("partition side must be non-empty")

    @classmethod
    def of(cls, side: Iterable[ProcessId], start: Time, end: Time) -> "Partition":
        """Convenience constructor accepting any iterable of pids."""
        return cls(start=float(start), end=float(end), side=frozenset(side))

    def active_at(self, now: Time) -> bool:
        return self.start <= now < self.end

    def severs(self, msg: Message, now: Time) -> bool:
        """Does this partition drop ``msg`` sent at ``now``?"""
        if not self.active_at(now):
            return False
        return (msg.sender in self.side) != (msg.receiver in self.side)


@dataclass(frozen=True, slots=True)
class Fate:
    """The fault model's verdict for one sent message.

    ``copies`` is the number of independent deliveries to schedule
    (0 = dropped, 1 = normal, 2 = duplicated); ``reason`` explains a drop
    (``"partition"`` or ``"loss"``) and is None otherwise.
    """

    copies: int
    reason: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.copies == 0

    @property
    def duplicated(self) -> bool:
        return self.copies > 1


# Fate is a value type with only four observable states, so the verdict
# path reuses interned instances instead of allocating one per message.
_FATE_ONE = Fate(copies=1)
_FATE_TWO = Fate(copies=2)
_FATE_LOSS = Fate(copies=0, reason="loss")
_FATE_PARTITION = Fate(copies=0, reason="partition")


def _check_prob(name: str, p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be a probability, got {p}")
    return p


class LinkFaultModel:
    """Per-message drop/duplicate/partition faults with a fairness floor.

    Parameters
    ----------
    drop:
        Base probability that any message is lost.
    duplicate:
        Probability that a surviving message is delivered twice (the extra
        copy gets its own independent channel delay).
    drop_by_kind:
        Extra per-``Message.kind`` drop probabilities; the effective loss
        rate for a message is ``max(drop, drop_by_kind[kind])``.
    drop_by_link:
        Extra per-directed-link drop probabilities keyed by
        ``(sender, receiver)``; combined with the above via ``max``.
    partitions:
        Scheduled :class:`Partition` windows.  Crossing traffic is dropped
        deterministically while a window is active.
    max_consecutive_drops:
        Fair-lossy enforcement: after this many consecutive *random*
        losses on one directed link, the next message is forcibly
        delivered.  ``None`` disables the floor (the link may then be
        unfair if a drop probability is 1.0 — useful only for modelling
        permanently dead links; prefer partitions for that).
    """

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        drop_by_kind: Mapping[str, float] | None = None,
        drop_by_link: Mapping[Link, float] | None = None,
        partitions: Sequence[Partition] = (),
        max_consecutive_drops: int | None = 25,
    ) -> None:
        self.drop = _check_prob("drop", drop)
        self.duplicate = _check_prob("duplicate", duplicate)
        self.drop_by_kind = {
            k: _check_prob(f"drop_by_kind[{k!r}]", p)
            for k, p in (drop_by_kind or {}).items()
        }
        self.drop_by_link = {
            link: _check_prob(f"drop_by_link[{link!r}]", p)
            for link, p in (drop_by_link or {}).items()
        }
        self.partitions = list(partitions)
        if max_consecutive_drops is not None and max_consecutive_drops < 1:
            raise ConfigurationError("max_consecutive_drops must be >= 1 or None")
        self.max_consecutive_drops = max_consecutive_drops
        self._drop_streak: dict[Link, int] = {}

    # -- queries ---------------------------------------------------------------

    def drop_probability(self, msg: Message) -> float:
        """The effective random-loss probability for ``msg``."""
        p = self.drop
        if self.drop_by_kind:
            p = max(p, self.drop_by_kind.get(msg.kind, 0.0))
        if self.drop_by_link:
            p = max(p, self.drop_by_link.get((msg.sender, msg.receiver), 0.0))
        return p

    def partitioned(self, msg: Message, now: Time) -> bool:
        """Is the message's link severed by an active partition window?"""
        return any(part.severs(msg, now) for part in self.partitions)

    # -- the verdict -----------------------------------------------------------

    def fate(self, msg: Message, now: Time, rng: np.random.Generator) -> Fate:
        """Decide how many copies of ``msg`` (sent at ``now``) to deliver.

        Partition drops are deterministic and do not count toward the
        fair-lossy streak (a forced delivery would breach the partition);
        random drops do, and the streak cap forces delivery once reached.
        """
        if self.partitions and self.partitioned(msg, now):
            return _FATE_PARTITION
        # Inlined drop_probability(): this runs once per wire transmission.
        p = self.drop
        if self.drop_by_kind:
            p = max(p, self.drop_by_kind.get(msg.kind, 0.0))
        if self.drop_by_link:
            p = max(p, self.drop_by_link.get((msg.sender, msg.receiver), 0.0))
        if p > 0.0:
            link = (msg.sender, msg.receiver)
            streak = self._drop_streak.get(link, 0)
            forced = (self.max_consecutive_drops is not None
                      and streak >= self.max_consecutive_drops)
            if not forced and rng.random() < p:
                self._drop_streak[link] = streak + 1
                return _FATE_LOSS
            self._drop_streak[link] = 0
        if self.duplicate > 0.0 and rng.random() < self.duplicate:
            return _FATE_TWO
        return _FATE_ONE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkFaultModel(drop={self.drop}, duplicate={self.duplicate}, "
            f"kinds={sorted(self.drop_by_kind)}, "
            f"links={sorted(self.drop_by_link)}, "
            f"partitions={len(self.partitions)})"
        )
