"""Processes: containers of guarded-action components.

A process executes the union of its components' actions under interleaving
semantics.  In each atomic step it executes at most one enabled action,
consuming at most one delivered message — exactly the step model of the
paper's Section 4.

Scheduling within a process is round-robin over the action list: the scan
for an enabled action starts just after the last action executed, so every
continuously-enabled action of a correct process is executed infinitely
often (weak fairness).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ConfigurationError, CrashedProcessError, SimulationError
from repro.sim.component import BoundAction, Component
from repro.types import Message, ProcessId, Time

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Process:
    """A single (possibly faulty) process of the system Π."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.crashed = False
        self.crash_time: Optional[Time] = None
        self._components: dict[str, Component] = {}
        self._actions: list[BoundAction] = []
        self._rotation = 0
        # Buffered deliveries, bucketed by component tag.  Receive actions
        # only ever match their own tag, so bucketing turns the per-probe
        # inbox scan into a scan of just that component's backlog — O(1)
        # for the common empty/miss case instead of O(total inbox).  Within
        # a bucket, arrival order (= "earliest buffered") is preserved, so
        # message selection is identical to the historical flat list.
        self._inbox: dict[str, list[Message]] = {}
        self._inbox_count = 0
        self._engine: "Engine | None" = None
        self.steps_taken = 0

    # -- construction -------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        """Attach ``component``; its actions join this process's action set."""
        if component.name in self._components:
            raise ConfigurationError(
                f"process {self.pid}: duplicate component {component.name!r}"
            )
        component.process = self
        self._components[component.name] = component
        self._actions.extend(component.bound_actions())
        component.attached()
        return component

    def component(self, name: str) -> Component:
        """Look up an attached component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise ConfigurationError(
                f"process {self.pid}: no component named {name!r}"
            ) from None

    def components(self) -> list[Component]:
        return list(self._components.values())

    def bind(self, engine: "Engine") -> None:
        if self._engine is not None and self._engine is not engine:
            raise ConfigurationError(f"process {self.pid} already bound")
        self._engine = engine

    # -- facilities used by components ---------------------------------------

    def send(self, msg: Message) -> None:
        if self.crashed:
            raise CrashedProcessError(f"crashed process {self.pid} cannot send")
        self._require_engine().network.send(msg)

    def record(self, kind: str, **data: Any) -> None:
        self._require_engine().trace.record(kind, pid=self.pid, **data)

    def env_now(self) -> Time:
        """Environment-only access to the global clock.

        The paper's clock is inaccessible to algorithm code.  Only
        *environment* components (client drivers, workload models) may call
        this; algorithm components must not.
        """
        return self._require_engine().clock.now

    # -- engine-facing API ----------------------------------------------------

    def deliver(self, msg: Message) -> None:
        """Buffer a delivered message (dropped silently if crashed)."""
        if not self.crashed:
            bucket = self._inbox.get(msg.tag)
            if bucket is None:
                self._inbox[msg.tag] = [msg]
            else:
                bucket.append(msg)
            self._inbox_count += 1

    def crash(self, at: Time) -> None:
        """Cease execution permanently (crash fault)."""
        self.crashed = True
        self.crash_time = at

    def inbox_size(self) -> int:
        return self._inbox_count

    def step(self) -> Optional[str]:
        """Execute one enabled action; return its qualified name (or None).

        At most one message is consumed.  The rotation pointer advances past
        the executed action so no continuously-enabled action starves.
        """
        if self.crashed:
            raise CrashedProcessError(f"crashed process {self.pid} cannot step")
        self.steps_taken += 1
        actions = self._actions
        n = len(actions)
        if n == 0:
            return None
        # Round-robin scan with _try_fire inlined: this is the single
        # hottest process-side path, and most probed actions are disabled
        # (guard False or no matching message), so the scan must be cheap.
        rotation = self._rotation
        inbox = self._inbox
        for offset in range(n):
            idx = rotation + offset
            if idx >= n:
                idx -= n
            act = actions[idx]
            guard = act.guard
            if act.kind == "internal":
                if guard is not None and not guard(act.component):
                    continue
                act.effect()
            else:
                # receive action: earliest-buffered matching message from
                # this component's own tag bucket
                bucket = inbox.get(act.tag)
                if not bucket:
                    continue
                want_kind = act.message_kind
                hit = -1
                for i, msg in enumerate(bucket):
                    if want_kind is not None and msg.kind != want_kind:
                        continue
                    if guard is not None and not guard(act.component, msg):
                        continue
                    hit = i
                    break
                if hit < 0:
                    continue
                msg = bucket[hit]
                del bucket[hit]
                self._inbox_count -= 1
                act.effect(msg)
            self._rotation = idx + 1 if idx + 1 < n else 0
            return act.qname
        return None

    # -- internals --------------------------------------------------------------

    def _try_fire(self, act: BoundAction) -> bool:
        """Fire ``act`` if enabled (kept for tests; ``step`` inlines this)."""
        if act.kind == "internal":
            if act.guard is not None and not act.guard(act.component):
                return False
            act.effect()
            return True
        # receive action: find the earliest-buffered matching message
        bucket = self._inbox.get(act.component.name, ())
        for i, msg in enumerate(bucket):
            if not msg.matches(act.component.name, act.message_kind):
                continue
            if act.guard is not None and not act.guard(act.component, msg):
                continue
            del bucket[i]
            self._inbox_count -= 1
            act.effect(msg)
            return True
        return False

    def _require_engine(self) -> "Engine":
        if self._engine is None:
            raise SimulationError(f"process {self.pid} is not bound to an engine")
        return self._engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else "live"
        return f"Process({self.pid!r}, {status}, components={sorted(self._components)})"
