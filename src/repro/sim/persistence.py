"""Trace persistence: save runs as JSON-lines, reload, re-check.

Because every checker in the library operates purely on
:class:`~repro.sim.trace.Trace` rows (never on live simulator state), a
saved trace can be re-verified offline — useful for archiving experiment
evidence, bisecting regressions, and sharing counterexample runs.

Format: one JSON object per line, ``{"t": time, "k": kind, "p": pid,
"d": data}``, preceded by a header line with schema version and metadata.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping, Union

from repro.errors import ConfigurationError
from repro.sim.trace import Trace, TraceRecord

SCHEMA_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_trace(trace: Trace, path: PathLike,
               metadata: Mapping[str, Any] | None = None) -> int:
    """Write ``trace`` to ``path`` (JSONL).  Returns the record count."""
    p = pathlib.Path(path)
    header = {
        "schema": SCHEMA_VERSION,
        "records": len(trace),
        "metadata": dict(metadata or {}),
    }
    with p.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for rec in trace:
            fh.write(json.dumps(
                {"t": rec.time, "k": rec.kind, "p": rec.pid,
                 "d": dict(rec.data)},
                separators=(",", ":"),
            ) + "\n")
    return len(trace)


def load_trace(path: PathLike) -> tuple[Trace, dict[str, Any]]:
    """Read a trace saved by :func:`save_trace`.

    Returns ``(trace, metadata)``.  The loaded trace is read-only in
    spirit: it has no bound clock, so appending to it records at t=0.
    """
    p = pathlib.Path(path)
    trace = Trace()
    with p.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ConfigurationError(f"{p}: empty trace file")
        header = json.loads(header_line)
        if header.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"{p}: unsupported trace schema {header.get('schema')!r}"
            )
        expected = header.get("records")
        count = 0
        for line in fh:
            row = json.loads(line)
            trace._append(TraceRecord(
                time=float(row["t"]), kind=row["k"], pid=row["p"],
                data=row["d"],
            ))
            count += 1
        if expected is not None and count != expected:
            raise ConfigurationError(
                f"{p}: truncated trace: header promises {expected} records, "
                f"found {count}"
            )
    return trace, dict(header.get("metadata", {}))
