"""Guarded-action components.

The paper specifies its algorithms (Alg. 1 witness, Alg. 2 subject) as
*guarded-command action systems* executed under interleaving semantics:
each process runs the union of its threads' actions, and in each atomic
step executes one enabled action, receiving at most one message.

A :class:`Component` is one such thread: a named bundle of actions attached
to a :class:`~repro.sim.process.Process`.  Actions are declared with the
:func:`action` (internal, state-guarded) and :func:`receive`
(message-triggered) decorators and are collected in definition order.

Example — a tiny echo thread::

    class Echo(Component):
        @receive("ping")
        def on_ping(self, msg):
            self.send(msg.sender, msg.tag, "pong")

Fairness contract: the owning process executes its components' actions
round-robin, so every continuously-enabled action is eventually executed
(weak fairness), provided the process is correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.types import Message, ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

GuardFn = Callable[..., bool]


def action(guard: Callable[[Any], bool], name: str | None = None):
    """Declare an internal action with guard ``guard(self) -> bool``.

    The decorated method is the action's effect; it runs only when the guard
    holds at the moment the process scheduler reaches it.
    """

    def deco(fn):
        fn._action_spec = ("internal", guard, name or fn.__name__)
        return fn

    return deco


def receive(kind: str, guard: Callable[[Any, Message], bool] | None = None,
            name: str | None = None):
    """Declare a message-receipt action for messages of ``kind``.

    The decorated method has signature ``fn(self, msg)``.  The action is
    enabled when a message of the given kind addressed to this component is
    deliverable and ``guard(self, msg)`` (if any) holds; the message stays
    buffered until then (guarded receive).
    """

    def deco(fn):
        fn._action_spec = ("receive", kind, guard, name or fn.__name__)
        return fn

    return deco


@dataclass(slots=True)
class BoundAction:
    """An action bound to a component instance, ready for scheduling.

    ``tag`` and ``qname`` are derived from the component at construction
    so the per-step scheduler scan never rebuilds them.
    """

    component: "Component"
    name: str
    kind: str  # "internal" | "receive"
    guard: Optional[Callable]
    effect: Callable
    message_kind: Optional[str] = None
    tag: str = ""
    qname: str = ""

    def __post_init__(self) -> None:
        self.tag = self.component.name
        self.qname = f"{self.component.name}.{self.name}"

    def qualified_name(self) -> str:
        return self.qname


class Component:
    """Base class for guarded-action threads.

    Subclasses declare actions with :func:`action` / :func:`receive`.
    ``name`` doubles as the component's inbox tag: messages sent with
    ``tag == name`` are routed here.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("component name must be non-empty")
        self.name = name
        self.process: "Process | None" = None

    # -- wiring -----------------------------------------------------------

    def attached(self) -> None:
        """Hook called after the component is attached to its process."""

    def bound_actions(self) -> list[BoundAction]:
        """Collect this instance's actions in class-definition order."""
        out: list[BoundAction] = []
        seen: set[str] = set()
        for klass in type(self).__mro__:
            for attr, fn in vars(klass).items():
                spec = getattr(fn, "_action_spec", None)
                if spec is None or attr in seen:
                    continue
                seen.add(attr)
                bound = getattr(self, attr)
                if spec[0] == "internal":
                    _, guard, name = spec
                    out.append(BoundAction(self, name, "internal", guard, bound))
                else:
                    _, kind, guard, name = spec
                    out.append(
                        BoundAction(self, name, "receive", guard, bound,
                                    message_kind=kind)
                    )
        return out

    # -- facilities available to effects -----------------------------------

    @property
    def pid(self) -> ProcessId:
        """Identifier of the owning process."""
        return self._process().pid

    def send(self, to: ProcessId, tag: str, kind: str, **payload: Any) -> None:
        """Send a message; delivery is reliable, delayed, non-FIFO."""
        self._process().send(
            Message(sender=self.pid, receiver=to, tag=tag, kind=kind,
                    payload=payload)
        )

    def record(self, kind: str, **data: Any) -> None:
        """Append a structured record to the run trace."""
        self._process().record(kind, component=self.name, **data)

    def other_component(self, name: str) -> "Component":
        """Access a sibling component on the same process.

        The paper's subject threads share variables ("the variables used by
        q.s0 and q.s1 are mutually accessible to each other"); this is the
        mechanism that models that sharing.
        """
        return self._process().component(name)

    def _process(self) -> "Process":
        if self.process is None:
            raise SimulationError(
                f"component {self.name!r} is not attached to a process"
            )
        return self.process

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        owner = self.process.pid if self.process else "<detached>"
        return f"{type(self).__name__}({self.name!r}@{owner})"


class FunctionalComponent(Component):
    """A component assembled from plain callables (no subclassing needed).

    Handy in tests::

        comp = FunctionalComponent("c", internal=[("tick", guard, effect)])
    """

    def __init__(
        self,
        name: str,
        internal: Iterable[tuple[str, Callable, Callable]] = (),
        receives: Iterable[tuple[str, str, Callable]] = (),
    ) -> None:
        super().__init__(name)
        self._internal = list(internal)
        self._receives = list(receives)

    def bound_actions(self) -> list[BoundAction]:
        out = [
            BoundAction(self, name, "internal", guard, effect)
            for name, guard, effect in self._internal
        ]
        out += [
            BoundAction(self, name, "receive", None, effect, message_kind=kind)
            for name, kind, effect in self._receives
        ]
        return out
