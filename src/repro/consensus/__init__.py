"""Downstream protocols driven by a (possibly extracted) failure detector.

The paper motivates ◇P as "sufficiently powerful to solve many
crash-tolerant problems including consensus and stable leader election"
(Section 1).  This package closes the loop for experiment E8: the oracle
*extracted from black-box dining* plugs into

* :class:`~repro.consensus.chandra_toueg.ChandraTouegConsensus` — the
  rotating-coordinator ◇S consensus protocol (◇P ⪰ ◇S), and
* :class:`~repro.oracles.omega.OmegaElector` + the agreement checkers in
  :mod:`repro.consensus.leader` — stable leader election,

unchanged, because :class:`~repro.core.extraction.ExtractedDetector`
presents the standard query surface.
"""

from repro.consensus.atomic_broadcast import (
    AtomicBroadcast,
    check_total_order,
    setup_atomic_broadcast,
)
from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.chandra_toueg import ChandraTouegConsensus, ConsensusResult, check_consensus
from repro.consensus.leader import check_leader_stability, leader_series

__all__ = [
    "AtomicBroadcast",
    "ChandraTouegConsensus",
    "ConsensusResult",
    "ReliableBroadcast",
    "check_consensus",
    "check_total_order",
    "setup_atomic_broadcast",
    "check_leader_stability",
    "leader_series",
]
