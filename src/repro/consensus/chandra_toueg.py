"""Chandra–Toueg rotating-coordinator consensus (◇S-class oracle).

The classic 1996 protocol, implemented for the simulator's asynchronous
message-passing model.  It tolerates ``f < n/2`` crashes given a failure
detector with strong completeness and eventual (weak) accuracy — ◇P, and
therefore also the oracle the paper's reduction extracts from dining,
more than suffices.

Round ``r`` (coordinator ``c = pids[(r-1) mod n]``):

1. every undecided process sends its ``(estimate, ts)`` to ``c``;
2. ``c``, holding a majority of round-``r`` estimates, proposes the
   estimate with the highest ``ts``;
3. each participant waits for ``c``'s proposal — adopting it and acking —
   or, if its detector suspects ``c`` first, nacks; either way it then
   enters round ``r+1``;
4. ``c``, holding a majority of replies, *reliably broadcasts* the decision
   if all were acks.

The decision travels by :class:`~repro.consensus.broadcast.ReliableBroadcast`
so a coordinator crash mid-announcement cannot split the outcome.
Decisions are recorded as ``"decide"`` trace rows;
:func:`check_consensus` verifies agreement / validity / termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace
from repro.types import Message, ProcessId


class ChandraTouegConsensus(Component):
    """One process's consensus endpoint.

    ``detector`` is any object with ``suspected(pid) -> bool`` — a native
    oracle module or an :class:`~repro.core.extraction.ExtractedDetector`.
    Wire all endpoints with :func:`setup_consensus`.
    """

    def __init__(self, name: str, pids: Sequence[ProcessId], detector: Any,
                 initial_value: Any) -> None:
        super().__init__(name)
        self.pids = sorted(pids)
        if len(self.pids) < 2:
            raise ConfigurationError("consensus needs at least 2 processes")
        self.n = len(self.pids)
        self.majority = self.n // 2 + 1
        self.detector = detector
        self.initial_value = initial_value

        self.estimate: Any = initial_value
        self.ts = 0
        self.round = 1
        self.estimate_sent = False
        self.decided: Optional[Any] = None
        self.decided_round: Optional[int] = None

        # Per-round coordinator bookkeeping (a process may be coordinator of
        # many rounds; each round's duty is independent of its own progress).
        self._estimates: dict[int, list[tuple[Any, int]]] = {}
        self._proposed: set[int] = set()
        self._acks: dict[int, int] = {}
        self._nacks: dict[int, int] = {}
        self._closed: set[int] = set()
        # Proposals received, by round (adopted when we reach that round).
        self._proposals: dict[int, Any] = {}

        self.rb_name = f"{name}.rb"  # sibling ReliableBroadcast component

    # -- helpers ---------------------------------------------------------------

    def coordinator(self, r: int) -> ProcessId:
        return self.pids[(r - 1) % self.n]

    def _rb(self):
        return self.other_component(self.rb_name)

    def on_rb_deliver(self, origin: ProcessId, body: Any) -> None:
        if self.decided is None and isinstance(body, Mapping) and "decision" in body:
            self.decided = body["decision"]
            self.decided_round = body["round"]
            self.record("decide", value=self.decided, round=self.decided_round)

    # -- phase 1: send estimate to the round's coordinator ------------------------

    @action(guard=lambda self: self.decided is None and not self.estimate_sent)
    def send_estimate(self) -> None:
        self.estimate_sent = True
        self.send(self.coordinator(self.round), self.name, "estimate",
                  round=self.round, est=self.estimate, ts=self.ts)

    @receive("estimate")
    def on_estimate(self, msg: Message) -> None:
        r = msg.payload["round"]
        self._estimates.setdefault(r, []).append(
            (msg.payload["est"], msg.payload["ts"])
        )

    # -- phase 2: coordinator proposes on a majority of estimates ------------------

    @action(guard=lambda self: any(
        self.coordinator(r) == self.pid and r not in self._proposed
        and len(ests) >= self.majority
        for r, ests in self._estimates.items()))
    def propose(self) -> None:
        for r, ests in sorted(self._estimates.items()):
            if (self.coordinator(r) == self.pid and r not in self._proposed
                    and len(ests) >= self.majority):
                self._proposed.add(r)
                value = max(ests, key=lambda e: e[1])[0]
                for pid in self.pids:
                    self.send(pid, self.name, "propose", round=r, v=value)

    @receive("propose")
    def on_propose(self, msg: Message) -> None:
        self._proposals[msg.payload["round"]] = msg.payload["v"]

    # -- phase 3: adopt-and-ack, or suspect-and-nack --------------------------------

    @action(guard=lambda self: self.decided is None and self.estimate_sent
            and self.round in self._proposals)
    def adopt(self) -> None:
        v = self._proposals[self.round]
        self.estimate = v
        self.ts = self.round
        self.send(self.coordinator(self.round), self.name, "ack",
                  round=self.round)
        self._next_round()

    @action(guard=lambda self: self.decided is None and self.estimate_sent
            and self.round not in self._proposals
            and self.coordinator(self.round) != self.pid
            and self.detector.suspected(self.coordinator(self.round)))
    def give_up_on_coordinator(self) -> None:
        self.send(self.coordinator(self.round), self.name, "nack",
                  round=self.round)
        self._next_round()

    def _next_round(self) -> None:
        self.round += 1
        self.estimate_sent = False

    # -- phase 4: coordinator decides on a unanimous majority of replies ------------

    @receive("ack")
    def on_ack(self, msg: Message) -> None:
        r = msg.payload["round"]
        self._acks[r] = self._acks.get(r, 0) + 1

    @receive("nack")
    def on_nack(self, msg: Message) -> None:
        r = msg.payload["round"]
        self._nacks[r] = self._nacks.get(r, 0) + 1

    @action(guard=lambda self: any(
        r not in self._closed
        and self._acks.get(r, 0) + self._nacks.get(r, 0) >= self.majority
        for r in self._proposed))
    def conclude_round(self) -> None:
        for r in sorted(self._proposed):
            if r in self._closed:
                continue
            acks, nacks = self._acks.get(r, 0), self._nacks.get(r, 0)
            if acks + nacks < self.majority:
                continue
            self._closed.add(r)
            if nacks == 0:
                # Unanimous majority: the proposal is locked; announce it.
                self._rb().broadcast(
                    {"decision": self._proposal_value(r), "round": r}
                )

    def _proposal_value(self, r: int) -> Any:
        ests = self._estimates[r]
        return max(ests, key=lambda e: e[1])[0]


def setup_consensus(
    engine: Engine,
    pids: Sequence[ProcessId],
    detectors: Mapping[ProcessId, Any],
    proposals: Mapping[ProcessId, Any],
    name: str = "consensus",
) -> dict[ProcessId, ChandraTouegConsensus]:
    """Attach a consensus endpoint (plus its reliable-broadcast sibling) to
    every process.  ``detectors[pid]`` supplies each local oracle."""
    from repro.consensus.broadcast import ReliableBroadcast

    endpoints: dict[ProcessId, ChandraTouegConsensus] = {}
    for pid in pids:
        ep = ChandraTouegConsensus(name, pids, detectors[pid], proposals[pid])
        rb = ReliableBroadcast(ep.rb_name, peers=[x for x in pids if x != pid],
                               deliver=ep.on_rb_deliver)
        proc = engine.process(pid)
        proc.add_component(ep)
        proc.add_component(rb)
        endpoints[pid] = ep
    return endpoints


@dataclass
class ConsensusResult:
    """Verdict of one consensus run."""

    agreement: bool
    validity: bool
    termination: bool
    decisions: dict[ProcessId, Any] = field(default_factory=dict)
    rounds: dict[ProcessId, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.agreement and self.validity and self.termination

    def format_table(self) -> str:
        verdict = "OK" if self.ok else "VIOLATED"
        lines = [
            f"consensus: {verdict} (agreement={self.agreement}, "
            f"validity={self.validity}, termination={self.termination})"
        ]
        for pid, v in sorted(self.decisions.items()):
            lines.append(f"  {pid} decided {v!r} in round {self.rounds[pid]}")
        return "\n".join(lines)


def check_consensus(
    trace: Trace,
    pids: Sequence[ProcessId],
    schedule: CrashSchedule,
    proposals: Mapping[ProcessId, Any],
) -> ConsensusResult:
    """Check agreement / validity / termination from ``"decide"`` rows."""
    decisions: dict[ProcessId, Any] = {}
    rounds: dict[ProcessId, int] = {}
    for rec in trace.records(kind="decide"):
        if rec.pid not in decisions:  # first decision counts
            decisions[rec.pid] = rec["value"]
            rounds[rec.pid] = rec["round"]
    correct = schedule.correct(pids)
    values = set(decisions.values())
    return ConsensusResult(
        agreement=len(values) <= 1,
        validity=values <= set(proposals.values()),
        termination=correct <= set(decisions),
        decisions=decisions,
        rounds=rounds,
    )
