"""Atomic (total-order) broadcast from repeated consensus.

The Chandra–Toueg reduction in the other direction: atomic broadcast is
implementable from consensus (and is equivalent to it).  Each endpoint

1. disseminates client messages with reliable broadcast;
2. runs a sequence of consensus instances; instance ``k`` is proposed the
   set of messages seen-but-undelivered at the proposer;
3. delivers instance ``k``'s decided batch in a deterministic order before
   touching instance ``k+1``.

Agreement and total order follow from consensus agreement plus the
deterministic in-batch order; validity (a delivered message was really
broadcast) from consensus validity; liveness from consensus termination
given f < n/2 and a ◇S-class detector — including the oracle the paper's
reduction extracts from dining, which experiment E17 wires end-to-end.

Deliveries are recorded as ``"adeliver"`` trace rows;
:func:`check_total_order` verifies the broadcast specification from traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.consensus.broadcast import ReliableBroadcast
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.sim.component import Component, action
from repro.sim.engine import Engine
from repro.sim.faults import CrashSchedule
from repro.sim.trace import Trace
from repro.types import ProcessId

_payload_uids = itertools.count()


class AtomicBroadcast(Component):
    """One process's total-order broadcast endpoint.

    ``detector`` is any ◇S-class oracle query object (``suspected(pid)``);
    consensus endpoints for successive instances are spun up lazily as
    sibling components.
    """

    def __init__(self, name: str, pids: Sequence[ProcessId],
                 detector: Any) -> None:
        super().__init__(name)
        self.pids = sorted(pids)
        self.detector = detector
        self.seen: dict[str, Any] = {}        # mid -> payload
        self.delivered_ids: set[str] = set()
        self.delivered_log: list[tuple[str, Any]] = []
        self.instance = 0
        self._running: Optional[ChandraTouegConsensus] = None
        self._rb: Optional[ReliableBroadcast] = None

    # -- wiring -----------------------------------------------------------

    def attached(self) -> None:
        self._rb = ReliableBroadcast(
            f"{self.name}.rb",
            peers=[p for p in self.pids if p != self.pid],
            deliver=self._on_disseminated,
        )
        self.process.add_component(self._rb)

    # -- client API ----------------------------------------------------------

    def abroadcast(self, payload: Any) -> str:
        """Submit a message for totally-ordered delivery; returns its id."""
        mid = f"{self.pid}:{next(_payload_uids)}"
        assert self._rb is not None
        self._rb.broadcast({"mid": mid, "payload": payload})
        return mid

    def _on_disseminated(self, origin: ProcessId, body: Mapping) -> None:
        self.seen.setdefault(body["mid"], body["payload"])

    # -- the consensus sequence ---------------------------------------------------

    def _undelivered(self) -> list[str]:
        return sorted(m for m in self.seen if m not in self.delivered_ids)

    @action(guard=lambda self: self._running is None
            and bool(self._undelivered()))
    def start_instance(self) -> None:
        proposal = tuple(self._undelivered())
        ep = ChandraTouegConsensus(
            f"{self.name}.c{self.instance}", self.pids, self.detector,
            initial_value=proposal,
        )
        rb = ReliableBroadcast(
            ep.rb_name, peers=[p for p in self.pids if p != self.pid],
            deliver=ep.on_rb_deliver,
        )
        self.process.add_component(ep)
        self.process.add_component(rb)
        self._running = ep

    @action(guard=lambda self: self._running is not None
            and self._running.decided is not None)
    def conclude_instance(self) -> None:
        assert self._running is not None
        batch = self._running.decided
        for mid in batch:
            if mid in self.delivered_ids:
                continue
            self.delivered_ids.add(mid)
            # A decided id may name a message whose payload dissemination
            # has not reached us yet; reliable broadcast guarantees it
            # will, so park unknown payloads for later resolution.
            payload = self.seen.get(mid)
            self.delivered_log.append((mid, payload))
            self.record("adeliver", mid=mid, instance=self.instance)
        self._running = None
        self.instance += 1

    @action(guard=lambda self: any(p is None for _, p in self.delivered_log))
    def resolve_late_payloads(self) -> None:
        self.delivered_log = [
            (mid, self.seen.get(mid) if payload is None else payload)
            for mid, payload in self.delivered_log
        ]


def setup_atomic_broadcast(
    engine: Engine,
    pids: Sequence[ProcessId],
    detectors: Mapping[ProcessId, Any],
    name: str = "abc",
) -> dict[ProcessId, AtomicBroadcast]:
    """Attach an atomic-broadcast endpoint to every process."""
    endpoints = {}
    for pid in pids:
        ep = AtomicBroadcast(name, pids, detectors[pid])
        engine.process(pid).add_component(ep)
        endpoints[pid] = ep
    return endpoints


@dataclass
class TotalOrderResult:
    """Verdict of an atomic-broadcast run."""

    agreement: bool          # delivered sequences are prefix-compatible
    no_duplication: bool
    validity: bool           # only broadcast ids delivered
    all_delivered: bool      # every broadcast id delivered at every correct
    sequences: dict[ProcessId, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (self.agreement and self.no_duplication and self.validity
                and self.all_delivered)


def check_total_order(
    trace: Trace,
    pids: Sequence[ProcessId],
    schedule: CrashSchedule,
    broadcast_ids: set[str],
) -> TotalOrderResult:
    """Verify the atomic-broadcast specification from ``"adeliver"`` rows."""
    sequences: dict[ProcessId, list[str]] = {}
    for pid in pids:
        sequences[pid] = [
            r["mid"] for r in trace.records(kind="adeliver", pid=pid)
        ]
    correct = schedule.correct(pids)
    no_dup = all(len(seq) == len(set(seq)) for seq in sequences.values())
    validity = all(
        set(seq) <= broadcast_ids for seq in sequences.values()
    )
    # Agreement/total order: any two sequences must be prefix-compatible
    # (one is a prefix of the other — crashed processes stop early).
    agreement = True
    seqs = list(sequences.values())
    for a in seqs:
        for b in seqs:
            n = min(len(a), len(b))
            if a[:n] != b[:n]:
                agreement = False
    all_delivered = all(
        set(sequences[pid]) == broadcast_ids for pid in correct
    )
    return TotalOrderResult(
        agreement=agreement, no_duplication=no_dup, validity=validity,
        all_delivered=all_delivered, sequences=sequences,
    )
