"""Reliable broadcast on top of reliable point-to-point channels.

Uniform relay scheme: the first time a process receives (or originates) a
broadcast message it relays a copy to every peer before delivering it
locally.  With reliable channels this guarantees: if any *correct* process
delivers m, every correct process eventually delivers m — even when the
originator crashed mid-broadcast.  (Messages from a crashed originator that
reached no correct process are simply lost, which the definition allows.)

Used by Chandra–Toueg consensus for the decision announcement, where plain
best-effort broadcast would violate agreement if the coordinator crashed
between sends.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

from repro.sim.component import Component, receive
from repro.types import Message, ProcessId

_bcast_ids = itertools.count()


class ReliableBroadcast(Component):
    """Per-process reliable-broadcast endpoint.

    ``deliver`` is invoked exactly once per broadcast message (duplicates
    are filtered by broadcast id).
    """

    def __init__(self, name: str, peers: Iterable[ProcessId],
                 deliver: Optional[Callable[[ProcessId, Any], None]] = None) -> None:
        super().__init__(name)
        self.peers = tuple(peers)
        self.deliver = deliver
        self._seen: set[tuple[ProcessId, int]] = set()
        self.delivered_count = 0

    def broadcast(self, payload: Any) -> None:
        """Originate a broadcast (also delivered locally)."""
        bid = (self.pid, next(_bcast_ids))
        self._handle(bid, self.pid, payload)

    @receive("rb")
    def on_relay(self, msg: Message) -> None:
        bid = tuple(msg.payload["bid"])
        self._handle(bid, msg.payload["origin"], msg.payload["body"])

    def _handle(self, bid: tuple[ProcessId, int], origin: ProcessId,
                body: Any) -> None:
        if bid in self._seen:
            return
        self._seen.add(bid)
        # Relay first, deliver second: if we crash mid-relay some peers got
        # it; if we completed delivery, every peer was sent a copy.
        for peer in self.peers:
            self.send(peer, self.name, "rb", bid=list(bid), origin=origin,
                      body=body)
        self.delivered_count += 1
        if self.deliver is not None:
            self.deliver(origin, body)
