"""Stable leader election checkers.

:class:`~repro.oracles.omega.OmegaElector` publishes each process's leader
estimate as ``"leader"`` trace rows; these helpers verify the Ω contract —
eventually every correct process permanently agrees on the same correct
leader — and report when stabilization happened.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.faults import CrashSchedule
from repro.sim.temporal import stable_suffix_start
from repro.sim.trace import Trace
from repro.types import ProcessId, Time


def leader_series(trace: Trace, pid: ProcessId) -> list[tuple[Time, ProcessId]]:
    """``(time, leader_estimate)`` history of one process."""
    return trace.series("leader", "leader", pid=pid)


def check_leader_stability(
    trace: Trace,
    pids: Sequence[ProcessId],
    schedule: CrashSchedule,
) -> tuple[bool, Optional[ProcessId], Optional[Time]]:
    """Verify Ω: returns ``(ok, final_leader, stabilization_time)``.

    ok iff every correct process's final estimate is the same *correct*
    process.  ``stabilization_time`` is the latest final estimate change
    across correct processes.
    """
    correct = schedule.correct(pids)
    finals: set[ProcessId] = set()
    stabilized: list[Time] = []
    for pid in correct:
        series = leader_series(trace, pid)
        if not series:
            return False, None, None
        finals.add(series[-1][1])
        t = stable_suffix_start(series)
        if t is not None:
            stabilized.append(t)
    if len(finals) != 1:
        return False, None, None
    leader = next(iter(finals))
    if leader not in correct:
        return False, leader, None
    return True, leader, max(stabilized, default=0.0)
