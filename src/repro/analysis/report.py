"""Plain-text experiment tables (paper-style rows).

Minimal aligned-column formatting so benchmark output and EXPERIMENTS.md
can share identical tables without a heavyweight dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """An aligned fixed-width text table.

    >>> t = Table(["run", "ok"])
    >>> t.add_row(["r1", True])
    >>> print(t.render())   # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        if isinstance(v, bool):
            return "yes" if v else "no"
        if v is None:
            return "-"
        return str(v)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "  "
        head = sep.join(c.ljust(w) for c, w in zip(self.columns, widths))
        bar = sep.join("-" * w for w in widths)
        body = [
            sep.join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        lines = ([self.title, ""] if self.title else []) + [head, bar] + body
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
