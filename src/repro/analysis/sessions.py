"""Eating-session structure of a reduction pair — reproducing Figure 1.

The paper's only figure shows, for the exclusive suffix of a run, the
witness and subject eating sessions of both dining instances: per instance
the witness and subject alternate, and the two subjects' sessions overlap
pairwise (the hand-off "gray regions").  This module extracts those
sessions from a trace, verifies both structural claims, and renders an
ASCII timeline of the same picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.pair import ReductionPair
from repro.dining.spec import eating_intervals
from repro.sim.trace import Trace, intervals_overlap
from repro.types import Time

Interval = tuple[Time, Time]


def sessions_after(intervals: Sequence[Interval], after: Time) -> list[Interval]:
    """Sessions that *start* at or after ``after``."""
    return [iv for iv in intervals if iv[0] >= after]


def check_witness_throttling(
    witness_sessions: Sequence[Interval],
    subject_sessions: Sequence[Interval],
    after: Time,
) -> tuple[bool, int]:
    """Fig. 1 / Theorem 2 structure: in the suffix, between any two
    consecutive witness sessions of one instance the subject of that
    instance eats at least once.

    Returns ``(ok, pairs_checked)``.
    """
    ws = sessions_after(witness_sessions, after)
    checked = 0
    for (a_start, a_end), (b_start, _) in zip(ws, ws[1:]):
        checked += 1
        if not any(
            a_end <= s_start and s_end <= b_start or  # fully between
            intervals_overlap((a_end, b_start), (s_start, s_end))
            for s_start, s_end in subject_sessions
        ):
            return False, checked
    return True, checked


def check_handoff_overlap(
    subject0_sessions: Sequence[Interval],
    subject1_sessions: Sequence[Interval],
    after: Time,
) -> tuple[bool, int]:
    """Fig. 1 hand-off: every completed subject session (in the suffix)
    overlaps some session of the *other* subject — the gray regions.

    Returns ``(ok, sessions_checked)``.
    """
    checked = 0
    for mine, others in ((subject0_sessions, subject1_sessions),
                         (subject1_sessions, subject0_sessions)):
        for iv in sessions_after(mine, after):
            checked += 1
            if not any(intervals_overlap(iv, other) for other in others):
                return False, checked
    return True, checked


@dataclass
class PairSessionAnalysis:
    """Extracted session structure of one reduction pair."""

    pair_id: str
    witness: dict[int, list[Interval]] = field(default_factory=dict)
    subject: dict[int, list[Interval]] = field(default_factory=dict)
    end_time: Time = 0.0

    def throttling_ok(self, after: Time) -> bool:
        return all(
            check_witness_throttling(self.witness[i], self.subject[i], after)[0]
            for i in (0, 1)
        )

    def handoff_ok(self, after: Time) -> bool:
        return check_handoff_overlap(self.subject[0], self.subject[1], after)[0]

    def counts(self) -> dict[str, int]:
        return {
            **{f"w{i}": len(self.witness[i]) for i in (0, 1)},
            **{f"s{i}": len(self.subject[i]) for i in (0, 1)},
        }

    def render(self, t0: Time, t1: Time, width: int = 88) -> str:
        """ASCII reproduction of Figure 1 over the window ``[t0, t1]``."""
        tracks = {}
        for i in (0, 1):
            tracks[f"DX{i} witness"] = self.witness[i]
            tracks[f"DX{i} subject"] = self.subject[i]
        return render_ascii_timeline(tracks, t0, t1, width)


def analyze_pair_sessions(trace: Trace, pair: ReductionPair,
                          end_time: Time) -> PairSessionAnalysis:
    """Extract witness/subject eating sessions of both instances of a pair."""
    out = PairSessionAnalysis(pair_id=pair.pair_id, end_time=end_time)
    dx0, dx1 = pair.instance_ids()
    for i, iid in enumerate((dx0, dx1)):
        out.witness[i] = eating_intervals(trace, iid, pair.witness_pid, end_time)
        out.subject[i] = eating_intervals(trace, iid, pair.subject_pid, end_time)
    return out


def render_ascii_timeline(
    tracks: Mapping[str, Sequence[Interval]],
    t0: Time,
    t1: Time,
    width: int = 88,
    glyphs: "Mapping[str, str] | None" = None,
) -> str:
    """Render interval tracks as fixed-width ASCII rows.

    ``█`` marks time bins in which the track's diner was eating; the ruler
    row marks the window bounds.

    Intervals may carry an optional third element — a *kind* string —
    which ``glyphs`` maps to a cell character (span-kind styling, e.g.
    ``{"wrongful": "█", "justified": "▒"}``).  When several kinds cover
    the same bin, the earliest entry in ``glyphs`` wins; intervals whose
    kind has no glyph (or with no kind at all) fall back to ``█``.
    """
    if t1 <= t0:
        raise ValueError("empty window")
    span = t1 - t0
    label_w = max((len(k) for k in tracks), default=0) + 1
    lines = []
    for name, ivs in tracks.items():
        cells = []
        for c in range(width):
            lo = t0 + span * c / width
            hi = t0 + span * (c + 1) / width
            covering = [iv for iv in ivs if iv[0] < hi and iv[1] > lo]
            cell = "·"
            if covering:
                cell = "█"
                if glyphs:
                    for kind, glyph in glyphs.items():
                        if any(len(iv) > 2 and iv[2] == kind
                               for iv in covering):
                            cell = glyph
                            break
            cells.append(cell)
        lines.append(f"{name:<{label_w}}|{''.join(cells)}|")
    ruler = f"{'':<{label_w}}|{t0:<{width - 10}.1f}{t1:>10.1f}|"
    return "\n".join(lines + [ruler])
