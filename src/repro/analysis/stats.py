"""Seed-sweep statistics for experiment aggregation.

Reproduction experiments report single-run tables; for claims about
*distributions* (detection latency, convergence time) E15 sweeps seeds and
summarizes with these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SweepStats:
    """Summary statistics of one metric across a seed sweep."""

    name: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def min(self) -> float:
        return float(np.min(self.values)) if self.values else float("nan")

    @property
    def max(self) -> float:
        return float(np.max(self.values)) if self.values else float("nan")

    def summary(self) -> str:
        return (f"{self.mean:.1f} ± {self.std:.1f} "
                f"[{self.min:.1f}, {self.max:.1f}] (n={self.n})")


def sweep(
    metric_fn: Callable[[int], Optional[float]],
    seeds: Iterable[int],
    name: str = "metric",
) -> SweepStats:
    """Evaluate ``metric_fn(seed)`` across seeds, skipping None results."""
    values = []
    for seed in seeds:
        v = metric_fn(seed)
        if v is not None:
            values.append(float(v))
    return SweepStats(name=name, values=tuple(values))


def sweep_many(
    run_fn: Callable[[int], dict],
    seeds: Sequence[int],
) -> dict[str, SweepStats]:
    """Run ``run_fn(seed) -> {metric: value}`` across seeds and aggregate
    per-metric (None values skipped per metric)."""
    collected: dict[str, list[float]] = {}
    for seed in seeds:
        for key, value in run_fn(seed).items():
            if value is not None:
                collected.setdefault(key, []).append(float(value))
    return {
        key: SweepStats(name=key, values=tuple(vals))
        for key, vals in collected.items()
    }
