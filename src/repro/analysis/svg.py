"""Dependency-free SVG rendering of session timelines.

Produces a publication-style version of the paper's Figure 1 (and any
other interval tracks): one horizontal lane per track, a filled rect per
eating session, a time axis, and an optional marker line (e.g. the
convergence point).  Pure string assembly — no plotting libraries.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import Time

Interval = tuple[Time, Time]

_LANE_COLORS = ("#4878a8", "#a85448", "#6aa06a", "#9678b4",
                "#ba9d49", "#5aa3b0")


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_svg_timeline(
    tracks: Mapping[str, Sequence[Interval]],
    t0: Time,
    t1: Time,
    width: int = 900,
    lane_height: int = 34,
    label_width: int = 150,
    title: str | None = None,
    marker: Optional[Time] = None,
    marker_label: str = "",
) -> str:
    """Render interval tracks as a standalone SVG document string."""
    if t1 <= t0:
        raise ConfigurationError("empty time window")
    if not tracks:
        raise ConfigurationError("no tracks to render")
    span = t1 - t0
    plot_w = width - label_width - 20
    top = 34 if title else 10
    height = top + lane_height * len(tracks) + 30

    def x_of(t: Time) -> float:
        return label_width + plot_w * (t - t0) / span

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    for lane, (name, intervals) in enumerate(tracks.items()):
        y = top + lane * lane_height
        color = _LANE_COLORS[lane % len(_LANE_COLORS)]
        parts.append(
            f'<text x="{label_width - 8}" y="{y + lane_height / 2 + 4:.0f}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<line x1="{label_width}" y1="{y + lane_height / 2:.0f}" '
            f'x2="{label_width + plot_w}" y2="{y + lane_height / 2:.0f}" '
            f'stroke="#ddd"/>'
        )
        for a, b in intervals:
            a, b = max(a, t0), min(b, t1)
            if b <= a:
                continue
            parts.append(
                f'<rect x="{x_of(a):.1f}" y="{y + 6}" '
                f'width="{max(x_of(b) - x_of(a), 1.0):.1f}" '
                f'height="{lane_height - 12}" fill="{color}" '
                f'fill-opacity="0.85" rx="2"/>'
            )
    # Axis with 5 ticks.
    axis_y = top + lane_height * len(tracks) + 8
    parts.append(
        f'<line x1="{label_width}" y1="{axis_y}" '
        f'x2="{label_width + plot_w}" y2="{axis_y}" stroke="#333"/>'
    )
    for i in range(6):
        t = t0 + span * i / 5
        x = x_of(t)
        parts.append(f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" '
                     f'y2="{axis_y + 4}" stroke="#333"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" '
            f'text-anchor="middle" font-size="10">{t:.0f}</text>'
        )
    if marker is not None and t0 <= marker <= t1:
        x = x_of(marker)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" y2="{axis_y}" '
            f'stroke="#c33" stroke-dasharray="4,3"/>'
        )
        if marker_label:
            parts.append(
                f'<text x="{x + 4:.1f}" y="{top + 10}" fill="#c33" '
                f'font-size="10">{_esc(marker_label)}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | pathlib.Path) -> pathlib.Path:
    """Write an SVG document next to the experiment artifacts."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(svg, encoding="utf-8")
    return p
