"""Dependency-free SVG rendering of session timelines.

Produces a publication-style version of the paper's Figure 1 (and any
other interval tracks): one horizontal lane per track, a filled rect per
eating session, a time axis, and an optional marker line (e.g. the
convergence point).  Pure string assembly — no plotting libraries.

Intervals may carry an optional third element — a *kind* string — which
``kind_colors`` maps to a fill color (span-kind lane styling: wrongful
vs. justified suspicion, hungry vs. eating).  A ``cdf`` step series adds
a cumulative-fraction panel between the lanes and the axis (cross-seed
convergence curves for ``repro timeline``).  Both extensions are opt-in:
with neither, output is byte-identical to the original renderer.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import Time

#: ``(start, end)`` or ``(start, end, kind)`` — the kind selects a fill
#: from ``kind_colors`` when given, else the lane color applies.
Interval = tuple

_LANE_COLORS = ("#4878a8", "#a85448", "#6aa06a", "#9678b4",
                "#ba9d49", "#5aa3b0")


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_svg_timeline(
    tracks: Mapping[str, Sequence[Interval]],
    t0: Time,
    t1: Time,
    width: int = 900,
    lane_height: int = 34,
    label_width: int = 150,
    title: str | None = None,
    marker: Optional[Time] = None,
    marker_label: str = "",
    kind_colors: Optional[Mapping[str, str]] = None,
    cdf: Optional[Sequence[tuple[Time, float]]] = None,
    cdf_label: str = "",
    cdf_height: int = 70,
) -> str:
    """Render interval tracks as a standalone SVG document string.

    ``kind_colors`` maps the optional third interval element to a fill
    color (span-kind styling); unstyled intervals keep the lane color.
    ``cdf`` is a non-decreasing step series ``[(t, fraction), ...]``
    drawn as a cumulative panel between the lanes and the time axis.
    """
    if t1 <= t0:
        raise ConfigurationError("empty time window")
    if not tracks and cdf is None:
        raise ConfigurationError("no tracks to render")
    span = t1 - t0
    plot_w = width - label_width - 20
    top = 34 if title else 10
    cdf_extra = 0 if cdf is None else cdf_height + 16
    height = top + lane_height * len(tracks) + cdf_extra + 30

    def x_of(t: Time) -> float:
        return label_width + plot_w * (t - t0) / span

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    for lane, (name, intervals) in enumerate(tracks.items()):
        y = top + lane * lane_height
        color = _LANE_COLORS[lane % len(_LANE_COLORS)]
        parts.append(
            f'<text x="{label_width - 8}" y="{y + lane_height / 2 + 4:.0f}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<line x1="{label_width}" y1="{y + lane_height / 2:.0f}" '
            f'x2="{label_width + plot_w}" y2="{y + lane_height / 2:.0f}" '
            f'stroke="#ddd"/>'
        )
        for iv in intervals:
            a, b = iv[0], iv[1]
            fill = color
            if kind_colors is not None and len(iv) > 2:
                fill = kind_colors.get(iv[2], color)
            a, b = max(a, t0), min(b, t1)
            if b <= a:
                continue
            parts.append(
                f'<rect x="{x_of(a):.1f}" y="{y + 6}" '
                f'width="{max(x_of(b) - x_of(a), 1.0):.1f}" '
                f'height="{lane_height - 12}" fill="{fill}" '
                f'fill-opacity="0.85" rx="2"/>'
            )
    if cdf is not None:
        cdf_top = top + lane_height * len(tracks) + 8
        cdf_bot = cdf_top + cdf_height

        def y_of(frac: float) -> float:
            return cdf_bot - cdf_height * min(max(frac, 0.0), 1.0)

        parts.append(
            f'<rect x="{label_width}" y="{cdf_top}" width="{plot_w}" '
            f'height="{cdf_height}" fill="none" stroke="#ccc"/>'
        )
        if cdf_label:
            parts.append(
                f'<text x="{label_width - 8}" '
                f'y="{cdf_top + cdf_height / 2 + 4:.0f}" '
                f'text-anchor="end" font-size="10">{_esc(cdf_label)}</text>'
            )
        # Step polyline: horizontal to each point's time, then vertical
        # to its cumulative fraction.
        pts = [(label_width, y_of(0.0))]
        frac = 0.0
        for t, f in cdf:
            x = x_of(min(max(t, t0), t1))
            pts.append((x, y_of(frac)))
            pts.append((x, y_of(f)))
            frac = f
        pts.append((label_width + plot_w, y_of(frac)))
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="#2a7a4b" '
            f'stroke-width="1.5"/>'
        )
    # Axis with 5 ticks.
    axis_y = top + lane_height * len(tracks) + cdf_extra + 8
    parts.append(
        f'<line x1="{label_width}" y1="{axis_y}" '
        f'x2="{label_width + plot_w}" y2="{axis_y}" stroke="#333"/>'
    )
    for i in range(6):
        t = t0 + span * i / 5
        x = x_of(t)
        parts.append(f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" '
                     f'y2="{axis_y + 4}" stroke="#333"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" '
            f'text-anchor="middle" font-size="10">{t:.0f}</text>'
        )
    if marker is not None and t0 <= marker <= t1:
        x = x_of(marker)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" y2="{axis_y}" '
            f'stroke="#c33" stroke-dasharray="4,3"/>'
        )
        if marker_label:
            parts.append(
                f'<text x="{x + 4:.1f}" y="{top + 10}" fill="#c33" '
                f'font-size="10">{_esc(marker_label)}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


#: Cell fills for the dominance grid, keyed by comparison symbol.
_GRID_COLORS = {
    "=": "#e8e8e8",
    ">=": "#6aa06a",
    "<=": "#a85448",
    "||": "#ba9d49",
}


def render_svg_grid(
    columns: Sequence[str],
    rows: Sequence[str],
    cells: Sequence[Sequence[str]],
    title: str | None = None,
    legend: Optional[Mapping[str, str]] = None,
    cell_size: int = 56,
    label_width: int = 190,
) -> str:
    """Render a symbol matrix (e.g. the lattice's ◇WX dominance grid) as
    a standalone SVG document string.

    ``cells[i][j]`` is the symbol for ``rows[i]`` vs ``columns[j]``;
    symbols color via an internal palette (unknown symbols render grey).
    ``legend`` maps symbols to descriptions, drawn under the grid.  Pure
    string assembly, deterministic for fixed inputs.
    """
    if not rows or not columns:
        raise ConfigurationError("empty grid")
    if len(cells) != len(rows) or any(len(r) != len(columns) for r in cells):
        raise ConfigurationError(
            f"grid shape mismatch: {len(rows)}x{len(columns)} labels vs "
            f"{[len(r) for r in cells]} cell rows")
    top = 34 if title else 10
    header_h = 70
    grid_w = cell_size * len(columns)
    legend_h = 16 * len(legend) + 10 if legend else 0
    width = label_width + grid_w + 20
    height = top + header_h + cell_size * len(rows) + legend_h + 16
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>')
    # Rotated column headers.
    for j, name in enumerate(columns):
        x = label_width + j * cell_size + cell_size / 2
        y = top + header_h - 8
        parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="start" '
            f'font-size="10" transform="rotate(-45 {x:.1f} {y:.1f})">'
            f'{_esc(name)}</text>')
    for i, row_name in enumerate(rows):
        y = top + header_h + i * cell_size
        parts.append(
            f'<text x="{label_width - 8}" y="{y + cell_size / 2 + 4:.0f}" '
            f'text-anchor="end" font-size="10">{_esc(row_name)}</text>')
        for j, symbol in enumerate(cells[i]):
            x = label_width + j * cell_size
            fill = _GRID_COLORS.get(symbol, "#cccccc")
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_size - 2}" '
                f'height="{cell_size - 2}" fill="{fill}" '
                f'fill-opacity="0.85" rx="3"/>')
            parts.append(
                f'<text x="{x + (cell_size - 2) / 2:.1f}" '
                f'y="{y + cell_size / 2 + 4:.0f}" text-anchor="middle" '
                f'font-weight="bold">{_esc(symbol)}</text>')
    if legend:
        ly = top + header_h + cell_size * len(rows) + 14
        for k, (symbol, desc) in enumerate(legend.items()):
            y = ly + 16 * k
            fill = _GRID_COLORS.get(symbol, "#cccccc")
            parts.append(
                f'<rect x="{label_width}" y="{y - 10}" width="12" '
                f'height="12" fill="{fill}" rx="2"/>')
            parts.append(
                f'<text x="{label_width + 18}" y="{y}" font-size="10">'
                f'{_esc(symbol)} {_esc(desc)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | pathlib.Path) -> pathlib.Path:
    """Write an SVG document next to the experiment artifacts."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(svg, encoding="utf-8")
    return p
