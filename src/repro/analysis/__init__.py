"""Post-run analysis: eating-session structure (Fig. 1) and report tables."""

from repro.analysis.report import Table
from repro.analysis.sessions import (
    PairSessionAnalysis,
    analyze_pair_sessions,
    check_handoff_overlap,
    check_witness_throttling,
    render_ascii_timeline,
)

__all__ = [
    "PairSessionAnalysis",
    "Table",
    "analyze_pair_sessions",
    "check_handoff_overlap",
    "check_witness_throttling",
    "render_ascii_timeline",
]
