"""Exception hierarchy for the library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistent internal state."""


class ConfigurationError(ReproError):
    """A simulation, oracle, or algorithm was configured incoherently."""


class ExecutionError(ReproError):
    """The campaign execution harness failed (worker pool, result store,
    or checkpoint/resume plumbing) — distinct from a *simulated* fault."""


class CrashedProcessError(SimulationError):
    """An operation was attempted on behalf of a crashed process."""


class InvariantViolation(ReproError):
    """A runtime invariant monitor (e.g. a paper lemma) was violated.

    The reduction modules install monitors for Lemmas 2-5 and 8-10 of the
    paper; a violation means either the reduction implementation or the
    underlying dining black box broke its contract.
    """


class SpecificationViolation(ReproError):
    """A problem-specification checker found a hard violation in a trace.

    Used for *perpetual* properties (e.g. perpetual weak exclusion, token
    uniqueness).  *Eventual* properties are reported as data, not raised,
    because finitely many violations are legal.
    """
