"""repro — reproduction of *"The Weakest Failure Detector for Wait-Free
Dining under Eventual Weak Exclusion"* (Sastry, Pike & Welch, SPAA 2009;
corrigendum SPAA 2010).

The package implements, from scratch, everything the paper describes or
depends on:

* a deterministic discrete-event simulator for asynchronous message-passing
  systems with crash faults (:mod:`repro.sim`);
* the Chandra–Toueg failure-detector hierarchy: ◇P implemented honestly
  from partial synchrony, plus P / T / S substrates and Ω
  (:mod:`repro.oracles`);
* dining-philosophers algorithms: the ◇P-based wait-free ◇WX solution, the
  fault-intolerant hygienic baseline, an adversarial-but-legal box, and a
  perpetual-WX box (:mod:`repro.dining`);
* **the paper's reduction** — witness/subject threads over two dining
  instances per monitored pair, extracting ◇P from any black-box WF-◇WX
  solution (:mod:`repro.core`) — plus the flawed construction of [8] it
  corrects;
* downstream consumers: Chandra–Toueg consensus and leader election driven
  by the extracted oracle (:mod:`repro.consensus`);
* the motivating applications: WSN duty-cycle scheduling and an STM
  contention manager (:mod:`repro.apps`);
* experiment harnesses reproducing every theorem, lemma, and figure
  (:mod:`repro.experiments`; run them with ``python -m repro``).

Quickstart — the one-call front door (:func:`repro.run` /
:func:`repro.sweep`, see :mod:`repro.api`)::

    import repro

    spec = repro.RunSpec(name="demo", graph="ring:5", seed=7,
                         crashes={"p1": 400.0}, max_time=1200.0)
    result = repro.run(spec)            # build -> simulate -> judge
    assert result.ok                    # wait-free despite the crash
    print(result.summary())             # flat JSON-able digest

    results = repro.sweep(spec, runs=8, workers=2)   # seed fan-out
    print(sum(r.ok for r in results), "of", len(results), "runs ok")

    # any registered failure detector, by name (docs/detectors.md):
    repro.run(repro.RunSpec(graph="ring:5", detector="trusting"))
    matrix = repro.compare(graphs=("ring:6",), seeds=4)  # the lattice
    print(matrix.render())

Going deeper — driving the reduction machinery directly::

    from repro.experiments.common import build_system, wf_box
    from repro.core import build_full_extraction

    system = build_system(["p", "q"], seed=1)
    detectors, _ = build_full_extraction(system.engine, ["p", "q"],
                                         wf_box(system))
    system.engine.run()
    print(detectors["p"].suspects())   # ◇P output extracted from dining
"""

from repro.api import DetectorSpec, compare, run, sweep
from repro.core import ExtractedDetector, ReductionPair, build_full_extraction
from repro.dining import (
    DeferredExclusionDining,
    HygienicDining,
    PerpetualDining,
    WaitFreeEWXDining,
)
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
    SimulationError,
    SpecificationViolation,
)
from repro.oracles import (
    EventuallyPerfectDetector,
    PerfectDetector,
    StrongDetector,
    TrustingDetector,
)
from repro.runtime import RunResult, RunSpec, fanout_seeds
from repro.sim import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.types import DinerState, Message, ProcessId, Time

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "CrashSchedule",
    "DeferredExclusionDining",
    "DetectorSpec",
    "DinerState",
    "Engine",
    "EventuallyPerfectDetector",
    "ExtractedDetector",
    "HygienicDining",
    "InvariantViolation",
    "Message",
    "PerfectDetector",
    "PerpetualDining",
    "ProcessId",
    "ReductionPair",
    "ReproError",
    "RunResult",
    "RunSpec",
    "SimConfig",
    "SimulationError",
    "SpecificationViolation",
    "StrongDetector",
    "Time",
    "TrustingDetector",
    "WaitFreeEWXDining",
    "build_full_extraction",
    "compare",
    "fanout_seeds",
    "run",
    "sweep",
    "__version__",
]
