"""Common value types shared across the library.

The paper (Section 4, "Technical Framework") posits a finite set of
processes ``Π``, a discrete global clock ``T`` inaccessible to processes,
and diners that cycle through four phases.  This module pins down the
concrete Python representations used everywhere else:

* :data:`ProcessId` — opaque process names (strings such as ``"p"``, ``"n3"``).
* :data:`Time` — virtual time measured by the simulator's global clock.
* :class:`DinerState` — the four dining phases of Section 4.
* :class:`Message` — the envelope carried by :mod:`repro.sim.network`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Name of a process in the system Π.  Kept as ``str`` so traces read well.
ProcessId = str

#: Virtual time of the simulator's discrete global clock.  The clock is a
#: conceptual device per the paper: algorithm code never reads it; only the
#: engine, delay models, and trace checkers do.
Time = float


class DinerState(enum.Enum):
    """The four phases of a diner (paper Section 4, "Dining")."""

    THINKING = "thinking"
    HUNGRY = "hungry"
    EATING = "eating"
    EXITING = "exiting"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Diner phases in their canonical cycle order.
DINER_CYCLE = (
    DinerState.THINKING,
    DinerState.HUNGRY,
    DinerState.EATING,
    DinerState.EXITING,
)

_msg_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message envelope.

    ``tag`` routes the message to a component within the receiving process
    (e.g. ``("DX0:p->q", "fork")``); ``payload`` carries algorithm data.
    ``uid`` makes every message distinct so non-FIFO delivery and duplicate
    detection are testable.
    """

    sender: ProcessId
    receiver: ProcessId
    tag: str
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_msg_counter))

    def matches(self, tag: str, kind: str | None = None) -> bool:
        """Return True when this message is addressed to ``tag`` (and ``kind``)."""
        if self.tag != tag:
            return False
        return kind is None or self.kind == kind

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.sender}->{self.receiver} {self.tag}/{self.kind}"
            f" #{self.uid})"
        )
