"""Wiring one monitored ordered pair ``(p, q)`` (paper Sections 5–6).

A :class:`ReductionPair` instantiates, for witness process ``p`` and
subject process ``q``:

* two fresh dining instances ``DX0``/``DX1`` from the caller's black-box
  factory, each over the 2-vertex conflict graph ``{p, q}``;
* witness threads ``p.w0``/``p.w1`` (Alg. 1) driving the ``p``-side diners;
* subject threads ``q.s0``/``q.s1`` (Alg. 2) driving the ``q``-side diners;
* the extracted output module at ``p`` (suspicion bit about ``q``),
  labelled ``"extracted"`` in the trace so the standard oracle checkers
  apply.

The reduction sees the dining implementation only through the diner client
API — it is genuinely black-box, which is the point of the paper.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.core.subject import SubjectShared, SubjectThread
from repro.core.witness import ExtractedPairModule, WitnessShared, WitnessThread
from repro.dining.base import DiningInstance
from repro.errors import ConfigurationError
from repro.graphs import pair_graph
from repro.sim.engine import Engine
from repro.types import ProcessId

#: Black-box dining constructor: ``factory(instance_id, graph) -> instance``.
DiningBoxFactory = Callable[[str, nx.Graph], DiningInstance]

#: Trace label shared by every extracted pair module.
EXTRACTED_LABEL = "extracted"


class ReductionPair:
    """The ◇P module for one ordered pair (p monitors q)."""

    def __init__(
        self,
        witness_pid: ProcessId,
        subject_pid: ProcessId,
        box_factory: DiningBoxFactory,
        monitor_invariants: bool = False,
        label: str = EXTRACTED_LABEL,
    ) -> None:
        if witness_pid == subject_pid:
            raise ConfigurationError("a process does not monitor itself")
        self.witness_pid = witness_pid
        self.subject_pid = subject_pid
        self.box_factory = box_factory
        self.monitor_invariants = monitor_invariants
        self.label = label
        self.pair_id = f"R[{witness_pid}>{subject_pid}]"
        self.instances: list[DiningInstance] = []
        self.witnesses: list[WitnessThread] = []
        self.subjects: list[SubjectThread] = []
        self.output: ExtractedPairModule | None = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, engine: Engine) -> ExtractedPairModule:
        """Install both dining instances and all four threads; return the
        extracted output module living at the witness process."""
        if self.output is not None:
            raise ConfigurationError(f"pair {self.pair_id} already attached")
        p, q = self.witness_pid, self.subject_pid

        output = ExtractedPairModule(f"{self.pair_id}:out", target=q)
        output.detector_label = self.label
        engine.process(p).add_component(output)
        self.output = output

        w_shared = WitnessShared(output)
        s_shared = SubjectShared()

        for i in (0, 1):
            instance = self.box_factory(f"{self.pair_id}.DX{i}", pair_graph(p, q))
            diners = instance.attach(engine)
            self.instances.append(instance)

            witness = WitnessThread(f"{self.pair_id}:w{i}", i, w_shared,
                                    diner=diners[p])
            subject = SubjectThread(f"{self.pair_id}:s{i}", i, s_shared,
                                    diner=diners[q])
            subject.monitor_invariants = self.monitor_invariants
            engine.process(p).add_component(witness)
            engine.process(q).add_component(subject)
            self.witnesses.append(witness)
            self.subjects.append(subject)

        for i in (0, 1):
            self.witnesses[i].wire(
                self.witnesses[1 - i],
                subject_pid=q, subject_tag=f"{self.pair_id}:s{i}",
            )
            self.subjects[i].wire(
                self.subjects[1 - i],
                witness_pid=p, witness_tag=f"{self.pair_id}:w{i}",
            )
        return output

    # -- queries -----------------------------------------------------------------

    def suspected(self) -> bool:
        """Does p currently suspect q?"""
        if self.output is None:
            raise ConfigurationError(f"pair {self.pair_id} not attached")
        return self.output.suspected(self.subject_pid)

    def instance_ids(self) -> tuple[str, str]:
        return (f"{self.pair_id}.DX0", f"{self.pair_id}.DX1")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReductionPair({self.witness_pid} monitors {self.subject_pid})"
