"""The flawed construction of [8] (paper Section 3), made concrete.

Guerraoui et al. extract ◇P from a wait-free contention manager with a
*single* dining instance per ordered pair:

* the subject ``q`` sends heartbeats to ``p`` at regular intervals,
  requests its critical section once, and upon entering **never exits**;
* the witness ``p``, upon each heartbeat, *trusts* ``q`` and requests its
  own critical section; upon entering, it immediately exits, *suspects*
  ``q``, and waits for the next heartbeat to start over.

The intended argument: if ``q`` is correct, the box eventually serializes
and ``q`` — parked in its critical section forever — locks ``p`` out, so
``p`` trusts forever.  The paper's observation (which experiment E4
reproduces): a legal WF-◇WX box only owes an exclusive suffix in runs
where correct diners eat *finitely*; ``q`` eats forever here, so a box
like :class:`~repro.dining.deferred.DeferredExclusionDining` may keep
scheduling ``p`` concurrently — and then ``p`` suspects the correct ``q``
infinitely often, violating ◇P's eventual strong accuracy.

The output module is labelled ``"flawed"`` in the trace.
"""

from __future__ import annotations

from repro.core.pair import DiningBoxFactory
from repro.core.witness import ExtractedPairModule
from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError
from repro.graphs import pair_graph
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine
from repro.types import DinerState, Message, ProcessId

FLAWED_LABEL = "flawed"


class CMWitness(Component):
    """The [8] witness: trust on heartbeat, suspect after each own CS entry."""

    def __init__(self, name: str, diner: DinerComponent,
                 output: ExtractedPairModule) -> None:
        super().__init__(name)
        self.diner = diner
        self.output = output
        self._request_pending = False
        self.cs_entries = 0

    @receive("hb")
    def on_heartbeat(self, msg: Message) -> None:
        # Trust q as being correct; request the critical section.
        self.output.set_suspected(self.output.target, False)
        self._request_pending = True

    @action(guard=lambda self: self._request_pending
            and self.diner.state is DinerState.THINKING)
    def request_cs(self) -> None:
        self._request_pending = False
        self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def enter_and_suspect(self) -> None:
        # Enter, immediately exit, and suspect q: reaching the CS means q
        # was not occupying it exclusively.
        self.cs_entries += 1
        self.diner.exit_eating()
        self.output.set_suspected(self.output.target, True)


class CMSubject(Component):
    """The [8] subject: heartbeat forever; enter the CS once and stay."""

    def __init__(self, name: str, diner: DinerComponent,
                 witness_pid: ProcessId, witness_tag: str,
                 heartbeat_period: int = 4) -> None:
        if heartbeat_period < 1:
            raise ConfigurationError("heartbeat_period must be >= 1")
        super().__init__(name)
        self.diner = diner
        self.witness_pid = witness_pid
        self.witness_tag = witness_tag
        self.heartbeat_period = int(heartbeat_period)
        self._ticks = 0
        self._requested = False
        self.entered_cs = False

    @action(guard=lambda self: True)
    def heartbeat(self) -> None:
        self._ticks += 1
        if self._ticks % self.heartbeat_period == 0:
            self.send(self.witness_pid, self.witness_tag, "hb")

    @action(guard=lambda self: not self._requested)
    def request_once(self) -> None:
        self._requested = True
        self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING
            and not self.entered_cs)
    def park_in_cs(self) -> None:
        # Never exits: the critical section is held forever.
        self.entered_cs = True
        self.record("parked", instance=self.diner.instance_id)


class FlawedCMPair:
    """One ordered pair (p monitors q) under the [8] construction."""

    def __init__(self, witness_pid: ProcessId, subject_pid: ProcessId,
                 box_factory: DiningBoxFactory,
                 heartbeat_period: int = 4) -> None:
        if witness_pid == subject_pid:
            raise ConfigurationError("a process does not monitor itself")
        self.witness_pid = witness_pid
        self.subject_pid = subject_pid
        self.box_factory = box_factory
        self.heartbeat_period = heartbeat_period
        self.pair_id = f"CM[{witness_pid}>{subject_pid}]"
        self.output: ExtractedPairModule | None = None
        self.witness: CMWitness | None = None
        self.subject: CMSubject | None = None

    def attach(self, engine: Engine) -> ExtractedPairModule:
        if self.output is not None:
            raise ConfigurationError(f"pair {self.pair_id} already attached")
        p, q = self.witness_pid, self.subject_pid
        instance = self.box_factory(f"{self.pair_id}.DX", pair_graph(p, q))
        diners = instance.attach(engine)

        output = ExtractedPairModule(f"{self.pair_id}:out", target=q)
        output.detector_label = FLAWED_LABEL
        engine.process(p).add_component(output)
        self.output = output

        self.witness = CMWitness(f"{self.pair_id}:w", diners[p], output)
        self.subject = CMSubject(
            f"{self.pair_id}:s", diners[q],
            witness_pid=p, witness_tag=f"{self.pair_id}:w",
            heartbeat_period=self.heartbeat_period,
        )
        engine.process(p).add_component(self.witness)
        engine.process(q).add_component(self.subject)
        return output

    def instance_id(self) -> str:
        return f"{self.pair_id}.DX"
