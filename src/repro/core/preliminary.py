"""The *preliminary* single-instance construction (paper Section 5.1).

Before presenting the real reduction, the paper sketches the obvious
attempt: one dining instance, a witness that trusts the subject iff a ping
arrived since its own last meal, and a subject that pings once per meal.
The paper then rejects it: *"WF-◇WX does not guarantee fairness insofar as
it is possible for p to eat an unbounded number of times between each time
q eats; this allows p to suspect q infinitely often.  To circumvent this,
p and q compete in two WF-◇WX instances."*

This module implements the rejected sketch so experiment E20 can reproduce
its failure on a legal-but-unfair box
(:class:`~repro.dining.unfair.UnfairManagerDining`) — and show the paper's
two-instance reduction surviving the same box.  Output rows carry the
trace label ``"prelim"``.
"""

from __future__ import annotations

from repro.core.pair import DiningBoxFactory
from repro.core.witness import ExtractedPairModule
from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError
from repro.graphs import pair_graph
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine
from repro.types import DinerState, Message, ProcessId

PRELIM_LABEL = "prelim"


class PrelimWitness(Component):
    """Single-instance witness: cycle hungry→eat→(read haveping)→exit."""

    def __init__(self, name: str, diner: DinerComponent,
                 output: ExtractedPairModule) -> None:
        super().__init__(name)
        self.diner = diner
        self.output = output
        self.haveping = False
        self.eat_sessions = 0

    @action(guard=lambda self: self.diner.state is DinerState.THINKING)
    def W_h(self) -> None:
        self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def W_x(self) -> None:
        self.eat_sessions += 1
        self.output.set_suspected(self.output.target, not self.haveping)
        self.haveping = False
        self.diner.exit_eating()

    @receive("ping")
    def W_p(self, msg: Message) -> None:
        self.haveping = True
        self.send(msg.sender, msg.payload["reply_to"], "ack")


class PrelimSubject(Component):
    """Single-instance subject: eat, ping, await ack, exit, repeat."""

    def __init__(self, name: str, diner: DinerComponent,
                 witness_pid: ProcessId, witness_tag: str) -> None:
        super().__init__(name)
        self.diner = diner
        self.witness_pid = witness_pid
        self.witness_tag = witness_tag
        self._ping_pending = False
        self.eat_sessions_completed = 0

    @action(guard=lambda self: self.diner.state is DinerState.THINKING)
    def S_h(self) -> None:
        self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING
            and not self._ping_pending)
    def S_p(self) -> None:
        self._ping_pending = True
        self.send(self.witness_pid, self.witness_tag, "ping",
                  reply_to=self.name)

    @receive("ack")
    def S_a(self, msg: Message) -> None:
        self._ping_pending = False
        self.eat_sessions_completed += 1
        self.diner.exit_eating()


class PreliminaryPair:
    """The Section 5.1 sketch wired over one black-box dining instance."""

    def __init__(self, witness_pid: ProcessId, subject_pid: ProcessId,
                 box_factory: DiningBoxFactory) -> None:
        if witness_pid == subject_pid:
            raise ConfigurationError("a process does not monitor itself")
        self.witness_pid = witness_pid
        self.subject_pid = subject_pid
        self.box_factory = box_factory
        self.pair_id = f"P[{witness_pid}>{subject_pid}]"
        self.output: ExtractedPairModule | None = None
        self.witness: PrelimWitness | None = None
        self.subject: PrelimSubject | None = None

    def attach(self, engine: Engine) -> ExtractedPairModule:
        if self.output is not None:
            raise ConfigurationError(f"pair {self.pair_id} already attached")
        p, q = self.witness_pid, self.subject_pid
        instance = self.box_factory(f"{self.pair_id}.DX", pair_graph(p, q))
        diners = instance.attach(engine)

        output = ExtractedPairModule(f"{self.pair_id}:out", target=q)
        output.detector_label = PRELIM_LABEL
        engine.process(p).add_component(output)
        self.output = output

        self.witness = PrelimWitness(f"{self.pair_id}:w", diners[p], output)
        self.subject = PrelimSubject(f"{self.pair_id}:s", diners[q],
                                     witness_pid=p,
                                     witness_tag=f"{self.pair_id}:w")
        engine.process(p).add_component(self.witness)
        engine.process(q).add_component(self.subject)
        return output

    def instance_id(self) -> str:
        return f"{self.pair_id}.DX"
