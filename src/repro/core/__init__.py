"""The paper's contribution: extracting ◇P from black-box WF-◇WX dining.

For every ordered pair ``(p, q)`` where ``p`` monitors ``q``, the reduction
runs **two** dining instances ``DX0``/``DX1``, each with two diners: a
*witness* thread at ``p`` and a *subject* thread at ``q``:

* the witness threads (:mod:`repro.core.witness`, paper Alg. 1) take strict
  turns eating in their instances, and on each eating session read off
  whether a ping arrived since their previous session — that bit is the
  extracted suspicion output;
* the subject threads (:mod:`repro.core.subject`, paper Alg. 2) chain their
  eating sessions with an overlap hand-off and a ping/ack exchange, so that
  in the box's exclusive suffix a witness can never eat twice in an
  instance without the subject eating (and pinging) in between.

:mod:`repro.core.pair` wires one monitored pair; :mod:`repro.core.extraction`
assembles the full ◇P over all ordered pairs; :mod:`repro.core.flawed_cm`
implements the *flawed* single-instance construction of [8] (paper
Section 3) so experiment E4 can demonstrate its vulnerability; and
:mod:`repro.core.trusting_extraction` applies the reduction to a
perpetual-WX box, extracting the trusting oracle T (paper Section 9).
"""

from repro.core.extraction import ExtractedDetector, build_full_extraction
from repro.core.flawed_cm import FlawedCMPair
from repro.core.pair import DiningBoxFactory, ReductionPair
from repro.core.subject import SubjectShared, SubjectThread
from repro.core.trusting_extraction import build_trusting_extraction
from repro.core.witness import WitnessShared, WitnessThread

__all__ = [
    "DiningBoxFactory",
    "ExtractedDetector",
    "FlawedCMPair",
    "ReductionPair",
    "SubjectShared",
    "SubjectThread",
    "WitnessShared",
    "WitnessThread",
    "build_full_extraction",
    "build_trusting_extraction",
]
