"""Algorithm 2 — the subject threads ``q.s_i`` (verbatim transcription).

The subjects chain their eating sessions with an overlap hand-off: a
subject exits its instance only once the *other* subject is eating too, so
(in the box's exclusive suffix) the dining instances are never both free of
an eating subject — which is what throttles the witnesses (paper Fig. 1).
Shared variables live in :class:`SubjectShared`; the four actions map
one-to-one onto the paper's guarded commands:

=============  ==============================================================
Action ``S_h``  ``(s_i.state = thinking) ∧ (trigger = i)`` → become hungry
                in ``DX_i``
Action ``S_p``  ``(s_i.state = eating) ∧ (s_{1-i}.state ≠ eating) ∧
                (ping_i = true)`` → send *ping* to ``p.w_i``;
                ``ping_i ← false``
Action ``S_a``  upon receive *ack* from ``p.w_i`` → ``trigger ← 1-i``
Action ``S_x``  ``(s_i.state = eating) ∧ (s_{1-i}.state = eating) ∧
                (trigger = 1-i)`` → ``ping_i ← true``; exit eating
=============  ==============================================================

Runtime invariant monitors for the paper's Lemma 2
(``s_i not eating ⟹ ping_i``) and Lemma 4 (``s_i hungry ⟹ trigger = i``)
can be enabled per pair; a violation raises
:class:`~repro.errors.InvariantViolation` immediately.
"""

from __future__ import annotations

from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError, InvariantViolation
from repro.sim.component import Component, action, receive
from repro.types import DinerState, Message, ProcessId


class SubjectShared:
    """The subject-side shared variables of one monitored pair."""

    def __init__(self) -> None:
        self.trigger = 0
        self.ping = [True, True]


class SubjectThread(Component):
    """Subject ``q.s_i`` participating in dining instance ``DX_i``."""

    def __init__(self, name: str, i: int, shared: SubjectShared,
                 diner: DinerComponent) -> None:
        if i not in (0, 1):
            raise ConfigurationError("subject index must be 0 or 1")
        super().__init__(name)
        self.i = i
        self.shared = shared
        self.diner = diner
        self.other: "SubjectThread | None" = None
        self.monitor_invariants = False
        # Diagnostics for the Lemma 5 property tests.
        self.pings_sent = 0
        self.acks_received = 0
        self.eat_sessions_completed = 0
        self._witness_pid: ProcessId | None = None
        self._witness_tag: str | None = None

    def wire(self, other: "SubjectThread", witness_pid: ProcessId,
             witness_tag: str) -> None:
        self.other = other
        self._witness_pid = witness_pid
        self._witness_tag = witness_tag

    # -- Action S_h ------------------------------------------------------------

    @action(guard=lambda self: self.diner.state is DinerState.THINKING
            and self.shared.trigger == self.i)
    def S_h(self) -> None:
        self.diner.become_hungry()
        self._check_invariants("S_h")

    # -- Action S_p ------------------------------------------------------------

    @action(guard=lambda self: self.diner.state is DinerState.EATING
            and self.other is not None
            and self.other.diner.state is not DinerState.EATING
            and self.shared.ping[self.i])
    def S_p(self) -> None:
        assert self._witness_pid is not None and self._witness_tag is not None
        self.send(self._witness_pid, self._witness_tag, "ping")
        self.shared.ping[self.i] = False
        self.pings_sent += 1
        self.record("ping", instance=self.diner.instance_id)
        self._check_invariants("S_p")

    # -- Action S_a ------------------------------------------------------------

    @receive("ack")
    def S_a(self, msg: Message) -> None:
        self.acks_received += 1
        self.shared.trigger = 1 - self.i
        self.record("ack", instance=self.diner.instance_id)
        self._check_invariants("S_a")

    # -- Action S_x ------------------------------------------------------------

    @action(guard=lambda self: self.diner.state is DinerState.EATING
            and self.other is not None
            and self.other.diner.state is DinerState.EATING
            and self.shared.trigger == 1 - self.i)
    def S_x(self) -> None:
        self.shared.ping[self.i] = True
        self.eat_sessions_completed += 1
        self.diner.exit_eating()
        self._check_invariants("S_x")

    # -- runtime lemma monitors ---------------------------------------------------

    def _check_invariants(self, where: str) -> None:
        if not self.monitor_invariants:
            return
        # Lemma 2: (s_i.state != eating) => ping_i = true.
        if self.diner.state is not DinerState.EATING and not self.shared.ping[self.i]:
            raise InvariantViolation(
                f"Lemma 2 violated after {where} at {self.name}: "
                f"state={self.diner.state}, ping_{self.i}=false"
            )
        # Lemma 4: (s_i.state = hungry) => trigger = i.
        if self.diner.state is DinerState.HUNGRY and self.shared.trigger != self.i:
            raise InvariantViolation(
                f"Lemma 4 violated after {where} at {self.name}: "
                f"hungry but trigger={self.shared.trigger}"
            )
