"""Section 9: the same reduction over a *perpetual*-WX box extracts T.

The paper's secondary result: apply the witness/subject reduction to any
wait-free dining solution for perpetual weak exclusion (live neighbors
never eat simultaneously) and the extracted oracle satisfies the trusting
detector's properties:

* **strong completeness** — unchanged from the ◇P argument;
* **trusting accuracy** — under WX the witness throttling holds from time
  zero (there is no mistake prefix), so once a witness trusts ``q`` (a ping
  arrived between its sessions), any later suspicion onset can only happen
  because the subject stopped cycling — i.e. ``q`` crashed.  Initial
  suspicion of not-yet-registered processes is permitted by T.

The paper further notes (prose only, no algorithm given) that an *amended*
reduction extracts an oracle strictly stronger than T, implying T alone is
insufficient for wait-free mutual exclusion; we record that claim in
EXPERIMENTS.md but do not implement the amendment.

This module is a thin veneer: the reduction code is literally
:func:`~repro.core.extraction.build_full_extraction`; only the box and the
trace label differ.  Experiment E7 checks the extracted outputs with
:func:`~repro.oracles.properties.check_trusting_accuracy`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.extraction import ExtractedDetector, build_full_extraction
from repro.core.pair import DiningBoxFactory, ReductionPair
from repro.sim.engine import Engine
from repro.types import ProcessId

TRUSTING_LABEL = "extractedT"


def build_trusting_extraction(
    engine: Engine,
    pids: Sequence[ProcessId],
    perpetual_box_factory: DiningBoxFactory,
    monitor_invariants: bool = False,
) -> tuple[dict[ProcessId, ExtractedDetector], dict[tuple[ProcessId, ProcessId], ReductionPair]]:
    """Install the reduction over a perpetual-WX black box.

    The caller is responsible for passing a genuinely perpetual-WX factory
    (e.g. :class:`~repro.dining.perpetual.PerpetualDining` with a
    crash-accurate provider); the function relabels the extracted outputs
    ``"extractedT"`` so T-specific trace checks do not collide with ◇P
    extractions in the same run.
    """
    return build_full_extraction(
        engine, pids, perpetual_box_factory,
        monitor_invariants=monitor_invariants,
        label=TRUSTING_LABEL,
    )
