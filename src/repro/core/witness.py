"""Algorithm 1 — the witness threads ``p.w_i`` (verbatim transcription).

Process ``p`` monitors process ``q`` through two witness threads
``p.w0``/``p.w1``, one per dining instance.  Shared variables (the paper's
``var`` block) live in :class:`WitnessShared`; each thread's three actions
map one-to-one onto the paper's guarded commands:

=============  ==============================================================
Action ``W_h``  ``(w_i.state = thinking) ∧ (w_{1-i}.state = thinking) ∧
                (switch = i)``  →  become hungry in ``DX_i``
Action ``W_x``  ``(w_i.state = eating)``  →  ``suspect_q ← ¬haveping_i``;
                ``haveping_i ← false``; ``switch ← 1-i``; exit eating
Action ``W_p``  upon receive *ping* from ``q.s_i``  →  ``haveping_i ← true``;
                send *ack* to ``q.s_i``
=============  ==============================================================

The extracted suspicion bit is published through an
:class:`~repro.oracles.base.OracleModule` so the standard completeness /
accuracy trace checkers apply unchanged.
"""

from __future__ import annotations

from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import Component, action, receive
from repro.types import DinerState, Message, ProcessId


class ExtractedPairModule(OracleModule):
    """The per-pair output module at ``p``: the suspicion bit about ``q``.

    Initially ``suspect_q = true`` (paper Alg. 1 ``var`` block).  It has no
    actions of its own; the witness threads drive it.
    """

    def __init__(self, name: str, target: ProcessId) -> None:
        super().__init__(name, [target], initially_suspect=True)
        self.target = target


class WitnessShared:
    """The witness-side shared variables of one monitored pair.

    ``switch`` selects which witness becomes hungry next; ``haveping[i]``
    records whether a ping arrived in instance ``i`` since witness ``i``
    last ate.
    """

    def __init__(self, output: ExtractedPairModule) -> None:
        self.switch = 0
        self.haveping = [False, False]
        self.output = output

    def publish_suspicion(self, suspected: bool) -> None:
        self.output.set_suspected(self.output.target, suspected)


class WitnessThread(Component):
    """Witness ``p.w_i`` participating in dining instance ``DX_i``."""

    def __init__(
        self,
        name: str,
        i: int,
        shared: WitnessShared,
        diner: DinerComponent,
        peer_diner_of: "WitnessThread | None" = None,
    ) -> None:
        if i not in (0, 1):
            raise ConfigurationError("witness index must be 0 or 1")
        super().__init__(name)
        self.i = i
        self.shared = shared
        self.diner = diner
        self.other: "WitnessThread | None" = peer_diner_of
        # Diagnostics for Lemma 5/12 property tests.
        self.eat_sessions = 0
        self.pings_received = 0
        self.acks_sent = 0
        self._subject_pid: ProcessId | None = None
        self._subject_tag: str | None = None

    def wire(self, other: "WitnessThread", subject_pid: ProcessId,
             subject_tag: str) -> None:
        """Late wiring of the sibling thread and the peer subject address."""
        self.other = other
        self._subject_pid = subject_pid
        self._subject_tag = subject_tag

    # -- Action W_h ------------------------------------------------------------

    @action(guard=lambda self: self.diner.state is DinerState.THINKING
            and self.other is not None
            and self.other.diner.state is DinerState.THINKING
            and self.shared.switch == self.i)
    def W_h(self) -> None:
        self.diner.become_hungry()

    # -- Action W_x ------------------------------------------------------------

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def W_x(self) -> None:
        self.eat_sessions += 1
        # Trust q iff a ping has been received since this witness last ate.
        self.shared.publish_suspicion(not self.shared.haveping[self.i])
        self.shared.haveping[self.i] = False
        self.shared.switch = 1 - self.i
        self.diner.exit_eating()

    # -- Action W_p ------------------------------------------------------------

    @receive("ping")
    def W_p(self, msg: Message) -> None:
        self.pings_received += 1
        self.shared.haveping[self.i] = True
        assert self._subject_pid is not None and self._subject_tag is not None
        self.send(self._subject_pid, self._subject_tag, "ack")
        self.acks_sent += 1
