"""Assembling the full ◇P detector from per-pair reductions.

The paper implements ◇P "for each ordered pair of processes" (Section 6);
the full detector at ``p`` is simply the union of p's per-pair suspicion
bits.  :func:`build_full_extraction` installs all ``n·(n-1)`` ordered pairs
(hence ``2·n·(n-1)`` dining instances) over the given black box and returns
one queryable :class:`ExtractedDetector` facade per process — the same
query surface as a native :class:`~repro.oracles.base.OracleModule`, so the
extracted oracle can drive downstream protocols (consensus, leader
election, fair dining) unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.pair import EXTRACTED_LABEL, DiningBoxFactory, ReductionPair
from repro.core.witness import ExtractedPairModule
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.types import ProcessId


class ExtractedDetector:
    """Facade over one process's extracted pair modules.

    Presents the ``suspects() / suspected(q) / trusted(q)`` query API of a
    local ◇P module, backed by the reduction's outputs.
    """

    def __init__(self, owner: ProcessId,
                 pair_outputs: Mapping[ProcessId, ExtractedPairModule]) -> None:
        self.owner = owner
        self._outputs = dict(pair_outputs)
        self.monitored = tuple(sorted(self._outputs))

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(
            q for q, module in self._outputs.items() if module.suspected(q)
        )

    def suspected(self, q: ProcessId) -> bool:
        try:
            return self._outputs[q].suspected(q)
        except KeyError:
            raise ConfigurationError(
                f"extracted detector at {self.owner} does not monitor {q!r}"
            ) from None

    def trusted(self, q: ProcessId) -> bool:
        return not self.suspected(q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExtractedDetector({self.owner} monitors {list(self.monitored)})"


def build_full_extraction(
    engine: Engine,
    pids: Sequence[ProcessId],
    box_factory: DiningBoxFactory,
    monitor_invariants: bool = False,
    monitors: Iterable[tuple[ProcessId, ProcessId]] | None = None,
    label: str = EXTRACTED_LABEL,
) -> tuple[dict[ProcessId, ExtractedDetector], dict[tuple[ProcessId, ProcessId], ReductionPair]]:
    """Install the reduction for every ordered pair (or a chosen subset).

    Parameters
    ----------
    monitors:
        Optional explicit list of ``(witness, subject)`` pairs; defaults to
        all ordered pairs over ``pids``.

    Returns
    -------
    ``(detectors, pairs)`` — the per-process facades and the raw pair
    objects (whose thread diagnostics the lemma tests use).
    """
    if monitors is None:
        monitors = [(p, q) for p in pids for q in pids if p != q]
    pairs: dict[tuple[ProcessId, ProcessId], ReductionPair] = {}
    outputs: dict[ProcessId, dict[ProcessId, ExtractedPairModule]] = {
        p: {} for p in pids
    }
    for p, q in monitors:
        pair = ReductionPair(p, q, box_factory,
                             monitor_invariants=monitor_invariants, label=label)
        output = pair.attach(engine)
        pairs[(p, q)] = pair
        outputs.setdefault(p, {})[q] = output
    detectors = {
        p: ExtractedDetector(p, mods) for p, mods in outputs.items() if mods
    }
    return detectors, pairs
