"""Assembling the full ◇P detector from per-pair reductions.

The paper implements ◇P "for each ordered pair of processes" (Section 6);
the full detector at ``p`` is simply the union of p's per-pair suspicion
bits.  :func:`build_full_extraction` installs all ``n·(n-1)`` ordered pairs
(hence ``2·n·(n-1)`` dining instances) over the given black box and returns
one queryable :class:`ExtractedDetector` facade per process — the same
query surface as a native :class:`~repro.oracles.base.OracleModule`, so the
extracted oracle can drive downstream protocols (consensus, leader
election, fair dining) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.core.pair import EXTRACTED_LABEL, DiningBoxFactory, ReductionPair
from repro.core.witness import ExtractedPairModule
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx


@dataclass(frozen=True)
class PairSelection:
    """Policy choosing which ordered (witness, subject) pairs to monitor.

    ``all``
        The paper's full reduction: every ordered pair over the process
        set — ``n·(n-1)`` pairs regardless of topology.  The default, and
        bit-identical to the historical construction order.
    ``neighbors``
        Conflict-graph-local monitoring: a witness only monitors subjects
        it shares a conflict edge with (both orientations of every edge —
        ``2·|E|`` pairs).  This is what makes n=100–1000 tractable on
        sparse topologies, at the cost of extracting ◇P *restricted to
        the conflict relation* (see docs/topologies.md for the
        completeness caveat).
    ``neighbors:k``
        Same, but within ``k`` hops of the witness (``neighbors`` is
        ``neighbors:1``; large ``k`` on a connected graph converges to
        ``all``).

    Parse a spec string with :meth:`parse`; derive concrete pairs with
    :meth:`pairs_for`.
    """

    policy: str = "all"
    hops: int = 1

    _KINDS = ("all", "neighbors")

    @classmethod
    def parse(cls, spec: str) -> "PairSelection":
        """``"all" | "neighbors" | "neighbors:<k>"`` → a PairSelection."""
        if not isinstance(spec, str):
            raise ConfigurationError(
                f"pair selection must be a string, got {spec!r}")
        head, _, arg = spec.partition(":")
        if head == "all":
            if arg:
                raise ConfigurationError(
                    f"pair selection 'all' takes no argument, got {spec!r}")
            return cls("all")
        if head == "neighbors":
            if not arg:
                return cls("neighbors", 1)
            try:
                hops = int(arg)
            except ValueError:
                raise ConfigurationError(
                    f"pair selection hop count must be an integer, "
                    f"got {spec!r}") from None
            if hops < 1:
                raise ConfigurationError(
                    f"pair selection hop count must be >= 1, got {hops}")
            return cls("neighbors", hops)
        raise ConfigurationError(
            f"unknown pair selection {spec!r} (expected one of: "
            "'all', 'neighbors', 'neighbors:<k>')")

    @property
    def is_all(self) -> bool:
        return self.policy == "all"

    def spec_string(self) -> str:
        if self.policy == "all":
            return "all"
        return "neighbors" if self.hops == 1 else f"neighbors:{self.hops}"

    def peers_map(self, pids: Sequence[ProcessId],
                  graph: "nx.Graph | None") -> dict[ProcessId, list[ProcessId]]:
        """Per-process monitored peers, in deterministic order.

        Under ``all`` each process monitors every other in ``pids`` order
        (the historical order — do not re-sort).  Under ``neighbors[:k]``
        each process monitors the sorted set of conflict-graph vertices
        within ``hops`` of it.
        """
        if self.is_all:
            return {p: [q for q in pids if q != p] for p in pids}
        if graph is None:
            raise ConfigurationError(
                f"pair selection {self.spec_string()!r} needs a conflict "
                "graph (policy 'all' is the only graph-free selection)")
        import networkx as nx  # local: keep import cost off the hot path

        out: dict[ProcessId, list[ProcessId]] = {}
        for p in pids:
            if self.hops == 1:
                near = set(graph.neighbors(p))
            else:
                near = set(nx.single_source_shortest_path_length(
                    graph, p, cutoff=self.hops))
                near.discard(p)
            out[p] = sorted(near)
        return out

    def pairs_for(self, pids: Sequence[ProcessId],
                  graph: "nx.Graph | None" = None,
                  ) -> list[tuple[ProcessId, ProcessId]]:
        """Ordered (witness, subject) pairs under this policy."""
        peers = self.peers_map(pids, graph)
        return [(p, q) for p in pids for q in peers[p]]


class ExtractedDetector:
    """Facade over one process's extracted pair modules.

    Presents the ``suspects() / suspected(q) / trusted(q)`` query API of a
    local ◇P module, backed by the reduction's outputs.
    """

    def __init__(self, owner: ProcessId,
                 pair_outputs: Mapping[ProcessId, ExtractedPairModule]) -> None:
        self.owner = owner
        self._outputs = dict(pair_outputs)
        self.monitored = tuple(sorted(self._outputs))

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(
            q for q, module in self._outputs.items() if module.suspected(q)
        )

    def suspected(self, q: ProcessId) -> bool:
        try:
            return self._outputs[q].suspected(q)
        except KeyError:
            raise ConfigurationError(
                f"extracted detector at {self.owner} does not monitor {q!r}"
            ) from None

    def trusted(self, q: ProcessId) -> bool:
        return not self.suspected(q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExtractedDetector({self.owner} monitors {list(self.monitored)})"


def build_full_extraction(
    engine: Engine,
    pids: Sequence[ProcessId],
    box_factory: DiningBoxFactory,
    monitor_invariants: bool = False,
    monitors: Iterable[tuple[ProcessId, ProcessId]] | None = None,
    label: str = EXTRACTED_LABEL,
    selection: "PairSelection | str | None" = None,
    graph: "nx.Graph | None" = None,
) -> tuple[dict[ProcessId, ExtractedDetector], dict[tuple[ProcessId, ProcessId], ReductionPair]]:
    """Install the reduction for every selected ordered pair.

    Parameters
    ----------
    monitors:
        Optional explicit list of ``(witness, subject)`` pairs; overrides
        ``selection`` when given.
    selection:
        A :class:`PairSelection` (or its spec string) deriving the pairs;
        defaults to ``all`` — every ordered pair over ``pids``, in the
        historical (golden-pinned) order.  Non-``all`` policies need the
        conflict ``graph``.

    Returns
    -------
    ``(detectors, pairs)`` — the per-process facades and the raw pair
    objects (whose thread diagnostics the lemma tests use).
    """
    if monitors is None:
        if selection is None:
            selection = PairSelection()
        elif isinstance(selection, str):
            selection = PairSelection.parse(selection)
        monitors = selection.pairs_for(pids, graph)
    elif selection is not None:
        raise ConfigurationError(
            "pass either explicit monitors or a selection, not both")
    pairs: dict[tuple[ProcessId, ProcessId], ReductionPair] = {}
    outputs: dict[ProcessId, dict[ProcessId, ExtractedPairModule]] = {
        p: {} for p in pids
    }
    for p, q in monitors:
        pair = ReductionPair(p, q, box_factory,
                             monitor_invariants=monitor_invariants, label=label)
        output = pair.attach(engine)
        pairs[(p, q)] = pair
        outputs.setdefault(p, {})[q] = output
    detectors = {
        p: ExtractedDetector(p, mods) for p, mods in outputs.items() if mods
    }
    return detectors, pairs
