"""Duty-cycle scheduling for wireless sensor networks (paper Section 2).

The scenario the paper motivates ◇WX with: a grid of sensors must keep a
surveillance area covered.  Every node will eventually crash from power
depletion, so the network's life-span should exceed its nodes'.  Nodes with
overlapping coverage *conflict*: both on duty at once is redundant — a
performance mistake, not a correctness one.  So the duty scheduler is a
dining instance over the coverage-overlap (grid) graph:

* **on duty** = eating; **volunteering** = hungry;
* **wait-freedom** ⇒ coverage holds despite crashes (every live volunteer
  eventually serves);
* **◇WX** ⇒ only finitely much redundant duty, maximizing life-span.

Coverage model: a node covers its own cell and its grid neighbors' cells;
a cell is covered while some live node in its closed neighborhood is on
duty.  Energy: idle drain ``idle_rate``, duty drain ``duty_rate`` per time
unit; depletion crashes the node (dynamically, via
:meth:`~repro.sim.engine.Engine.inject_crash`).

Schedulers compared: ``always_on`` (every node on duty until it dies —
maximal coverage, minimal life-span), the blindly rotating dining schedule
(``run_dining``), and the coverage-aware variant (``run_coverage_aware``)
whose nodes volunteer only while they believe their cell is uncovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx
import numpy as np

from repro.dining.base import DinerComponent
from repro.dining.spec import check_exclusion, eating_intervals
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError
from repro.graphs import grid
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.sim.network import PartialSynchronyDelays
from repro.types import DinerState, Message, ProcessId, Time

DUTY_INSTANCE = "WSN"


class DutyClient(Component):
    """Node behaviour: rest briefly, volunteer, serve one shift, repeat."""

    def __init__(self, name: str, diner: DinerComponent,
                 rng: np.random.Generator,
                 shift: tuple[Time, Time] = (6.0, 10.0),
                 rest: tuple[Time, Time] = (12.0, 24.0)) -> None:
        super().__init__(name)
        self.diner = diner
        self.rng = rng
        self.shift = shift
        self.rest = rest
        self._until: Optional[Time] = None

    @action(guard=lambda self: self.diner.state is DinerState.THINKING)
    def volunteer(self) -> None:
        now = self.process.env_now()
        if self._until is None:
            self._until = now + float(self.rng.uniform(*self.rest))
        if now >= self._until:
            self._until = None
            self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def serve_shift(self) -> None:
        now = self.process.env_now()
        if self._until is None:
            self._until = now + float(self.rng.uniform(*self.shift))
        if now >= self._until:
            self._until = None
            self.diner.exit_eating()


class CoverageAwareClient(Component):
    """Node behaviour closer to the paper's ideal: volunteer only while the
    node believes its own cell is uncovered.

    On-duty nodes beacon their grid neighbors every ``beacon_period``; an
    off-duty node considers itself covered while any neighbor beaconed
    within ``2 * beacon_period`` (or while it is on duty itself).  Uncovered
    and thinking -> volunteer.  The result is a near-minimal duty set: the
    dining layer picks an independent set of volunteers, their beacons put
    the rest to sleep, and shift expiry rotates the burden.
    """

    def __init__(self, name: str, diner: DinerComponent,
                 neighbors: tuple[ProcessId, ...],
                 rng: np.random.Generator,
                 shift: tuple[Time, Time] = (8.0, 14.0),
                 beacon_period: Time = 2.0) -> None:
        super().__init__(name)
        self.diner = diner
        self.neighbors = tuple(neighbors)
        self.rng = rng
        self.shift = shift
        self.beacon_period = float(beacon_period)
        self._until: Optional[Time] = None
        self._next_beacon = 0.0
        self._last_heard: dict[ProcessId, Time] = {}

    def _covered(self, now: Time) -> bool:
        horizon = now - 2.0 * self.beacon_period
        return any(t >= horizon for t in self._last_heard.values())

    @action(guard=lambda self: self.diner.state is DinerState.THINKING)
    def volunteer_if_uncovered(self) -> None:
        now = self.process.env_now()
        if not self._covered(now):
            self.diner.become_hungry()

    @action(guard=lambda self: self.diner.state is DinerState.EATING)
    def serve_and_beacon(self) -> None:
        now = self.process.env_now()
        if self._until is None:
            self._until = now + float(self.rng.uniform(*self.shift))
        if now >= self._next_beacon:
            self._next_beacon = now + self.beacon_period
            for q in self.neighbors:
                self.send(q, self.name, "beacon")
        if now >= self._until:
            self._until = None
            self.diner.exit_eating()

    @receive("beacon")
    def on_beacon(self, msg: Message) -> None:
        self._last_heard[msg.sender] = self.process.env_now()


class AlwaysOnNode(Component):
    """Baseline behaviour: permanently on duty (recorded via state rows)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._started = False

    @action(guard=lambda self: not self._started)
    def switch_on(self) -> None:
        self._started = True
        self.record("state", instance=DUTY_INSTANCE, state=DinerState.EATING.value)


@dataclass
class WSNReport:
    """Outcome of one WSN run."""

    scheduler: str
    rows: int
    cols: int
    lifetime: Time                  # last time coverage >= the threshold
    mean_coverage: float            # time-averaged covered-cell fraction
    redundancy_violations: int      # simultaneous-duty events between neighbors
    last_redundancy: Optional[Time]
    crash_times: dict[ProcessId, Time] = field(default_factory=dict)
    coverage_series: list[tuple[Time, float]] = field(default_factory=list)

    def format_row(self) -> str:
        last = "-" if self.last_redundancy is None else f"{self.last_redundancy:7.1f}"
        return (
            f"{self.scheduler:<12} lifetime={self.lifetime:8.1f} "
            f"mean_cov={self.mean_coverage:5.3f} "
            f"redundant={self.redundancy_violations:4d} (last {last}) "
            f"deaths={len(self.crash_times)}"
        )


class WSNExperiment:
    """Builds, runs, and scores one WSN scenario."""

    def __init__(
        self,
        rows: int = 3,
        cols: int = 3,
        seed: int = 0,
        battery: float = 400.0,
        idle_rate: float = 0.2,
        duty_rate: float = 2.0,
        gst: Time = 120.0,
        max_time: Time = 2500.0,
        energy_poll: Time = 2.0,
        coverage_threshold: float = 0.75,
    ) -> None:
        if duty_rate <= idle_rate:
            raise ConfigurationError("duty must drain faster than idling")
        self.graph = grid(rows, cols)
        self.rows, self.cols = rows, cols
        self.seed = seed
        self.battery = float(battery)
        self.idle_rate = float(idle_rate)
        self.duty_rate = float(duty_rate)
        self.gst = gst
        self.max_time = max_time
        self.energy_poll = float(energy_poll)
        self.coverage_threshold = float(coverage_threshold)
        self.pids = sorted(self.graph.nodes)

    # -- energy metering (environment driver) ----------------------------------

    def _meter(self, engine: Engine, diner_state) -> None:
        """Poll energy periodically; deplete -> crash."""
        battery = {pid: self.battery for pid in self.pids}
        last = {pid: 0.0 for pid in self.pids}

        def poll() -> None:
            now = engine.now
            for pid in self.pids:
                proc = engine.processes[pid]
                if proc.crashed:
                    continue
                dt = now - last[pid]
                last[pid] = now
                rate = (self.duty_rate
                        if diner_state(pid) is DinerState.EATING
                        else self.idle_rate)
                battery[pid] -= rate * dt
                if battery[pid] <= 0:
                    engine.inject_crash(pid)
            if now + self.energy_poll < self.max_time:
                engine.schedule_call(now + self.energy_poll, poll)

        engine.schedule_call(self.energy_poll, poll)

    # -- scenario runners ---------------------------------------------------------

    def run_dining(self) -> WSNReport:
        """◇P-scheduled duty cycling."""
        eng = Engine(
            SimConfig(seed=self.seed, max_time=self.max_time),
            delay_model=PartialSynchronyDelays(gst=self.gst, delta=1.5,
                                               pre_gst_max=20.0),
        )
        for pid in self.pids:
            eng.add_process(pid)
        mods = attach_detectors(
            eng, self.pids,
            lambda o, peers: EventuallyPerfectDetector(
                "fd", peers, heartbeat_period=5, initial_timeout=12),
        )
        instance = WaitFreeEWXDining(
            DUTY_INSTANCE, self.graph,
            lambda pid: (lambda q, m=mods[pid]: m.suspected(q)),
        )
        diners = instance.attach(eng)
        for pid in self.pids:
            rng = eng.rng.stream(f"client:{pid}")
            eng.process(pid).add_component(DutyClient("duty", diners[pid], rng))
        self._meter(eng, lambda pid: diners[pid].state)
        eng.run()
        return self._score(eng, "dining")

    def run_coverage_aware(self) -> WSNReport:
        """◇P-scheduled duty cycling with coverage-aware volunteering."""
        eng = Engine(
            SimConfig(seed=self.seed, max_time=self.max_time),
            delay_model=PartialSynchronyDelays(gst=self.gst, delta=1.5,
                                               pre_gst_max=20.0),
        )
        for pid in self.pids:
            eng.add_process(pid)
        mods = attach_detectors(
            eng, self.pids,
            lambda o, peers: EventuallyPerfectDetector(
                "fd", peers, heartbeat_period=5, initial_timeout=12),
        )
        instance = WaitFreeEWXDining(
            DUTY_INSTANCE, self.graph,
            lambda pid: (lambda q, m=mods[pid]: m.suspected(q)),
        )
        diners = instance.attach(eng)
        for pid in self.pids:
            rng = eng.rng.stream(f"client:{pid}")
            eng.process(pid).add_component(CoverageAwareClient(
                "duty", diners[pid],
                neighbors=tuple(sorted(self.graph.neighbors(pid))), rng=rng))
        self._meter(eng, lambda pid: diners[pid].state)
        eng.run()
        return self._score(eng, "cover-aware")

    def run_always_on(self) -> WSNReport:
        """Baseline: everyone on duty, no scheduling."""
        eng = Engine(SimConfig(seed=self.seed, max_time=self.max_time),
                     delay_model=PartialSynchronyDelays(gst=self.gst, delta=1.5,
                                                        pre_gst_max=20.0))
        nodes: dict[ProcessId, AlwaysOnNode] = {}
        for pid in self.pids:
            proc = eng.add_process(pid)
            nodes[pid] = AlwaysOnNode("duty")
            proc.add_component(nodes[pid])
        self._meter(
            eng,
            lambda pid: (DinerState.EATING if nodes[pid]._started
                         else DinerState.THINKING),
        )
        eng.run()
        return self._score(eng, "always-on")

    # -- scoring ---------------------------------------------------------------------

    def _score(self, engine: Engine, scheduler: str) -> WSNReport:
        trace = engine.trace
        end = engine.now
        crashes = trace.crash_times()
        schedule = CrashSchedule(crashes)
        duty = {
            pid: eating_intervals(trace, DUTY_INSTANCE, pid, end, schedule)
            for pid in self.pids
        }
        closed_nbhd = {
            pid: [pid] + sorted(self.graph.neighbors(pid)) for pid in self.pids
        }

        def covered(cell: ProcessId, t: Time) -> bool:
            return any(
                a <= t < b
                for n in closed_nbhd[cell]
                for (a, b) in duty[n]
            )

        # Sampled coverage fraction + lifetime (last time of full coverage).
        step = max(end / 400.0, 1.0)
        series: list[tuple[Time, float]] = []
        lifetime = 0.0
        t = 0.0
        while t < end:
            frac = sum(covered(c, t) for c in self.pids) / len(self.pids)
            series.append((t, frac))
            if frac >= self.coverage_threshold:
                lifetime = t
            t += step
        mean_cov = float(np.mean([f for _, f in series])) if series else 0.0

        excl = check_exclusion(trace, self.graph, DUTY_INSTANCE, schedule, end)
        return WSNReport(
            scheduler=scheduler,
            rows=self.rows, cols=self.cols,
            lifetime=lifetime,
            mean_coverage=mean_cov,
            redundancy_violations=excl.count,
            last_redundancy=excl.last_violation_end,
            crash_times=crashes,
            coverage_series=series,
        )
