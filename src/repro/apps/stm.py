"""Obstruction-free STM boosted by a dining-backed contention manager.

Paper Sections 2–3: a contention manager (CM) is a wait-free eventually
exclusive protocol that boosts obstruction-free software transactional
memory to wait-freedom — clients ask the CM for permission before running
a transaction; for a finite prefix the CM may admit several clients at
once (transactions may abort), but eventually it serializes admissions and
obstruction-freedom guarantees every admitted transaction commits.

The simulated STM:

* a ``store`` process holds versioned objects; transactions read object
  versions, compute for a few steps, then submit an atomic compare-and-
  swap commit (validate read versions, apply writes);
* **obstruction-freedom**: a transaction whose read set was overwritten
  concurrently aborts and retries — progress is guaranteed only when it
  runs in isolation;
* the **contention manager** is one WF-◇WX dining instance over the
  clients' conflict graph (clients sharing objects conflict); admission =
  eating.

Experiment E10 compares ``cm=None`` (raw obstruction-freedom: many aborts,
unbounded retries under contention) against the dining CM (every
transaction eventually commits; aborts stop after the CM's exclusive
suffix begins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.dining.base import DinerComponent
from repro.dining.spec import check_exclusion
from repro.dining.wf_ewx import WaitFreeEWXDining
from repro.errors import ConfigurationError
from repro.oracles import EventuallyPerfectDetector, attach_detectors
from repro.sim.component import Component, action, receive
from repro.sim.engine import Engine, SimConfig
from repro.sim.faults import CrashSchedule
from repro.sim.network import PartialSynchronyDelays
from repro.types import DinerState, Message, ProcessId, Time

CM_INSTANCE = "CM"
STORE_PID = "store"
STORE_TAG = "stm-store"


class ObjectStore(Component):
    """The shared versioned-object store (one per system, at ``store``)."""

    def __init__(self, name: str, objects: Sequence[str]) -> None:
        super().__init__(name)
        self.data: dict[str, tuple[int, int]] = {o: (0, 0) for o in objects}
        self.commits = 0
        self.aborts = 0

    @receive("read")
    def on_read(self, msg: Message) -> None:
        obj = msg.payload["obj"]
        value, version = self.data[obj]
        self.send(msg.sender, msg.payload["reply_to"], "readv",
                  obj=obj, value=value, version=version, txid=msg.payload["txid"])

    @receive("commit")
    def on_commit(self, msg: Message) -> None:
        reads: dict = msg.payload["reads"]       # obj -> version seen
        writes: dict = msg.payload["writes"]     # obj -> new value
        valid = all(self.data[o][1] == v for o, v in reads.items())
        if valid:
            for o, v in writes.items():
                _, version = self.data[o]
                self.data[o] = (v, version + 1)
            self.commits += 1
        else:
            self.aborts += 1
        self.send(msg.sender, msg.payload["reply_to"],
                  "committed" if valid else "aborted",
                  txid=msg.payload["txid"])


class TxClient(Component):
    """A client running ``tx_target`` increment transactions over its objects.

    Phases per attempt: (admission via CM, if any) → read all objects →
    ``compute_steps`` local steps (the window in which concurrent writers
    cause aborts) → commit attempt → on abort, retry the same transaction.
    """

    def __init__(self, name: str, objects: Sequence[str], tx_target: int,
                 compute_steps: int = 3,
                 cm_diner: Optional[DinerComponent] = None) -> None:
        super().__init__(name)
        if tx_target < 0 or compute_steps < 1:
            raise ConfigurationError("bad tx_target/compute_steps")
        self.objects = tuple(objects)
        self.tx_target = tx_target
        self.compute_steps = compute_steps
        self.cm_diner = cm_diner

        self.committed = 0
        self.aborted = 0
        self.retries_per_tx: list[int] = []
        self._txid = 0
        self._phase = "idle"     # idle|admission|reading|computing|committing
        self._reads: dict[str, tuple[int, int]] = {}
        self._steps_left = 0
        self._retries = 0

    # -- admission ---------------------------------------------------------------

    def _admitted(self) -> bool:
        return self.cm_diner is None or self.cm_diner.state is DinerState.EATING

    @action(guard=lambda self: self._phase == "idle"
            and self.committed < self.tx_target)
    def begin(self) -> None:
        self._txid += 1
        self._retries = 0
        if self.cm_diner is not None:
            self.cm_diner.become_hungry()
            self._phase = "admission"
        else:
            self._start_attempt()

    @action(guard=lambda self: self._phase == "admission" and self._admitted())
    def admitted(self) -> None:
        self._start_attempt()

    def _start_attempt(self) -> None:
        self._phase = "reading"
        self._reads = {}
        for obj in self.objects:
            self.send(STORE_PID, STORE_TAG, "read", obj=obj,
                      reply_to=self.name, txid=self._txid)

    # -- read phase -----------------------------------------------------------------

    @receive("readv")
    def on_readv(self, msg: Message) -> None:
        if msg.payload["txid"] != self._txid or self._phase != "reading":
            return  # stale reply from an aborted attempt
        self._reads[msg.payload["obj"]] = (
            msg.payload["value"], msg.payload["version"]
        )
        if len(self._reads) == len(self.objects):
            self._phase = "computing"
            self._steps_left = self.compute_steps

    # -- compute phase ----------------------------------------------------------------

    @action(guard=lambda self: self._phase == "computing")
    def compute(self) -> None:
        self._steps_left -= 1
        if self._steps_left <= 0:
            self._phase = "committing"
            self.send(
                STORE_PID, STORE_TAG, "commit",
                reads={o: ver for o, (_, ver) in self._reads.items()},
                writes={o: val + 1 for o, (val, _) in self._reads.items()},
                reply_to=self.name, txid=self._txid,
            )

    # -- commit outcome ------------------------------------------------------------------

    @receive("committed")
    def on_committed(self, msg: Message) -> None:
        if msg.payload["txid"] != self._txid:
            return
        self.committed += 1
        self.retries_per_tx.append(self._retries)
        self.record("tx", outcome="commit", txid=self._txid,
                    retries=self._retries)
        self._finish()

    @receive("aborted")
    def on_aborted(self, msg: Message) -> None:
        if msg.payload["txid"] != self._txid:
            return
        self.aborted += 1
        self._retries += 1
        self.record("tx", outcome="abort", txid=self._txid)
        # Obstruction-freedom: retry (still admitted, if using a CM).
        self._start_attempt()

    def _finish(self) -> None:
        if self.cm_diner is not None and self.cm_diner.state is DinerState.EATING:
            self.cm_diner.exit_eating()
        self._phase = "idle"

    @property
    def done(self) -> bool:
        return self.committed >= self.tx_target


@dataclass
class STMReport:
    """Outcome of one STM run."""

    with_cm: bool
    clients: int
    tx_target: int
    all_done: bool
    committed: int
    aborted: int
    max_retries: int
    last_abort_time: Optional[Time]
    end_time: Time
    cm_violations: int = 0
    cm_last_violation: Optional[Time] = None

    def abort_ratio(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    def format_row(self) -> str:
        mode = "with CM" if self.with_cm else "no CM  "
        last = "-" if self.last_abort_time is None else f"{self.last_abort_time:.0f}"
        return (
            f"{mode} clients={self.clients} committed={self.committed:4d} "
            f"aborted={self.aborted:4d} (ratio {self.abort_ratio():.2f}) "
            f"max_retries={self.max_retries} last_abort@{last} "
            f"done={self.all_done} t={self.end_time:.0f}"
        )


class ContentionManagedSTM:
    """Builds and runs one STM scenario, with or without the CM."""

    def __init__(self, n_clients: int = 4, tx_target: int = 20,
                 seed: int = 0, gst: Time = 100.0, max_time: Time = 6000.0,
                 compute_steps: int = 3,
                 shared_objects: Sequence[str] = ("counter",)) -> None:
        self.n_clients = n_clients
        self.tx_target = tx_target
        self.seed = seed
        self.gst = gst
        self.max_time = max_time
        self.compute_steps = compute_steps
        self.shared_objects = tuple(shared_objects)
        self.client_pids = [f"c{i}" for i in range(n_clients)]

    def run(self, with_cm: bool) -> STMReport:
        eng = Engine(
            SimConfig(seed=self.seed, max_time=self.max_time),
            delay_model=PartialSynchronyDelays(gst=self.gst, delta=1.5,
                                               pre_gst_max=15.0),
        )
        store_proc = eng.add_process(STORE_PID)
        store = ObjectStore(STORE_TAG, self.shared_objects)
        store_proc.add_component(store)
        for pid in self.client_pids:
            eng.add_process(pid)

        cm_graph = nx.complete_graph(self.n_clients)
        cm_graph = nx.relabel_nodes(cm_graph, dict(enumerate(self.client_pids)))
        diners: dict[ProcessId, DinerComponent] = {}
        if with_cm:
            mods = attach_detectors(
                eng, self.client_pids,
                lambda o, peers: EventuallyPerfectDetector(
                    "fd", peers, heartbeat_period=5, initial_timeout=12),
            )
            cm = WaitFreeEWXDining(
                CM_INSTANCE, cm_graph,
                lambda pid: (lambda q, m=mods[pid]: m.suspected(q)),
            )
            diners = dict(cm.attach(eng))

        clients: dict[ProcessId, TxClient] = {}
        for pid in self.client_pids:
            client = TxClient("txc", self.shared_objects, self.tx_target,
                              compute_steps=self.compute_steps,
                              cm_diner=diners.get(pid))
            eng.process(pid).add_component(client)
            clients[pid] = client

        eng.run(stop_when=lambda: all(c.done for c in clients.values()))
        end = eng.now

        abort_times = [r.time for r in eng.trace.records(kind="tx")
                       if r["outcome"] == "abort"]
        report = STMReport(
            with_cm=with_cm,
            clients=self.n_clients,
            tx_target=self.tx_target,
            all_done=all(c.done for c in clients.values()),
            committed=sum(c.committed for c in clients.values()),
            aborted=sum(c.aborted for c in clients.values()),
            max_retries=max(
                (max(c.retries_per_tx, default=0) for c in clients.values()),
                default=0,
            ),
            last_abort_time=max(abort_times, default=None),
            end_time=end,
        )
        if with_cm:
            excl = check_exclusion(eng.trace, cm_graph, CM_INSTANCE,
                                   CrashSchedule.none(), end)
            report.cm_violations = excl.count
            report.cm_last_violation = excl.last_violation_end
        return report
