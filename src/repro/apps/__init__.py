"""The paper's motivating applications (Section 2), built on the library.

* :mod:`repro.apps.wsn` — wireless-sensor-network duty-cycle scheduling:
  nodes with finite batteries rotate coverage duty through a dining
  scheduler; ◇WX mistakes cost only redundant coverage, never correctness.
* :mod:`repro.apps.stm` — obstruction-free software transactional memory
  boosted to wait-freedom by a dining-backed contention manager
  (Sections 2–3).
"""

from repro.apps.kv_store import KVReplica, check_replication
from repro.apps.stm import ContentionManagedSTM, STMReport
from repro.apps.wsn import WSNExperiment, WSNReport

__all__ = ["ContentionManagedSTM", "KVReplica", "STMReport",
           "WSNExperiment", "WSNReport", "check_replication"]
