"""A replicated key-value store on totally-ordered broadcast.

The canonical state-machine-replication stack, closing the paper's chain
end-to-end: black-box dining → extracted ◇P → consensus → atomic broadcast
→ identical replicas.  Every replica applies the same command sequence, so
all correct replicas converge to the same store state — which experiment
E17 checks under crashes with the *extracted* oracle as the only source of
failure information.

Commands: ``set k v``, ``del k``, ``incr k`` (by 1, treating missing as 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.consensus.atomic_broadcast import AtomicBroadcast
from repro.errors import ConfigurationError
from repro.sim.component import Component, action
from repro.types import ProcessId


def apply_command(state: dict[str, Any], command: Mapping[str, Any]) -> None:
    """Apply one command in place (must stay deterministic)."""
    op = command["op"]
    key = command["key"]
    if op == "set":
        state[key] = command["value"]
    elif op == "del":
        state.pop(key, None)
    elif op == "incr":
        state[key] = int(state.get(key, 0)) + 1
    else:
        raise ConfigurationError(f"unknown command op {op!r}")


class KVReplica(Component):
    """One replica: applies the atomic-broadcast stream to a local dict."""

    def __init__(self, name: str, abcast: AtomicBroadcast) -> None:
        super().__init__(name)
        self.abcast = abcast
        self.state: dict[str, Any] = {}
        self.applied = 0

    # -- client API -------------------------------------------------------

    def submit(self, op: str, key: str, value: Any = None) -> str:
        """Submit a command; it is applied once totally ordered."""
        return self.abcast.abroadcast({"op": op, "key": key, "value": value})

    def get(self, key: str, default: Any = None) -> Any:
        """Local (possibly stale) read."""
        return self.state.get(key, default)

    # -- replication ----------------------------------------------------------

    @action(guard=lambda self: self.applied < len(self.abcast.delivered_log)
            and self.abcast.delivered_log[self.applied][1] is not None)
    def apply_next(self) -> None:
        _, command = self.abcast.delivered_log[self.applied]
        apply_command(self.state, command)
        self.applied += 1
        self.record("kv_apply", n=self.applied)

    def snapshot(self) -> dict[str, Any]:
        return dict(self.state)


@dataclass
class ReplicationResult:
    """Verdict of a replicated-KV run."""

    consistent: bool          # all correct replicas reached identical state
    final_state: Optional[dict[str, Any]]
    applied: dict[ProcessId, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.consistent


def check_replication(
    replicas: Mapping[ProcessId, KVReplica],
    correct: Sequence[ProcessId],
) -> ReplicationResult:
    """All correct replicas must hold identical state."""
    states = {pid: replicas[pid].snapshot() for pid in correct}
    values = list(states.values())
    consistent = all(v == values[0] for v in values) if values else True
    return ReplicationResult(
        consistent=consistent,
        final_state=values[0] if values else None,
        applied={pid: replicas[pid].applied for pid in replicas},
    )
