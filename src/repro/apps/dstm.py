"""DSTM-style obstruction-free transactional memory, in shared memory.

This is the exact setting of the paper's Section 3 discussion of [8]:
an *obstruction-free* software transactional memory whose progress is
guaranteed only for transactions running in isolation, boosted to
wait-freedom by a contention manager (here: a WF-◇WX dining instance).

The design follows DSTM's ownership-record scheme, simplified:

* every object ``o`` has two atomic registers — an ownership record
  ``("orec", o)`` holding the owning transaction id (or None) and a value
  cell ``("val", o)`` holding ``(value, version)``;
* a transaction CAS-acquires the orec of every object it touches, one per
  atomic step; on meeting a *foreign* orec it **aborts itself** (no
  waiting, no helping — obstruction-freedom), releases what it holds, and
  retries;
* with all orecs held it applies its updates and releases.

A crashed owner leaves its orecs acquired forever, so raw DSTM is not even
obstruction-free under crashes — but admission through a *wait-free* ◇WX
contention manager makes the common case contention-free; the stale-orec
hazard is mitigated with suspicion-gated orec stealing (steal only from
owners the local ◇P suspects — mistakes are finite, so stealing from a
live owner happens finitely often and only costs an abort, never safety,
because the victim's commit CAS fails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.dining.base import DinerComponent
from repro.errors import ConfigurationError
from repro.sim.component import Component, action
from repro.sim.shm import SharedMemory
from repro.types import DinerState, ProcessId


class DSTMClient(Component):
    """One client running increment transactions over its object set.

    Phase machine (one shared-memory operation per action step):
    ``idle → [admission] → acquiring → updating → releasing → idle``;
    an abort jumps to ``releasing`` and retries after release.
    """

    def __init__(self, name: str, shm: SharedMemory,
                 objects: Sequence[str], tx_target: int,
                 cm_diner: Optional[DinerComponent] = None,
                 suspect: Optional[Callable[[ProcessId], bool]] = None,
                 owner_of: Optional[Callable[[str], ProcessId]] = None) -> None:
        super().__init__(name)
        if tx_target < 0:
            raise ConfigurationError("tx_target must be >= 0")
        self.shm = shm
        self.objects = tuple(sorted(objects))   # global order: no livelock
        self.tx_target = tx_target
        self.cm_diner = cm_diner
        self.suspect = suspect
        self.owner_of = owner_of    # txid -> owning process (for stealing)

        self.committed = 0
        self.aborted = 0
        self.steals = 0
        self._txid = 0
        self._phase = "idle"
        self._acquired: list[str] = []
        self._staged: dict[str, tuple] = {}
        self._commit_done = False

    # -- helpers ------------------------------------------------------------

    def _tx(self) -> str:
        return f"{self.pid}#{self._txid}"

    def _admitted(self) -> bool:
        return self.cm_diner is None or self.cm_diner.state is DinerState.EATING

    @property
    def done(self) -> bool:
        return self.committed >= self.tx_target

    # -- phases ------------------------------------------------------------------

    @action(guard=lambda self: self._phase == "idle" and not self.done)
    def begin(self) -> None:
        self._txid += 1
        if self.cm_diner is not None:
            self.cm_diner.become_hungry()
            self._phase = "admission"
        else:
            self._phase = "acquiring"

    @action(guard=lambda self: self._phase == "admission" and self._admitted())
    def admitted(self) -> None:
        self._phase = "acquiring"

    @action(guard=lambda self: self._phase == "acquiring")
    def acquire_one(self) -> None:
        """One CAS per step; foreign orec => obstruction => abort self."""
        remaining = [o for o in self.objects if o not in self._acquired]
        if not remaining:
            self._phase = "updating"
            self._staged = {}
            return
        obj = remaining[0]
        if self.shm.cas(("orec", obj), None, self._tx()):
            self._acquired.append(obj)
            return
        holder_tx = self.shm.read(("orec", obj))
        if self._may_steal(holder_tx):
            # Suspected-owner orec: reclaim it (a victim that is somehow
            # alive fails validation at its publication step, harmlessly).
            self.shm.write(("orec", obj), self._tx())
            self._acquired.append(obj)
            self.steals += 1
            return
        self.aborted += 1
        self.record("tx", outcome="abort", txid=self._txid)
        self._phase = "releasing"

    def _may_steal(self, holder_tx) -> bool:
        if holder_tx is None or self.suspect is None or self.owner_of is None:
            return False
        owner = self.owner_of(holder_tx)
        return owner != self.pid and self.suspect(owner)

    @action(guard=lambda self: self._phase == "updating")
    def stage_or_commit(self) -> None:
        """Stage one read per step, then one atomic publication step.

        The final step validates every orec is still ours and publishes all
        staged values together — modelling DSTM's single status-word CAS
        that makes a transaction's writes visible atomically.  A victim
        whose orec was stolen mid-transaction fails validation and aborts
        with no partial effects (atomicity preserved).
        """
        pending = [o for o in self._acquired if o not in self._staged]
        if pending:
            obj = pending[0]
            value, version = self.shm.read(("val", obj), default=(0, 0))
            self._staged[obj] = (value + 1, version + 1)
            return
        if all(self.shm.read(("orec", o)) == self._tx()
               for o in self._acquired):
            for obj, vv in self._staged.items():
                self.shm.write(("val", obj), vv)
            self.committed += 1
            self._commit_done = True
            self.record("tx", outcome="commit", txid=self._txid)
        else:
            self.aborted += 1
            self.record("tx", outcome="abort", txid=self._txid)
        self._phase = "releasing"

    @action(guard=lambda self: self._phase == "releasing")
    def release_one(self) -> None:
        if self._acquired:
            obj = self._acquired.pop()
            # Release only our own orec (a stealer may have taken it).
            self.shm.cas(("orec", obj), self._tx(), None)
            return
        self._staged = {}
        if self._commit_done:
            # Leave the CM after a commit; an aborted attempt retries
            # under the same admission.
            if (self.cm_diner is not None
                    and self.cm_diner.state is DinerState.EATING):
                self.cm_diner.exit_eating()
            self._commit_done = False
            self._phase = "idle"
        else:
            self._phase = "acquiring"


@dataclass
class DSTMReport:
    """Outcome of one shared-memory DSTM run."""

    with_cm: bool
    clients: int
    tx_target: int
    all_done: bool
    committed: int
    aborted: int
    steals: int
    end_time: float
    final_counter: Optional[int]
    shm_ops: dict

    def serializable(self) -> bool:
        """The shared counter must equal the global commit count."""
        return self.final_counter == self.committed

    def abort_ratio(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    def format_row(self) -> str:
        mode = "with CM" if self.with_cm else "no CM  "
        return (f"{mode} clients={self.clients} committed={self.committed:4d} "
                f"aborted={self.aborted:4d} (ratio {self.abort_ratio():.2f}) "
                f"steals={self.steals} counter={self.final_counter} "
                f"done={self.all_done} t={self.end_time:.0f}")


class SharedMemorySTM:
    """Builds and runs one shared-memory DSTM scenario.

    Clients share the objects (default: one counter — a clique conflict
    graph for the CM).  Pass a crash schedule to exercise the
    suspicion-gated orec stealing: a client crashed mid-transaction leaves
    its orecs behind, and survivors reclaim them once their ◇P suspects it.
    """

    def __init__(self, n_clients: int = 4, tx_target: int = 15,
                 seed: int = 0, gst: float = 100.0, max_time: float = 8000.0,
                 objects: Sequence[str] = ("counter",),
                 crash=None) -> None:
        self.n_clients = n_clients
        self.tx_target = tx_target
        self.seed = seed
        self.gst = gst
        self.max_time = max_time
        self.objects = tuple(objects)
        self.crash = crash
        self.client_pids = [f"c{i}" for i in range(n_clients)]

    def run(self, with_cm: bool) -> DSTMReport:
        import networkx as nx

        from repro.dining.wf_ewx import WaitFreeEWXDining
        from repro.experiments.common import build_system

        system = build_system(self.client_pids, seed=self.seed, gst=self.gst,
                              max_time=self.max_time, crash=self.crash)
        shm = SharedMemory()
        diners = {}
        if with_cm:
            graph = nx.complete_graph(self.n_clients)
            graph = nx.relabel_nodes(graph,
                                     dict(enumerate(self.client_pids)))
            cm = WaitFreeEWXDining("CM", graph, system.provider)
            diners = dict(cm.attach(system.engine))

        owner_of = lambda txid: txid.split("#", 1)[0]  # noqa: E731
        clients = {}
        for pid in self.client_pids:
            suspect = system.provider(pid)
            clients[pid] = system.engine.process(pid).add_component(
                DSTMClient("dstm", shm, self.objects, self.tx_target,
                           cm_diner=diners.get(pid),
                           suspect=suspect, owner_of=owner_of))

        def finished() -> bool:
            return all(
                system.engine.process(pid).crashed or clients[pid].done
                for pid in self.client_pids
            )

        system.engine.run(stop_when=finished)
        live = [c for pid, c in clients.items()
                if not system.engine.process(pid).crashed]
        counter = shm.read(("val", self.objects[0]), default=(0, 0))[0]
        return DSTMReport(
            with_cm=with_cm,
            clients=self.n_clients,
            tx_target=self.tx_target,
            all_done=all(c.done for c in live),
            committed=sum(c.committed for c in clients.values()),
            aborted=sum(c.aborted for c in clients.values()),
            steals=sum(c.steals for c in clients.values()),
            end_time=system.engine.now,
            final_counter=counter,
            shm_ops=shm.op_counts(),
        )
