"""Seeded chaos campaigns: randomized fault schedules, checked invariants.

A chaos *campaign* runs ``campaigns`` independent dining scenarios, each
derived deterministically from one 32-bit *run seed*: the run seed alone
fixes the topology, algorithm, client workload, crash schedule, link-fault
rates, partition window, and adversary rule (drawn inside
:func:`build_run`), and also seeds the simulation itself.  Per run, four
invariants are checked with the existing trace checkers:

* **wait-freedom** — every correct hungry diner eventually eats
  (:func:`repro.dining.spec.check_wait_freedom`);
* **◇WX** — every exclusion violation is *oracle-justified*: simultaneous
  eating happens only when a session starts under a ◇P mistake, so once
  mistakes stop (eventual accuracy, checked separately) violations stop —
  a finite-run check robust to legitimately late oracle mistakes;
* **◇P accuracy / completeness** — the box oracle converges on the truth
  (:mod:`repro.oracles.properties`).

Because a run is a pure function of its run seed plus the campaign knobs,
any failure reproduces deterministically: the verdict carries a ready
``repro chaos --replay <run_seed> ...`` command that rebuilds and re-runs
exactly that scenario, bit for bit.  The CLI exposes campaigns as
``repro chaos --campaigns N --seed S`` (JSON summary with ``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.report import Table
from repro.errors import ConfigurationError
from repro.obs import CampaignTelemetry, run_record
from repro.runtime import SupervisedExecutor
from repro.runtime.seeds import fanout_seeds  # noqa: F401  (re-export: the
# campaign seed fanout lives in the runtime layer; ``repro.chaos`` keeps
# the historical name for callers and the CLI)
from repro.runtime.store import ResultStore, resumable_map, spec_hash
from repro.scenario import Scenario, ScenarioReport, parse_graph
from repro.sim.faults import CrashSchedule


@dataclass(frozen=True)
class ChaosConfig:
    """Campaign-level knobs: how many runs, and how hostile each may get."""

    campaigns: int = 20
    seed: int = 0
    graphs: Sequence[str] = ("ring:3", "ring:4", "path:4", "star:3")
    algorithms: Sequence[str] = ("wf-ewx",)
    clients: Sequence[str] = ("eager:2", "periodic")
    drop_max: float = 0.3
    duplicate_max: float = 0.1
    partition_prob: float = 0.5
    partition_max_len: float = 180.0
    max_faulty: int = 1
    slow_prob: float = 0.3
    gst: float = 120.0
    max_time: float = 900.0
    #: End-of-run allowance for still-pending hunger (wait-freedom is a
    #: liveness property; under heavy loss honest service latency spans a
    #: few retransmission round-trips, so this is larger than the
    #: clean-network default).
    grace: float = 250.0
    #: Retransmit policy for chaos runs: snappier than the transport
    #: default so recovery timescales fit inside ``max_time``.
    rto_initial: float = 6.0
    rto_max: float = 45.0
    #: With the transport the paper's channel assumptions hold and every
    #: invariant must pass; ``transport=False`` exposes raw lossy channels
    #: to the algorithms (negative testing — expect failures).
    transport: bool = True
    oracle: str = "hb"
    #: Which failure detector every run uses, by registry name
    #: (:data:`repro.oracles.registry.REGISTRY`); the default keeps the
    #: historical heartbeat ◇P.  The detector knob consumes no randomness
    #: in :func:`build_run`, so two campaigns differing only in detector
    #: face *identical* scenarios seed for seed — the property the
    #: ``repro lattice`` comparison rests on.
    detector: str = "eventually_perfect"
    #: Per-detector parameter overrides (see the registry entry defaults).
    detector_params: Mapping[str, Any] = field(default_factory=dict)
    #: Trace-sink mode for every run (``full`` | ``ring:N`` | ``counters``).
    #: ``counters`` retains no rows, so runs execute *unchecked* (metrics
    #: only — the mode long perf campaigns use); :func:`check_invariants`
    #: then has nothing to judge and reports no failures.
    trace: str = "full"
    #: Pair-selection policy threaded into every built scenario (``all`` |
    #: ``neighbors`` | ``neighbors:<k>``).  ``neighbors`` is what makes
    #: large sparse topologies (``rgg:100:...``) campaign-tractable; see
    #: docs/topologies.md.
    pairs: str = "all"
    #: Accept disconnected conflict graphs (components monitored
    #: independently) — low-radius rgg draws commonly disconnect.
    allow_disconnected: bool = False
    #: Span-level tracing (:mod:`repro.obs.spans`) on every run: suspicion
    #: intervals, dining phases, crash points, convergence markers — the
    #: ``--spans-out`` / ``repro timeline`` evidence.  Off by default.
    spans: bool = False

    def __post_init__(self) -> None:
        for name in ("drop_max", "duplicate_max", "partition_prob",
                     "slow_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability, got {value}")
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be positive")
        from repro.core.extraction import PairSelection

        PairSelection.parse(self.pairs)
        from repro.oracles.registry import DetectorSpec

        DetectorSpec(self.detector, dict(self.detector_params))

    def cli_flags(self) -> str:
        """The non-default flags needed to reproduce runs of this config."""
        default = ChaosConfig()
        flags = []
        if tuple(self.graphs) != tuple(default.graphs):
            flags.append("--graphs " + " ".join(self.graphs))
        for name, flag in (("drop_max", "--drop-max"),
                           ("duplicate_max", "--duplicate-max"),
                           ("partition_prob", "--partition-prob"),
                           ("max_faulty", "--max-faulty"),
                           ("slow_prob", "--slow-prob"),
                           ("max_time", "--max-time")):
            value = getattr(self, name)
            if value != getattr(default, name):
                flags.append(f"{flag} {value}")
        if not self.transport:
            flags.append("--no-transport")
        if self.detector != default.detector:
            flags.append(f"--detector {self.detector}")
        if self.trace != default.trace:
            flags.append(f"--trace-sink {self.trace}")
        if self.pairs != default.pairs:
            flags.append(f"--pairs {self.pairs}")
        if self.allow_disconnected:
            flags.append("--allow-disconnected")
        if self.spans:
            flags.append("--spans")
        return " ".join(flags)


def build_run(run_seed: int, cfg: ChaosConfig) -> Scenario:
    """The scenario for one chaos run — a pure function of ``run_seed``.

    All randomization is drawn from a generator seeded with ``run_seed``
    in a fixed order, so the same seed (under the same config knobs)
    always yields the same scenario; the scenario's own ``seed`` is the
    run seed too, so the simulation replays identically as well.
    """
    rng = np.random.default_rng(int(run_seed))
    graph_spec = str(rng.choice(list(cfg.graphs)))
    algorithm = str(rng.choice(list(cfg.algorithms)))
    client = str(rng.choice(list(cfg.clients)))
    pids = sorted(parse_graph(graph_spec).nodes)

    drop = float(rng.uniform(0.0, cfg.drop_max))
    duplicate = float(rng.uniform(0.0, cfg.duplicate_max))

    partition: Optional[dict[str, Any]] = None
    if rng.random() < cfg.partition_prob and len(pids) >= 2:
        side_size = int(rng.integers(1, len(pids)))
        side = [pids[int(i)] for i in
                rng.choice(len(pids), size=side_size, replace=False)]
        start = float(rng.uniform(0.1, 0.45) * cfg.max_time)
        length = float(rng.uniform(30.0, cfg.partition_max_len))
        partition = {"side": sorted(side), "start": start,
                     "end": start + length}

    crashes = {
        pid: t for pid, t in CrashSchedule.random(
            pids, cfg.max_faulty, 0.6 * cfg.max_time, rng).items()
    }

    slow: Optional[dict[str, Any]] = None
    if rng.random() < cfg.slow_prob:
        slow = {
            "endpoint": str(rng.choice(pids)),
            "factor": float(rng.uniform(1.5, 4.0)),
            "extra_max": float(rng.uniform(0.0, 15.0)),
            "until": cfg.gst + 0.3 * cfg.max_time,
        }

    # NB: the detector knobs are pure pass-through (no rng draws), so every
    # scenario below is identical across detectors for a given run seed.
    return Scenario(
        name=f"chaos-{run_seed}",
        graph=graph_spec,
        algorithm=algorithm,
        oracle=cfg.oracle,
        detector=cfg.detector,
        detector_params=dict(cfg.detector_params),
        client=client,
        crashes=crashes,
        seed=int(run_seed),
        gst=cfg.gst,
        max_time=cfg.max_time,
        grace=cfg.grace,
        drop=drop,
        duplicate=duplicate,
        partition=partition,
        transport=({"rto_initial": cfg.rto_initial, "rto_max": cfg.rto_max}
                   if cfg.transport else False),
        slow=slow,
        trace=cfg.trace,
        pairs=cfg.pairs,
        allow_disconnected=cfg.allow_disconnected,
        spans=cfg.spans,
    )


@dataclass
class RunVerdict:
    """Outcome of one chaos run: invariant failures plus a replay recipe."""

    index: int
    run_seed: int
    scenario: Scenario
    report: ScenarioReport
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def replay_command(self, cfg: ChaosConfig) -> str:
        return _replay_command(self.run_seed, cfg)

    def summary(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "run_seed": self.run_seed,
            "ok": self.ok,
            "failures": list(self.failures),
            # Sink mode the verdict's trace was recorded under, so a
            # truncated-trace replay is never misread as missing events.
            "trace_mode": self.report.trace_mode,
            "graph": self.scenario.graph,
            "algorithm": self.scenario.algorithm,
            "client": self.scenario.client,
            "drop": round(self.scenario.drop, 4),
            "duplicate": round(self.scenario.duplicate, 4),
            "partition": (dict(self.scenario.partition)
                          if self.scenario.partition else None),
            "crashes": dict(self.scenario.crashes),
            "slow": dict(self.scenario.slow) if self.scenario.slow else None,
            "messages_sent": self.report.metrics.messages_sent,
            "messages_dropped": self.report.metrics.messages_dropped,
            "messages_duplicated": self.report.metrics.messages_duplicated,
            "retransmissions": self.report.metrics.retransmissions,
            "exclusion_violations": (self.report.exclusion.count
                                     if self.report.checked else None),
            # End of the latest exclusion violation (None when the run was
            # unchecked or violation-free): the ◇WX quiet-suffix evidence
            # the lattice verdict reads.
            "last_violation_end": (
                self.report.exclusion.last_violation_end
                if self.report.checked else None),
            "max_hungry_wait": (round(self.report.wait_freedom.max_wait, 2)
                                if self.report.checked else None),
            # Detector-quality telemetry (None when the obs knob is off).
            "convergence_time": self.report.convergence_time,
            "wrongful_suspicions": self.report.wrongful_suspicions,
            "suspicion_churn": self.report.suspicion_churn,
        }

    def run_record(self) -> dict[str, Any]:
        """The ``--metrics-out`` JSONL record: full metric snapshot plus
        the flat verdict summary."""
        return run_record(self.report, verdict=self.summary())

    def span_records(self) -> list[dict[str, Any]]:
        """This run's ``repro.span.v1`` records (empty when the campaign's
        ``spans`` knob is off)."""
        return self.report.span_records()


def check_invariants(report: ScenarioReport, cfg: ChaosConfig) -> list[str]:
    """The per-run invariant battery; empty list = all good.

    An *unchecked* report (``counters`` trace sink: no rows retained, so
    the checkers never ran) has nothing to judge — such runs are
    metrics-only by construction and report no failures; the verdict's
    ``trace_mode`` field keeps that visible downstream.
    """
    if not report.checked:
        return []
    failures = []
    if not report.wait_freedom.ok:
        failures.append(
            "wait-freedom: starving "
            f"{', '.join(report.wait_freedom.starving)}")
    if not report.violations_justified:
        failures.append(
            "eventual-weak-exclusion: unjustified violation — simultaneous "
            "eating without an oracle mistake at session start")
    if not report.oracle_accuracy_ok:
        failures.append("oracle-accuracy: correct process still suspected")
    if not report.oracle_completeness_ok:
        failures.append("oracle-completeness: crashed process not suspected")
    return failures


def run_one(index: int, run_seed: int, cfg: ChaosConfig) -> RunVerdict:
    """Build, run, and judge a single chaos run."""
    scenario = build_run(run_seed, cfg)
    report = scenario.run()
    return RunVerdict(index=index, run_seed=run_seed, scenario=scenario,
                      report=report, failures=check_invariants(report, cfg))


def _replay_command(run_seed: int, cfg: ChaosConfig) -> str:
    flags = cfg.cli_flags()
    return ("python -m repro chaos --replay "
            f"{run_seed}{' ' + flags if flags else ''}")


# -- checkpoint/resume --------------------------------------------------------


def run_key(run_seed: int, cfg: ChaosConfig) -> str:
    """Content address of one chaos run: the canonical hash of the
    scenario the run seed deterministically expands to, so the key
    captures every campaign knob that shapes the run."""
    return spec_hash(build_run(run_seed, cfg))


def _verdict_payload(verdict: RunVerdict) -> dict[str, Any]:
    """The store payload for one completed run: the flat verdict summary
    plus the full ``--metrics-out`` record — everything campaign
    aggregation reads, so a resumed campaign reproduces an uninterrupted
    one byte for byte without re-simulating.  Span records ride along
    only when the campaign collects them (the ``spans`` knob), so
    spans-off stores don't grow."""
    payload = {"run_seed": verdict.run_seed, "verdict": verdict.summary(),
               "record": verdict.run_record()}
    if getattr(verdict.report, "spans", None) is not None:
        payload["spans"] = verdict.span_records()
    return payload


class _StoredReport:
    """Minimal report view for a store-served verdict (no trace, no
    re-derived verdict objects — aggregation reads the stored dicts)."""

    __slots__ = ("trace_mode",)

    def __init__(self, trace_mode: str) -> None:
        self.trace_mode = trace_mode


class StoredVerdict:
    """A chaos run served from the :class:`ResultStore` instead of
    re-simulated: duck-types the slice of :class:`RunVerdict` campaign
    aggregation uses, returning the stored summary and record verbatim
    (key order preserved), so resumed aggregates are byte-identical."""

    def __init__(self, index: int, run_seed: int, scenario: Scenario,
                 payload: Mapping[str, Any]) -> None:
        self.index = index
        self.run_seed = run_seed
        self.scenario = scenario
        self._summary = dict(payload["verdict"])
        self._record = dict(payload["record"])
        self._spans = list(payload.get("spans") or ())
        self.failures = list(self._summary.get("failures", ()))
        self.report = _StoredReport(
            trace_mode=str(self._summary.get("trace_mode", "full")))

    @property
    def ok(self) -> bool:
        return not self.failures

    def replay_command(self, cfg: ChaosConfig) -> str:
        return _replay_command(self.run_seed, cfg)

    def summary(self) -> dict[str, Any]:
        return dict(self._summary)

    def run_record(self) -> dict[str, Any]:
        return dict(self._record)

    def span_records(self) -> list[dict[str, Any]]:
        """The stored ``repro.span.v1`` records, verbatim (empty for runs
        stored by a spans-off campaign)."""
        return [dict(r) for r in self._spans]


@dataclass
class CampaignResult:
    """All verdicts of one campaign plus aggregate accounting."""

    cfg: ChaosConfig
    verdicts: list[RunVerdict]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def failed(self) -> list[RunVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def run_records(self) -> list[dict[str, Any]]:
        """The campaign's ``--metrics-out`` JSONL records, in run order."""
        return [v.run_record() for v in self.verdicts]

    def span_records(self) -> list[dict[str, Any]]:
        """The campaign's ``repro.span.v1`` records (``--spans-out``), in
        run order — every run's spans concatenated, so the file is
        byte-identical between serial, parallel, and resumed campaigns."""
        return [rec for v in self.verdicts for rec in v.span_records()]

    def telemetry(self) -> CampaignTelemetry:
        """Cross-seed detector-quality aggregation (p50/p95/max
        convergence time, merged latency histograms, message totals)."""
        return CampaignTelemetry.from_records(self.run_records())

    def to_json(self) -> dict[str, Any]:
        return {
            "seed": self.cfg.seed,
            "campaigns": self.cfg.campaigns,
            "transport": self.cfg.transport,
            "passed": sum(v.ok for v in self.verdicts),
            "failed": len(self.failed),
            "ok": self.ok,
            "replay": {str(v.run_seed): v.replay_command(self.cfg)
                       for v in self.failed},
            "telemetry": self.telemetry().summary(),
            "runs": [v.summary() for v in self.verdicts],
        }

    def render(self) -> str:
        table = Table(
            ["run", "seed", "graph", "drop", "part", "crash", "verdict"],
            title=(f"chaos campaign: {len(self.verdicts)} runs from base seed "
                   f"{self.cfg.seed} "
                   f"({'transport' if self.cfg.transport else 'raw links'})"),
        )
        for v in self.verdicts:
            table.add_row([
                v.index,
                v.run_seed,
                v.scenario.graph,
                f"{v.scenario.drop:.2f}",
                "yes" if v.scenario.partition else "-",
                ",".join(sorted(v.scenario.crashes)) or "-",
                "ok" if v.ok else "; ".join(v.failures),
            ])
        lines = [table.render()]
        for v in self.failed:
            lines.append(f"replay run {v.index} "
                         f"(trace {v.report.trace_mode}): "
                         f"{v.replay_command(self.cfg)}")
        tele = self.telemetry()
        if tele.with_metrics:
            lines.append(tele.render(title="campaign telemetry"))
        lines.append(
            f"{sum(v.ok for v in self.verdicts)}/{len(self.verdicts)} passed")
        return "\n".join(lines)


def _run_one_detached(task: "tuple[int, int, ChaosConfig]") -> RunVerdict:
    """Pool task: one chaos run, trace dropped (verdicts travel, bulk
    event history does not).  Module-level so it pickles by reference."""
    index, run_seed, cfg = task
    verdict = run_one(index, run_seed, cfg)
    verdict.report.detach_trace()
    return verdict


def run_campaign(cfg: ChaosConfig, workers: int = 1,
                 store: "ResultStore | None" = None,
                 resume: bool = False,
                 executor: "SupervisedExecutor | None" = None,
                 on_result: "Any | None" = None,
                 ) -> CampaignResult:
    """Run the whole seeded campaign, fanned over ``workers`` processes.

    Each run is a pure function of its run seed, so verdicts are keyed by
    seed and independent of worker count or completion order:
    ``workers=4`` reproduces ``workers=1`` exactly, per seed (the
    determinism suite in ``tests/runtime/test_executor.py`` pins this).

    With a ``store``, each run's verdict is checkpointed under its
    content address (:func:`run_key`) the moment it completes, so an
    interrupted campaign keeps everything already computed; with
    ``resume`` as well, stored runs are served from the store instead of
    re-simulated, and the aggregates (tables, ``--json``, telemetry,
    metrics records) are byte-identical to an uninterrupted campaign
    (pinned by ``tests/runtime/test_resume.py``).

    Pass an ``executor`` to control supervision knobs (per-task timeout,
    retry policy, self-chaos fault hook); by default one is built from
    ``workers``.  ``on_result(index, verdict, cached)`` fires once per
    run as its verdict lands (store-served verdicts at load with
    ``cached=True``, fresh ones in completion order) — the hook
    :class:`~repro.runtime.progress.ProgressReporter` plugs into.
    """
    seeds = fanout_seeds(cfg.seed, cfg.campaigns)
    tasks = [(i, run_seed, cfg) for i, run_seed in enumerate(seeds)]
    executor = executor or SupervisedExecutor(workers=workers)
    if store is None and not resume:
        fresh = (None if on_result is None
                 else lambda i, v: on_result(i, v, False))
        verdicts = executor.map(_run_one_detached, tasks, on_result=fresh)
    else:
        verdicts = resumable_map(
            _run_one_detached, tasks,
            keys=[run_key(run_seed, cfg) for run_seed in seeds],
            encode=_verdict_payload,
            decode=lambda payload, i, task: StoredVerdict(
                task[0], task[1], build_run(task[1], cfg), payload),
            store=store, resume=resume, executor=executor,
            on_result=on_result,
        )
    return CampaignResult(cfg=cfg, verdicts=verdicts)


def replay(run_seed: int, cfg: ChaosConfig) -> RunVerdict:
    """Re-run one chaos run from its reported seed (same config knobs)."""
    return run_one(0, int(run_seed), cfg)
