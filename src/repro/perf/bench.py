"""Deterministic microbench harness for the simulation substrate.

Each *workload* is a named builder of complete, seeded simulation runs;
the harness repeatedly builds and runs them (construction excluded from
the timed region) until a wall-clock budget is spent, then reports
aggregate event throughput.  All workloads are pure functions of fixed
seeds, so two builds of the same tree measure the same work — only the
speed differs.

Workloads:

``chaos_counters``
    The headline number: chaos-campaign runs (randomized topology,
    link faults, partitions, crashes, transport) executed under the
    ``counters`` trace sink — the exact shape long campaigns run in,
    where engine hot-path cost dominates because nothing is retained.
``engine_steps``
    Step scheduling and action dispatch in isolation: processes with a
    never-enabled action and no traffic.
``message_flood``
    Network send/deliver saturation: a ring of chatter components that
    send on every step over fixed delays.
``dining_full``
    An end-to-end wf-ewx dining run with a crash, full trace retention,
    and convergence probes — the interactive / test-suite shape.
``sparse_rgg``
    A large-n (256 diners) random-geometric run under conflict-graph-local
    pair selection (``pairs=neighbors``) and the ``counters`` sink — the
    sparse-topology campaign shape; the full events/sec-vs-n curve lives
    in :mod:`repro.perf.scaling` (``BENCH_scaling.json``).
``dining_obs_off`` / ``dining_spans``
    The observability-overhead pair around ``dining_full``: the same run
    with the metrics registry and probes disabled (``obs=False``), and
    with span tracing added on top (``spans=True``).  Comparing the three
    bounds what metrics and span collection cost; the committed
    ``BENCH_obs.json`` carries their baseline events/sec so CI can gate
    the span-probe overhead (``repro bench --check --baseline
    benchmarks/results/BENCH_obs.json``).

The JSON artifact (``benchmarks/results/BENCH_engine.json``) carries the
current numbers plus the committed pre-optimization baseline and the
resulting speedups, so the perf trajectory is machine-checkable
(``repro bench --check`` fails on a > ``--max-regression`` slowdown; CI
runs exactly that on a tiny budget).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.component import Component, action, receive

BENCH_SCHEMA = "repro.bench.engine.v1"

#: Default location of the committed pre-optimization numbers.
BASELINE_PATH = (pathlib.Path(__file__).resolve().parents[3]
                 / "benchmarks" / "results" / "BENCH_engine_baseline.json")


@dataclass(frozen=True)
class WorkloadResult:
    """Aggregate outcome of repeatedly running one workload."""

    name: str
    runs: int
    events: int
    wall_seconds: float

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "runs": self.runs,
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
        }


# -- workload builders --------------------------------------------------------
#
# A builder returns a zero-arg runner; calling the runner executes the
# (freshly built) simulation and returns the number of events processed.
# Builders take an iteration index so successive runs can rotate through
# a fixed seed list — deterministic, but not a single cache-warm seed.


def _build_chaos_counters(i: int) -> Callable[[], int]:
    from repro.chaos import ChaosConfig, build_run
    from repro.runtime.builder import instantiate

    seeds = (2885616951, 1824804496, 2385331485, 3373332282)
    cfg = ChaosConfig()
    spec = dataclasses.replace(build_run(seeds[i % len(seeds)], cfg),
                               trace="counters")
    built = instantiate(spec)

    def run() -> int:
        built.engine.run()
        return built.engine.events_processed

    return run


def _build_engine_steps(i: int) -> Callable[[], int]:
    from repro.sim import Engine, FixedDelays, SimConfig
    from repro.sim.component import FunctionalComponent

    eng = Engine(SimConfig(seed=100 + i, max_time=1e9),
                 delay_model=FixedDelays(1.0))
    for p in range(8):
        eng.add_process(f"p{p}").add_component(
            FunctionalComponent(
                "idle", internal=[("noop", lambda c: False, lambda: None)]))

    def run() -> int:
        eng.run(until=800.0)
        return eng.events_processed

    return run


class _Chatter(Component):
    """Send a gossip message to the ring neighbour on every step."""

    def __init__(self, peer: str) -> None:
        super().__init__("chat")
        self.peer = peer

    @action(guard=lambda self: True)
    def talk(self) -> None:
        self.send(self.peer, "chat", "gossip")

    @receive("gossip")
    def on_gossip(self, msg) -> None:
        pass


def _build_message_flood(i: int) -> Callable[[], int]:
    from repro.sim import Engine, FixedDelays, SimConfig

    eng = Engine(SimConfig(seed=200 + i, max_time=1e9),
                 delay_model=FixedDelays(1.0))
    n = 6
    pids = [f"p{p}" for p in range(n)]
    for pid in pids:
        eng.add_process(pid)
    for p, pid in enumerate(pids):
        eng.processes[pid].add_component(_Chatter(pids[(p + 1) % n]))

    def run() -> int:
        eng.run(until=250.0)
        return eng.events_processed

    return run


def _build_dining_full(i: int) -> Callable[[], int]:
    from repro.runtime.builder import instantiate
    from repro.runtime.spec import RunSpec

    spec = RunSpec(name="bench-dining", graph="ring:4", seed=42 + i,
                   max_time=500.0, crashes={"p1": 180.0})
    built = instantiate(spec)

    def run() -> int:
        built.engine.run()
        return built.engine.events_processed

    return run


def _build_dining_obs_off(i: int) -> Callable[[], int]:
    from repro.runtime.builder import instantiate
    from repro.runtime.spec import RunSpec

    spec = RunSpec(name="bench-dining", graph="ring:4", seed=42 + i,
                   max_time=500.0, crashes={"p1": 180.0}, obs=False)
    built = instantiate(spec)

    def run() -> int:
        built.engine.run()
        return built.engine.events_processed

    return run


def _build_dining_spans(i: int) -> Callable[[], int]:
    from repro.runtime.builder import instantiate
    from repro.runtime.spec import RunSpec

    spec = RunSpec(name="bench-dining", graph="ring:4", seed=42 + i,
                   max_time=500.0, crashes={"p1": 180.0}, spans=True)
    built = instantiate(spec)

    def run() -> int:
        built.engine.run()
        return built.engine.events_processed

    return run


def _build_sparse_rgg(i: int) -> Callable[[], int]:
    from repro.perf.scaling import rgg_spec
    from repro.runtime.builder import instantiate
    from repro.runtime.spec import RunSpec

    # A large-n sparse point under conflict-graph-local monitoring — the
    # shape big campaigns run in (see repro.perf.scaling for the full
    # events/sec-vs-n curve).
    spec = RunSpec(name="bench-sparse", graph=rgg_spec(256, seed=7 + i),
                   seed=7 + i, max_time=60.0, pairs="neighbors",
                   trace="counters", allow_disconnected=True)
    built = instantiate(spec)

    def run() -> int:
        built.engine.run()
        return built.engine.events_processed

    return run


WORKLOADS: dict[str, Callable[[int], Callable[[], int]]] = {
    "chaos_counters": _build_chaos_counters,
    "engine_steps": _build_engine_steps,
    "message_flood": _build_message_flood,
    "dining_full": _build_dining_full,
    "dining_obs_off": _build_dining_obs_off,
    "dining_spans": _build_dining_spans,
    "sparse_rgg": _build_sparse_rgg,
}


# -- the harness --------------------------------------------------------------


def run_workload(name: str, budget: float = 1.5,
                 min_runs: int = 2) -> WorkloadResult:
    """Build-and-run ``name`` until ``budget`` timed seconds are spent.

    Construction is excluded from the timed region; at least ``min_runs``
    runs always execute so tiny budgets still measure something.
    """
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench workload {name!r} "
            f"(available: {', '.join(sorted(WORKLOADS))})") from None
    runs = 0
    events = 0
    wall = 0.0
    while runs < min_runs or wall < budget:
        runner = builder(runs)
        t0 = time.perf_counter()
        events += runner()
        wall += time.perf_counter() - t0
        runs += 1
    return WorkloadResult(name=name, runs=runs, events=events,
                          wall_seconds=wall)


def run_bench(names: Sequence[str] | None = None, budget: float = 1.5,
              min_runs: int = 2) -> list[WorkloadResult]:
    """Run the named workloads (default: all) with ``budget`` seconds each."""
    return [run_workload(name, budget=budget, min_runs=min_runs)
            for name in (names or list(WORKLOADS))]


# -- baseline comparison and the JSON artifact --------------------------------


def load_baseline(path: "str | pathlib.Path | None" = None) -> Optional[dict]:
    """The committed baseline numbers.

    With no explicit path, a missing default baseline is a soft ``None``
    (fresh checkouts simply have nothing to compare against).  An
    *explicitly requested* baseline that is missing or malformed is a
    :class:`ConfigurationError` — the caller named a file and deserves a
    one-line actionable failure, not a silent no-comparison run.
    """
    p = pathlib.Path(path) if path is not None else BASELINE_PATH
    if not p.exists():
        if path is not None:
            raise ConfigurationError(
                f"baseline {p} does not exist (pass --baseline PATH to an "
                "existing BENCH_engine.json-shaped file)")
        return None
    try:
        return json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read baseline {p}: {exc}") from exc


def _baseline_eps(baseline: Mapping[str, Any], name: str) -> Optional[float]:
    for row in baseline.get("workloads", ()):
        if row.get("name") == name:
            return row.get("events_per_sec")
    return None


def compare_to_baseline(
    results: Sequence[WorkloadResult],
    baseline: Optional[Mapping[str, Any]],
) -> dict[str, Optional[float]]:
    """Per-workload speedup vs. the baseline (None when not comparable)."""
    out: dict[str, Optional[float]] = {}
    for res in results:
        before = None if baseline is None else _baseline_eps(baseline,
                                                             res.name)
        out[res.name] = (None if not before
                         else round(res.events_per_sec / before, 3))
    return out


def emit_report(
    results: Sequence[WorkloadResult],
    baseline: Optional[Mapping[str, Any]] = None,
    out: "str | pathlib.Path | None" = None,
) -> dict[str, Any]:
    """Build (and optionally write) the ``BENCH_engine.json`` payload."""
    speedups = compare_to_baseline(results, baseline)
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "workloads": [r.to_dict() for r in results],
        "baseline": None if baseline is None else {
            "schema": baseline.get("schema"),
            "workloads": baseline.get("workloads"),
        },
        "speedup_vs_baseline": speedups,
    }
    if out is not None:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    return payload


def check_regressions(
    results: Sequence[WorkloadResult],
    baseline: Optional[Mapping[str, Any]],
    max_regression: float = 3.0,
) -> list[str]:
    """Workloads slower than ``baseline / max_regression``; [] = healthy.

    Tolerant by design: bench hosts (CI runners especially) vary widely,
    so only an order-of-magnitude-ish collapse should fail the build.
    """
    if max_regression <= 0:
        raise ConfigurationError("max_regression must be positive")
    failures = []
    for res in results:
        before = None if baseline is None else _baseline_eps(baseline,
                                                             res.name)
        if not before:
            continue
        floor = before / max_regression
        if res.events_per_sec < floor:
            failures.append(
                f"{res.name}: {res.events_per_sec:.0f} events/sec < "
                f"{floor:.0f} (baseline {before:.0f} / {max_regression:g})")
    return failures


def render_results(results: Sequence[WorkloadResult],
                   speedups: Mapping[str, Optional[float]]) -> str:
    """Human-readable bench table."""
    lines = [f"{'workload':<16} {'runs':>5} {'events':>10} "
             f"{'wall s':>8} {'events/sec':>12} {'vs baseline':>12}"]
    for res in results:
        spd = speedups.get(res.name)
        lines.append(
            f"{res.name:<16} {res.runs:>5} {res.events:>10} "
            f"{res.wall_seconds:>8.3f} {res.events_per_sec:>12.0f} "
            f"{('%.2fx' % spd) if spd else '-':>12}")
    return "\n".join(lines)
