"""Profiling and benchmarking of the simulation substrate.

The paper's claims are asymptotic, so evidence quality scales with how
many seeds × adversaries × topologies a campaign can grind through —
which makes raw engine throughput a first-class concern.  This package
keeps it honest:

* :mod:`repro.perf.bench` — a deterministic microbench harness over
  named workloads (``repro bench`` on the CLI), emitting the
  machine-readable ``BENCH_engine.json`` artifact with before/after
  event-throughput numbers;
* :mod:`repro.perf.profiler` — cProfile helpers backing the
  ``--profile-out`` flag on ``repro run/scenario/sweep/chaos``.

See docs/performance.md for the workflow.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    WORKLOADS,
    WorkloadResult,
    compare_to_baseline,
    emit_report,
    run_bench,
)
from repro.perf.profiler import profile_to, render_profile

__all__ = [
    "BENCH_SCHEMA",
    "WORKLOADS",
    "WorkloadResult",
    "compare_to_baseline",
    "emit_report",
    "profile_to",
    "render_profile",
    "run_bench",
]
