"""cProfile helpers behind the CLI's ``--profile-out`` flag.

Profiling a whole campaign is one context manager::

    from repro.perf import profile_to

    with profile_to("campaign.prof"):
        run_campaign(cfg)

The dump is a standard :mod:`pstats` file — load it with
``python -m pstats campaign.prof``, snakeviz, or
:func:`render_profile` below for a quick cumulative-time table.
"""

from __future__ import annotations

import contextlib
import cProfile
import io
import pathlib
import pstats
from typing import Iterator, Optional


@contextlib.contextmanager
def profile_to(path: "str | pathlib.Path | None") -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block into ``path`` (no-op when ``path`` is None).

    The no-op branch keeps call sites flag-driven: callers wrap their
    command body unconditionally and pass the ``--profile-out`` value
    straight through.
    """
    if path is None:
        yield None
        return
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield prof
    finally:
        prof.disable()
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        prof.dump_stats(str(out))


def render_profile(path: "str | pathlib.Path", limit: int = 20,
                   sort: str = "cumulative") -> str:
    """Top-``limit`` rows of a dumped profile as a text table."""
    buf = io.StringIO()
    stats = pstats.Stats(str(path), stream=buf)
    stats.sort_stats(sort).print_stats(limit)
    return buf.getvalue()
