"""Events/sec-vs-n scaling curves for sparse topologies.

Where :mod:`repro.perf.bench` measures fixed small workloads against a
committed baseline, this module measures how engine throughput *scales*
with system size: one full dining run per (family, n) point under
conflict-graph-local pair selection (``pairs=neighbors``) and the
``counters`` trace sink, timed end to end (construction excluded).

Families are sparse by construction so the per-process conflict degree
stays roughly constant as n grows — the regime the paper's WSN motivation
implies, and the one where local monitoring beats the full n·(n-1)
square:

``rgg``
    Seeded random geometric graph with the radius solved per n for a
    target mean degree (~6), i.e. ``r = sqrt(deg / (pi * (n - 1)))``.
    Low-radius draws may disconnect; scaling runs accept that
    (``allow_disconnected``) since throughput is what is measured.
``tree``
    Binary cluster tree (``tree:n:2``): n-1 edges, maximally sparse.

The JSON artifact (``benchmarks/results/BENCH_scaling.json``) records
events/sec at each n so the scaling trajectory is tracked in-repo next to
``BENCH_engine.json``; ``repro bench --scaling`` regenerates it.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError

SCALING_SCHEMA = "repro.bench.scaling.v1"

#: Default location of the tracked scaling curve.
SCALING_PATH = (pathlib.Path(__file__).resolve().parents[3]
                / "benchmarks" / "results" / "BENCH_scaling.json")

#: System sizes each family is measured at.
DEFAULT_NS = (16, 64, 256, 1000)

#: Target mean conflict degree for the rgg family (kept constant across n
#: so the topology stays sparse as the system grows).
RGG_TARGET_DEGREE = 6.0

#: Virtual horizon per scaling run: long enough for steady-state stepping
#: and heartbeat traffic to dominate, short enough that the n=1000 point
#: stays a few wall seconds.
SCALING_MAX_TIME = 120.0


def rgg_spec(n: int, seed: int = 7,
             target_degree: float = RGG_TARGET_DEGREE) -> str:
    """The rgg graph spec whose expected mean degree is ``target_degree``."""
    if n < 2:
        raise ConfigurationError(f"rgg scaling point needs n >= 2, got {n}")
    radius = math.sqrt(target_degree / (math.pi * (n - 1)))
    return f"rgg:{n}:{radius:.4f}:{seed}"


def tree_spec(n: int) -> str:
    return f"tree:{n}:2"


FAMILIES: dict[str, Callable[[int], str]] = {
    "rgg": rgg_spec,
    "tree": tree_spec,
}


@dataclass(frozen=True)
class ScalingPoint:
    """One timed (family, n) run."""

    family: str
    n: int
    graph: str
    events: int
    wall_seconds: float

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "n": self.n,
            "graph": self.graph,
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
        }


def run_point(family: str, n: int, seed: int = 7,
              max_time: float = SCALING_MAX_TIME) -> ScalingPoint:
    """Build and time one scaling run (construction excluded)."""
    from repro.runtime.builder import instantiate
    from repro.runtime.spec import RunSpec

    try:
        graph_of = FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown scaling family {family!r} "
            f"(available: {', '.join(sorted(FAMILIES))})") from None
    graph = graph_of(n)
    spec = RunSpec(name=f"scaling-{family}-{n}", graph=graph, seed=seed,
                   max_time=max_time, pairs="neighbors", trace="counters",
                   allow_disconnected=True)
    built = instantiate(spec)
    t0 = time.perf_counter()
    built.engine.run()
    wall = time.perf_counter() - t0
    return ScalingPoint(family=family, n=n, graph=graph,
                        events=built.engine.events_processed,
                        wall_seconds=wall)


def run_scaling(families: Sequence[str] | None = None,
                ns: Sequence[int] = DEFAULT_NS,
                seed: int = 7,
                max_time: float = SCALING_MAX_TIME) -> list[ScalingPoint]:
    """The full curve: every (family, n) point, smallest n first."""
    names = list(families) if families else list(FAMILIES)
    return [run_point(family, n, seed=seed, max_time=max_time)
            for family in names for n in sorted(ns)]


def emit_scaling_report(points: Sequence[ScalingPoint],
                        out: "str | pathlib.Path | None" = None,
                        ) -> dict[str, Any]:
    """Build (and optionally write) the ``BENCH_scaling.json`` payload."""
    families: dict[str, list[dict[str, Any]]] = {}
    for point in points:
        families.setdefault(point.family, []).append(point.to_dict())
    payload: dict[str, Any] = {
        "schema": SCALING_SCHEMA,
        "pairs": "neighbors",
        "max_time": SCALING_MAX_TIME,
        "families": families,
    }
    if out is not None:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    return payload


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    """Human-readable scaling table."""
    lines = [f"{'family':<8} {'n':>6} {'graph':<20} {'events':>10} "
             f"{'wall s':>8} {'events/sec':>12}"]
    for p in points:
        lines.append(
            f"{p.family:<8} {p.n:>6} {p.graph:<20} {p.events:>10} "
            f"{p.wall_seconds:>8.3f} {p.events_per_sec:>12.0f}")
    return "\n".join(lines)
