"""Ω extracted from the paper's witness/subject ◇P construction.

The corrigendum's positive direction extracts ◇P from any wait-free
◇WX dining black box (:func:`repro.core.build_full_extraction`).  ◇P is
strictly above Ω in the Chandra–Toueg hierarchy, so composing the
extraction with the classical ◇P→Ω derivation ("elect the smallest
unsuspected process") yields eventual leader election *from dining* —
each process's :class:`~repro.oracles.omega.OmegaElector` reads the
extracted per-process suspicion facade instead of a native module.

:func:`leader_stability_spans` turns the recorded ``"leader"`` trace
rows into per-owner stability spans (who was leader, from when to when),
the evidence :func:`~repro.oracles.properties.check_leader_agreement`
judges: after the last span boundary all correct owners must agree on a
correct leader forever.

For the refuted direction, :func:`build_flawed_omega_extraction` derives
the same electors from the *flawed* single-instance construction of [8]
(:class:`~repro.core.flawed_cm.FlawedCMPair`): because that extraction
wrongfully suspects forever over an adversarial-but-legal deferred box,
the elected leader never stabilizes — the deliberately-failing reference
the lattice and experiment E4 point at.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.core.extraction import ExtractedDetector, build_full_extraction
from repro.oracles.omega import OmegaElector
from repro.oracles.properties import check_leader_agreement, leader_series

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pair import DiningBoxFactory
    from repro.sim.engine import Engine
    from repro.sim.trace import Trace
    from repro.types import ProcessId, Time

__all__ = [
    "build_omega_extraction",
    "build_flawed_omega_extraction",
    "leader_stability_spans",
    "check_leader_agreement",
]


def build_omega_extraction(
    engine: "Engine",
    pids: Sequence["ProcessId"],
    box_factory: "DiningBoxFactory",
) -> dict["ProcessId", OmegaElector]:
    """◇P-from-dining composed with ◇P→Ω: one elector per process.

    Installs the full witness/subject reduction over ``box_factory``
    (paper Algs. 1–2), then stacks an :class:`OmegaElector` on each
    process's extracted suspicion facade.  Once the box's exclusive
    suffix starts and the extracted ◇P converges, every correct
    process's leader estimate stabilizes on the smallest correct pid —
    Ω, obtained from nothing but a wait-free ◇WX dining service.
    """
    detectors, _pairs = build_full_extraction(engine, list(pids), box_factory)
    return _attach_electors(engine, detectors)


def build_flawed_omega_extraction(
    engine: "Engine",
    pids: Sequence["ProcessId"],
    box_factory: "DiningBoxFactory",
    heartbeat_period: int = 4,
) -> dict["ProcessId", OmegaElector]:
    """The same elector stack over the *flawed* [8] extraction.

    One :class:`~repro.core.flawed_cm.FlawedCMPair` per ordered pair
    instead of the witness/subject reduction.  Over a deferred-mistake
    box the flawed extraction keeps wrongfully suspecting, so the
    derived leader estimates keep flapping — run it on the same engine
    and seed as :func:`build_omega_extraction` to watch one elector
    stabilize and the other not.
    """
    from repro.core.flawed_cm import FlawedCMPair

    outputs: dict["ProcessId", dict["ProcessId", object]] = {
        p: {} for p in pids}
    for p in pids:
        for q in pids:
            if p == q:
                continue
            pair = FlawedCMPair(p, q, box_factory,
                                heartbeat_period=heartbeat_period)
            outputs[p][q] = pair.attach(engine)
    detectors = {p: ExtractedDetector(p, mods)
                 for p, mods in outputs.items()}
    return _attach_electors(engine, detectors)


def _attach_electors(engine: "Engine",
                     detectors: Mapping["ProcessId", ExtractedDetector],
                     ) -> dict["ProcessId", OmegaElector]:
    electors: dict["ProcessId", OmegaElector] = {}
    for pid, facade in detectors.items():
        elector = OmegaElector("omega.elect", facade)
        engine.process(pid).add_component(elector)
        electors[pid] = elector
    return electors


def leader_stability_spans(
    trace: "Trace", owner: "ProcessId", end_time: "Time",
) -> list[tuple["ProcessId", float, float]]:
    """One span per leader-estimate interval: ``(leader, start, end)``.

    The final span is closed at ``end_time``; an Ω-satisfying run shows
    every correct owner's last span covering an unbounded suffix with the
    same correct leader, while a flapping extraction shows many short
    spans all the way to the horizon.
    """
    series = leader_series(trace, owner)
    spans: list[tuple["ProcessId", float, float]] = []
    for i, (t, leader) in enumerate(series):
        end = series[i + 1][0] if i + 1 < len(series) else float(end_time)
        spans.append((leader, float(t), float(end)))
    return spans


def final_leader(trace: "Trace", owner: "ProcessId",
                 ) -> Optional["ProcessId"]:
    """The owner's last recorded leader estimate (None if never set)."""
    series = leader_series(trace, owner)
    return series[-1][1] if series else None
