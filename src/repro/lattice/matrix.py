"""The cross-detector telemetry matrix: cells, rows, verdicts, rendering.

One :class:`LatticeCell` per ``(detector, run seed)`` — the detector's
dining-facing telemetry for one seeded chaos scenario.  One
:class:`DetectorRow` per registered detector.  The whole
:class:`LatticeResult` renders three ways:

* ``to_records()`` — ``repro.lattice.v1`` JSONL (one ``cell`` record per
  run plus one ``detector`` aggregate record per row), deterministic and
  byte-identical between serial and parallel execution;
* ``render()`` — the ASCII comparison table plus the dominance grid;
* ``to_svg()`` — the dominance grid as an SVG heat-map
  (:func:`repro.analysis.svg.render_svg_grid`).

The per-cell **◇WX verdict** is the lattice's core judgment.  A cell
passes (``ewx_ok``) iff

1. every exclusion violation was *oracle-justified* (an eating session
   began under suspicion of the other endpoint — the run-level mechanism
   check), **and**
2. the run's violations actually *stop*: no violation extends into the
   final ``quiet_fraction`` of the run.

Condition 2 is what separates Ω from ◇P.  An Ω-driven run keeps
violating exclusion forever — every non-leader pair suspects each other,
so every violation is trivially "justified" — while satisfying the Ω
specification perfectly.  Judged by condition 1 alone it would pass;
the quiet-suffix test exposes that its violations never become finite,
which is exactly the sense in which Ω is too weak for wait-free dining
under ◇WX.  Conversely the flawed [8] extraction fails ◇P accuracy
*and* keeps violating, flagging it as the corrigendum's negative
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.report import Table
from repro.obs.registry import escape_label_value

#: Schema tag stamped on every lattice JSONL record.
LATTICE_SCHEMA = "repro.lattice.v1"

#: Default quiet-suffix fraction: a run is eventually exclusive when no
#: violation reaches into its last quarter.
QUIET_FRACTION = 0.25


def _label_key(name: str, label: str) -> str:
    return name + '{detector="' + escape_label_value(label) + '"}'


@dataclass(frozen=True)
class LatticeCell:
    """One detector's dining-facing telemetry for one seeded run."""

    detector: str
    run_seed: int
    graph: str
    checked: bool
    wait_free: Optional[bool]
    exclusion_violations: Optional[int]
    last_violation_end: Optional[float]
    violations_justified: Optional[bool]
    accuracy_ok: Optional[bool]
    completeness_ok: Optional[bool]
    #: Per-dining-label convergence time (None while wrongful suspicions
    #: of the dining-facing stream are still open at the horizon).
    converged_at: Optional[float]
    wrongful_suspicions: int
    suspicion_churn: int
    messages_sent: Optional[int]
    end_time: float
    #: The lattice ◇WX verdict: justified violations *and* a quiet suffix.
    ewx_ok: bool

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": LATTICE_SCHEMA,
            "kind": "cell",
            "detector": self.detector,
            "run_seed": self.run_seed,
            "graph": self.graph,
            "checked": self.checked,
            "wait_free": self.wait_free,
            "exclusion_violations": self.exclusion_violations,
            "last_violation_end": self.last_violation_end,
            "violations_justified": self.violations_justified,
            "accuracy_ok": self.accuracy_ok,
            "completeness_ok": self.completeness_ok,
            "converged_at": self.converged_at,
            "wrongful_suspicions": self.wrongful_suspicions,
            "suspicion_churn": self.suspicion_churn,
            "messages_sent": self.messages_sent,
            "end_time": self.end_time,
            "ewx_ok": self.ewx_ok,
        }


def cell_from_record(detector: str, label: str, record: Mapping[str, Any],
                     quiet_fraction: float = QUIET_FRACTION) -> LatticeCell:
    """Build one cell from a chaos ``run_record`` (the ``repro.run.v1``
    JSONL shape: flat ``summary``, chaos ``verdict`` block, full
    ``metrics`` snapshot).

    Detector-quality numbers come from the *labeled* probe series for the
    detector's dining-facing label, so Ω's internal ◇P mistakes (labeled
    ``omega.sub``) never launder its own output's quality — and older
    records without labeled series fall back to the unlabeled aggregates.
    """
    summary = record.get("summary") or {}
    verdict = record.get("verdict") or {}
    metrics = record.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}

    checked = bool(summary.get("checked"))
    end_time = float(summary.get("end_time") or 0.0)
    last_end = verdict.get("last_violation_end")
    if last_end is None and summary.get("exclusion_violations"):
        # Pre-lattice stored verdicts lack the field; treat a violating
        # run without quiet-suffix evidence as not-quiet rather than
        # silently passing it.
        last_end = end_time
    justified = summary.get("violations_justified")
    quiet = (last_end is None
             or last_end <= end_time * (1.0 - float(quiet_fraction)))
    ewx_ok = bool(checked and justified and quiet)

    wrongful = counters.get(_label_key("oracle.wrongful_suspicions", label))
    churn = counters.get(_label_key("oracle.suspicion_churn", label))
    converged = gauges.get(_label_key("oracle.converged_at", label))
    if wrongful is None:
        wrongful = summary.get("wrongful_suspicions") or 0
    if churn is None:
        churn = summary.get("suspicion_churn") or 0
    if converged is None and not wrongful:
        # Never wrong at all (e.g. P in a clean run): converged from the
        # start — no labeled gauge exists because no wrongful interval
        # ever opened or closed.
        converged = 0.0

    msgs = summary.get("messages_sent")
    return LatticeCell(
        detector=detector,
        run_seed=int(verdict.get("run_seed", summary.get("seed", 0))),
        graph=str(verdict.get("graph", "")),
        checked=checked,
        wait_free=summary.get("wait_free"),
        exclusion_violations=summary.get("exclusion_violations"),
        last_violation_end=(None if last_end is None else float(last_end)),
        violations_justified=justified,
        accuracy_ok=summary.get("oracle_accuracy_ok"),
        completeness_ok=summary.get("oracle_completeness_ok"),
        converged_at=(None if converged is None else float(converged)),
        wrongful_suspicions=int(wrongful),
        suspicion_churn=int(churn),
        messages_sent=(None if msgs is None else int(msgs)),
        end_time=end_time,
        ewx_ok=ewx_ok,
    )


@dataclass
class DetectorRow:
    """One detector's column of the lattice: all cells plus aggregates."""

    name: str
    label: str
    summary: str
    cells: list[LatticeCell] = field(default_factory=list)

    @property
    def ewx_pass_seeds(self) -> frozenset:
        return frozenset(c.run_seed for c in self.cells if c.ewx_ok)

    @property
    def ewx_failures(self) -> list[LatticeCell]:
        return [c for c in self.cells if not c.ewx_ok]

    @property
    def ewx_ok(self) -> bool:
        """◇WX on *every* seed — the wait-free-dining sufficiency verdict."""
        return bool(self.cells) and all(c.ewx_ok for c in self.cells)

    @property
    def accuracy_ok(self) -> bool:
        """The claimed accuracy property held on every checked seed."""
        return all(c.accuracy_ok is not False for c in self.cells)

    @property
    def wrongful_total(self) -> int:
        return sum(c.wrongful_suspicions for c in self.cells)

    @property
    def churn_total(self) -> int:
        return sum(c.suspicion_churn for c in self.cells)

    @property
    def messages_total(self) -> int:
        return sum(c.messages_sent or 0 for c in self.cells)

    @property
    def violations_total(self) -> int:
        return sum(c.exclusion_violations or 0 for c in self.cells)

    def convergence_times(self) -> list[float]:
        return [c.converged_at for c in self.cells
                if c.converged_at is not None]

    def mean_convergence(self) -> Optional[float]:
        """Mean dining-facing convergence time over the seeds that
        converged; None when no seed did (e.g. Ω, wrong forever)."""
        times = self.convergence_times()
        if not times or len(times) != len(self.cells):
            return None
        return sum(times) / len(times)

    def to_record(self) -> dict[str, Any]:
        mean = self.mean_convergence()
        return {
            "schema": LATTICE_SCHEMA,
            "kind": "detector",
            "detector": self.name,
            "label": self.label,
            "runs": len(self.cells),
            "ewx_passes": sum(c.ewx_ok for c in self.cells),
            "ewx_ok": self.ewx_ok,
            "accuracy_ok": self.accuracy_ok,
            "mean_convergence": (None if mean is None else round(mean, 6)),
            "wrongful_suspicions": self.wrongful_total,
            "suspicion_churn": self.churn_total,
            "messages_sent": self.messages_total,
            "exclusion_violations": self.violations_total,
        }


#: Dominance-grid symbols: row vs column on per-seed ◇WX pass sets.
EQ, GE, LE, INCOMPARABLE = "=", ">=", "<=", "||"


def dominance_symbol(a: frozenset, b: frozenset) -> str:
    """Partial-order comparison of two per-seed ◇WX pass sets."""
    if a == b:
        return EQ
    if a >= b:
        return GE
    if a <= b:
        return LE
    return INCOMPARABLE


@dataclass
class LatticeResult:
    """The full comparison: every registered detector over identical
    seeded chaos scenarios."""

    rows: list[DetectorRow]
    graphs: Sequence[str]
    seeds: int
    seed: int
    quiet_fraction: float = QUIET_FRACTION

    def row(self, detector: str) -> DetectorRow:
        for r in self.rows:
            if r.name == detector:
                return r
        raise KeyError(detector)

    def to_records(self) -> list[dict[str, Any]]:
        """The ``repro.lattice.v1`` JSONL records: all cells in (detector,
        run) order, then the per-detector aggregates."""
        records = [c.to_record() for r in self.rows for c in r.cells]
        records.extend(r.to_record() for r in self.rows)
        return records

    def dominance(self) -> dict[tuple[str, str], str]:
        """Pairwise partial order on per-seed ◇WX pass sets: ``(a, b) ->
        symbol`` meaning "a's pass set {=, >=, <=, ||} b's"."""
        return {
            (a.name, b.name): dominance_symbol(a.ewx_pass_seeds,
                                               b.ewx_pass_seeds)
            for a in self.rows for b in self.rows
        }

    def render_dominance(self) -> str:
        """The dominance grid as an aligned text matrix."""
        grid = self.dominance()
        table = Table(["vs"] + [r.name for r in self.rows],
                      title="◇WX dominance (row vs column, per-seed pass "
                            "sets: = same, >= dominates, <= dominated, "
                            "|| incomparable)")
        for a in self.rows:
            table.add_row([a.name]
                          + [grid[(a.name, b.name)] for b in self.rows])
        return table.render()

    def render(self) -> str:
        """The comparison table plus the dominance grid."""
        table = Table(
            ["detector", "ewx", "conv", "wrongful", "churn", "viol",
             "msgs", "accuracy"],
            title=(f"detector lattice: {self.seeds} seeded runs over "
                   f"{', '.join(self.graphs)} (base seed {self.seed}; "
                   f"◇WX = justified violations + quiet last "
                   f"{int(self.quiet_fraction * 100)}%)"),
        )
        for r in self.rows:
            mean = r.mean_convergence()
            table.add_row([
                r.name,
                f"{sum(c.ewx_ok for c in r.cells)}/{len(r.cells)}",
                "never" if mean is None else f"{mean:.1f}",
                r.wrongful_total,
                r.churn_total,
                r.violations_total,
                r.messages_total,
                "ok" if r.accuracy_ok else "VIOLATED",
            ])
        return table.render() + "\n\n" + self.render_dominance()

    def to_svg(self) -> str:
        """The dominance grid as an SVG heat-map."""
        from repro.analysis.svg import render_svg_grid

        grid = self.dominance()
        names = [r.name for r in self.rows]
        passes = {r.name: f"{sum(c.ewx_ok for c in r.cells)}/{len(r.cells)}"
                  for r in self.rows}
        return render_svg_grid(
            names, [f"{n} ({passes[n]})" for n in names],
            [[grid[(a, b)] for b in names] for a in names],
            title=(f"◇WX dominance over {', '.join(self.graphs)}, "
                   f"{self.seeds} seeds"),
            legend={EQ: "same pass set", GE: "dominates",
                    LE: "dominated", INCOMPARABLE: "incomparable"},
        )
