"""The detector lattice: cross-detector comparison under identical chaos.

The corrigendum's result places detectors in a *lattice* relative to
wait-free dining under eventual weak exclusion: ◇P is sufficient (and,
by the extraction, necessary — it is the weakest), P/T/S sit above it,
Ω and the flawed [8] extraction sit below.  This package measures that
ordering empirically:

* :func:`~repro.lattice.compare.compare` runs every registered detector
  (:data:`repro.oracles.registry.REGISTRY`) through *identical* seeded
  chaos campaigns and assembles a
  :class:`~repro.lattice.matrix.LatticeResult` — convergence time,
  wrongful-suspicion churn, message cost, and a per-seed ◇WX verdict per
  detector, rendered as ``repro.lattice.v1`` JSONL, an ASCII table, and
  an SVG dominance grid.  CLI: ``repro lattice``.
* :mod:`repro.lattice.omega_extraction` composes the paper's
  ◇P-from-dining reduction with the classical ◇P→Ω derivation, plus the
  flawed variant whose leader never stabilizes.
"""

from repro.lattice.compare import compare, lattice_config
from repro.lattice.matrix import (
    LATTICE_SCHEMA,
    QUIET_FRACTION,
    DetectorRow,
    LatticeCell,
    LatticeResult,
    cell_from_record,
    dominance_symbol,
)
from repro.lattice.omega_extraction import (
    build_flawed_omega_extraction,
    build_omega_extraction,
    final_leader,
    leader_stability_spans,
)

__all__ = [
    "LATTICE_SCHEMA",
    "QUIET_FRACTION",
    "DetectorRow",
    "LatticeCell",
    "LatticeResult",
    "build_flawed_omega_extraction",
    "build_omega_extraction",
    "cell_from_record",
    "compare",
    "dominance_symbol",
    "final_leader",
    "lattice_config",
    "leader_stability_spans",
]
