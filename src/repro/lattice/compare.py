"""The comparison campaign runner: every detector, identical scenarios.

:func:`compare` is the programmatic face of ``repro lattice``.  For each
registered detector (or an explicit subset) it runs one seeded chaos
campaign — *the same* campaign: the detector knob consumes no randomness
in :func:`repro.chaos.build_run`, so every detector faces bit-identical
topologies, crash schedules, link-fault draws, and workloads, seed for
seed.  What differs between rows is exactly the oracle, which is what
makes the per-seed ◇WX pass sets comparable as a partial order.

Determinism: each run is a pure function of its spec, campaigns fan out
over workers with per-seed bit-identical results, and the matrix is
assembled in fixed (detector, seed) order — so ``workers=4`` output is
byte-identical to serial, and a ``store``/``resume`` pair checkpoints
every (detector, seed) cell under its content address
(:func:`repro.runtime.store.spec_hash` covers the detector fields).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.chaos import ChaosConfig, run_campaign
from repro.errors import ConfigurationError
from repro.lattice.matrix import (
    QUIET_FRACTION,
    DetectorRow,
    LatticeResult,
    cell_from_record,
)
from repro.oracles.registry import REGISTRY, resolve_detector

if False:  # pragma: no cover - typing only
    from repro.runtime.store import ResultStore


def lattice_config(detector: str, *, graphs: Sequence[str], seeds: int,
                   seed: int, max_time: float, client: str,
                   drop_max: float, pairs: str,
                   detector_params: Optional[Mapping[str, Any]] = None,
                   max_faulty: int = 1) -> ChaosConfig:
    """The chaos config one lattice row runs under.

    Deliberately tamer than default chaos (no partitions, no adversary,
    mild loss): the lattice isolates *detector* differences, so the
    environment stays identical and benign enough that ◇P demonstrably
    converges — any remaining ◇WX failure is then the detector's own
    doing.
    """
    return ChaosConfig(
        campaigns=int(seeds),
        seed=int(seed),
        graphs=tuple(graphs),
        clients=(client,),
        drop_max=float(drop_max),
        duplicate_max=0.0,
        partition_prob=0.0,
        slow_prob=0.0,
        max_faulty=int(max_faulty),
        max_time=float(max_time),
        pairs=pairs,
        detector=detector,
        detector_params=dict(detector_params or {}),
    )


def compare(
    graphs: Sequence[str] = ("ring:6",),
    seeds: int = 4,
    *,
    seed: int = 0,
    detectors: Optional[Sequence[str]] = None,
    detector_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    workers: int = 1,
    store: "ResultStore | None" = None,
    resume: bool = False,
    max_time: float = 600.0,
    client: str = "periodic",
    drop_max: float = 0.1,
    pairs: str = "all",
    max_faulty: int = 1,
    quiet_fraction: float = QUIET_FRACTION,
    on_result: Optional[Callable[[str, int, Any, bool], None]] = None,
) -> LatticeResult:
    """Run every detector through identical seeded chaos campaigns and
    assemble the cross-detector telemetry matrix.

    Parameters mirror ``repro lattice``; ``detectors`` defaults to every
    registered name in registry order, ``detector_params`` optionally
    maps a detector name to its parameter overrides, and
    ``on_result(detector, index, verdict, cached)`` streams per-run
    completions (for live progress).

    Returns a :class:`~repro.lattice.matrix.LatticeResult`; see its
    module docstring for the per-cell ◇WX verdict.
    """
    names = list(detectors) if detectors is not None else list(REGISTRY)
    if not names:
        raise ConfigurationError("no detectors selected")
    entries = {name: resolve_detector(name) for name in names}
    params = dict(detector_params or {})
    unknown = set(params) - set(names)
    if unknown:
        raise ConfigurationError(
            f"detector_params for unselected detector(s): {sorted(unknown)}")
    if seeds <= 0:
        raise ConfigurationError(f"seeds must be positive, got {seeds}")

    rows: list[DetectorRow] = []
    for name in names:
        entry = entries[name]
        cfg = lattice_config(
            name, graphs=graphs, seeds=seeds, seed=seed, max_time=max_time,
            client=client, drop_max=drop_max, pairs=pairs,
            detector_params=params.get(name), max_faulty=max_faulty)
        hook = (None if on_result is None
                else lambda i, v, cached, _n=name: on_result(_n, i, v, cached))
        campaign = run_campaign(cfg, workers=workers, store=store,
                                resume=resume, on_result=hook)
        row = DetectorRow(name=name, label=entry.label,
                          summary=entry.summary)
        for verdict in campaign.verdicts:
            row.cells.append(cell_from_record(
                name, entry.label, verdict.run_record(),
                quiet_fraction=quiet_fraction))
        rows.append(row)
    return LatticeResult(rows=rows, graphs=list(graphs), seeds=int(seeds),
                        seed=int(seed), quiet_fraction=float(quiet_fraction))
