"""◇S — the eventually strong detector, and why it matters here.

◇S (Chandra–Toueg) satisfies strong completeness and **eventual weak
accuracy**: *some* correct process is eventually never suspected by any
correct process.  ◇S is the weakest detector for consensus with a correct
majority; ◇P ⪰ ◇S, which is why the paper's extracted oracle can drive
Chandra–Toueg consensus (experiment E8).

This substrate module makes the gap between ◇P and ◇S observable: it
eventually and permanently trusts one designated correct *anchor*, while
every other peer keeps being suspected intermittently **forever** —
behaviour a ◇P module is not allowed to exhibit, yet consensus still
terminates on it (see ``tests/oracles/test_eventually_strong.py``).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import action
from repro.sim.faults import CrashSchedule
from repro.types import ProcessId, Time


class EventuallyStrongDetector(OracleModule):
    """Fault-schedule ◇S: one anchor converges; everyone else flaps forever.

    ``anchor_trust_time`` is when suspicion of the (correct) anchor stops;
    non-anchor live peers are wrongly suspected with probability
    ``flap_prob`` on every refresh, with no convergence — the minimum ◇S
    permits.  Crashed peers are permanently suspected after ``latency``.
    """

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        schedule: CrashSchedule,
        anchor: ProcessId,
        anchor_trust_time: Time = 100.0,
        flap_prob: float = 0.2,
        latency: Time = 5.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, monitored, initially_suspect=True)
        if schedule.is_faulty(anchor):
            raise ConfigurationError(f"anchor {anchor!r} must be correct")
        self.schedule = schedule
        self.anchor = anchor
        self.anchor_trust_time = float(anchor_trust_time)
        self.flap_prob = float(flap_prob)
        self.latency = float(latency)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        now = self.process.env_now()  # substrate privilege
        for q in self.monitored:
            ct = self.schedule.crash_time(q)
            if ct is not None and now >= ct + self.latency:
                self.set_suspected(q, True)
            elif q == self.anchor:
                self.set_suspected(q, now < self.anchor_trust_time)
            else:
                # Permanent flapping: the accuracy ◇S does NOT promise.
                self.set_suspected(q, bool(self._rng.random() < self.flap_prob))
