"""The trusting detector T — a simulated substrate.

T (Delporte-Gallet et al. 2005; paper Section 9) satisfies:

1. **Strong completeness** — every crashed process is eventually and
   permanently suspected by all correct processes;
2. **Trusting accuracy** —
   (a) every correct process is eventually and permanently trusted, and
   (b) at all times, if T stops trusting a process ``q``, then ``q`` has
   crashed.

Property 2(b) requires certainty no amount of ◇P-level partial synchrony
provides, so this module is a fault-schedule substrate: it begins by
suspecting everyone, grants trust to ``q`` after a per-peer registration
delay *only if q is still live*, and revokes trust only on an actual crash
(after the detection latency).  A process that crashes before being trusted
is simply never trusted — permitted by the specification.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import action
from repro.sim.faults import CrashSchedule
from repro.types import ProcessId, Time


class TrustingDetector(OracleModule):
    """Fault-schedule-informed T.

    ``registration_delay`` may be a single float or a per-peer mapping;
    trust in a live ``q`` is granted once the clock passes it.
    """

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        schedule: CrashSchedule,
        registration_delay: float | Mapping[ProcessId, float] = 10.0,
        latency: Time = 5.0,
    ) -> None:
        super().__init__(name, monitored, initially_suspect=True)
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.schedule = schedule
        self.latency = float(latency)
        if isinstance(registration_delay, Mapping):
            self._reg = {q: float(registration_delay.get(q, 10.0))
                         for q in self.monitored}
        else:
            self._reg = {q: float(registration_delay) for q in self.monitored}
        self._ever_trusted: set[ProcessId] = set()

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        now = self.process.env_now()  # substrate privilege
        for q in self.monitored:
            ct = self.schedule.crash_time(q)
            if q in self._ever_trusted:
                # Trust already granted: revoke only on a real crash.
                if ct is not None and now >= ct + self.latency:
                    self.set_suspected(q, True)
            else:
                # Not yet trusted: grant only while q is verifiably live.
                if (ct is None or now < ct) and now >= self._reg[q]:
                    self._ever_trusted.add(q)
                    self.set_suspected(q, False)

    def has_trusted(self, q: ProcessId) -> bool:
        """Has this module ever trusted ``q``? (diagnostic aid)."""
        return q in self._ever_trusted
