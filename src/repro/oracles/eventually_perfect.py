"""◇P implemented honestly from partial synchrony.

The classic Chandra–Toueg construction: every process periodically
broadcasts heartbeats; each module times out on missing heartbeats using a
per-peer adaptive timeout that grows whenever a suspicion turns out to be a
mistake (a heartbeat from a suspected peer arrives).

Because the paper's processes have no local clocks, timeouts are measured
in the module's *own step count* — a standard local-clock substitute.  In a
:class:`~repro.sim.network.PartialSynchronyDelays` network, after GST both
message delays and relative step rates are bounded, so each timeout
eventually exceeds the worst-case heartbeat gap and mistakes stop:

* **Strong completeness** — a crashed peer stops sending heartbeats, so its
  timeout eventually fires and is never cancelled.
* **Eventual strong accuracy** — every mistake doubles the peer's timeout,
  so only finitely many mistakes are possible post-GST.

In a fully asynchronous network this module still satisfies completeness
but may suspect correct peers forever — exactly the impossibility the
paper's reduction circumvents by *extracting* ◇P from dining instead.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import action, receive
from repro.types import Message, ProcessId


class EventuallyPerfectDetector(OracleModule):
    """Heartbeat/adaptive-timeout ◇P module.

    Parameters
    ----------
    heartbeat_period:
        Broadcast a heartbeat every this many own steps.
    initial_timeout:
        Initial per-peer timeout, in own steps since the last heartbeat.
    backoff:
        Multiplicative timeout increase applied on each mistake.
    """

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        heartbeat_period: int = 4,
        initial_timeout: int = 24,
        backoff: float = 2.0,
    ) -> None:
        super().__init__(name, monitored, initially_suspect=False)
        if heartbeat_period < 1 or initial_timeout < 1:
            raise ConfigurationError("periods must be >= 1")
        if backoff <= 1.0:
            raise ConfigurationError("backoff must exceed 1.0")
        self.heartbeat_period = int(heartbeat_period)
        self.backoff = float(backoff)
        self.ticks = 0
        self._timeout: dict[ProcessId, float] = {
            q: float(initial_timeout) for q in self.monitored
        }
        self._last_hb: dict[ProcessId, int] = {q: 0 for q in self.monitored}
        self.mistakes = 0

    # Always enabled: fires once per round-robin rotation, acting as the
    # module's local clock tick.
    @action(guard=lambda self: True)
    def tick(self) -> None:
        self.ticks += 1
        if self.ticks % self.heartbeat_period == 0:
            for q in self.monitored:
                self.send(q, self.name, "hb")
        for q in self.monitored:
            if not self.suspected(q) and (
                self.ticks - self._last_hb[q] > self._timeout[q]
            ):
                self.set_suspected(q, True)

    @receive("hb")
    def on_heartbeat(self, msg: Message) -> None:
        q = msg.sender
        if q not in self._last_hb:
            return  # heartbeat from an unmonitored process: ignore
        self._last_hb[q] = self.ticks
        if self.suspected(q):
            # Mistake detected: trust again and back off the timeout.
            self.mistakes += 1
            self._timeout[q] *= self.backoff
            self.set_suspected(q, False)

    def timeout_for(self, q: ProcessId) -> float:
        """Current adaptive timeout for peer ``q`` (test/diagnostic aid)."""
        return self._timeout[q]
