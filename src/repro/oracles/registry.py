"""The detector registry: every oracle as a named, spec-addressable citizen.

Historically each detector class had its own constructor wiring scattered
through ``runtime/builder.py`` and the experiment harnesses.  This module
unifies them behind one surface:

* :class:`DetectorSpec` — a plain-data ``(name, params, seed)`` triple that
  fully describes which detector a run uses and how it is parameterized.
  It rides on :class:`~repro.runtime.spec.RunSpec` (the ``detector`` /
  ``detector_params`` fields), serializes to JSON, and participates in the
  content-addressed :func:`~repro.runtime.store.spec_hash`.
* :data:`REGISTRY` — ``name -> DetectorEntry``: per-detector defaults, the
  trace label its ``"suspect"`` rows carry, the property battery the class
  promises (:class:`~repro.oracles.properties.DetectorAssumptions`), and an
  ``install`` hook that attaches the per-process modules to an engine.
  Unknown names fail with an error enumerating every registered detector
  with an example — the same idiom as ``GRAPH_KINDS``.

Registered detectors (the comparison lattice ``repro lattice`` runs):

======================  =====================================================
``eventually_perfect``  ◇P from partial synchrony (heartbeats + adaptive
                        timeouts) — the default, bit-identical to the
                        historical ``oracle="hb"`` wiring.
``perfect``             P substrate (crash schedule + fixed latency).
``trusting``            T substrate (trust granted late, revoked only on
                        real crashes).
``strong``              S substrate (never-suspected anchor + finite noise).
``eventually_strong``   ◇S substrate (one converging anchor, everyone else
                        flaps forever — the minimum ◇S permits).
``omega``               Ω: leader election over an internal ◇P, exposed
                        through the suspect-list API (suspect every
                        non-leader).  Satisfies Ω, yet visibly *weaker*
                        than ◇P for wait-free dining.
``flawed_cm``           The Guerraoui-style extraction of [8] the
                        corrigendum refutes: one dining instance per
                        ordered pair over an adversarial-but-legal deferred
                        box.  Deliberately fails ◇P accuracy — the
                        lattice's negative reference point.
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule, attach_detectors
from repro.oracles.eventually_perfect import EventuallyPerfectDetector
from repro.oracles.eventually_strong import EventuallyStrongDetector
from repro.oracles.omega import OmegaDetector, OmegaElector
from repro.oracles.perfect import PerfectDetector
from repro.oracles.properties import DetectorAssumptions
from repro.oracles.strong import StrongDetector, default_anchor
from repro.oracles.trusting import TrustingDetector
from repro.sim.engine import Engine
from repro.sim.faults import CrashSchedule
from repro.types import ProcessId

#: The registry name of the historical default oracle (``oracle="hb"``).
DEFAULT_DETECTOR = "eventually_perfect"

#: Trace label of the dining-facing detector in every declarative run.
#: The golden traces pin it, so native modules keep the historical name.
BOX_LABEL = "boxfd"


@dataclass(frozen=True)
class DetectorSpec:
    """Which detector a run uses: ``(name, params, seed)``.

    ``params`` overrides the registry entry's defaults (unknown keys are a
    :class:`~repro.errors.ConfigurationError` at construction, naming the
    accepted ones).  ``seed`` feeds the substrate noise generators (S/◇S
    wrongful-suspicion draws) so detector randomness replays with the run.
    """

    name: str = DEFAULT_DETECTOR
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        entry = resolve_detector(self.name)
        object.__setattr__(self, "params", dict(self.params))
        unknown = set(self.params) - set(entry.defaults)
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for detector "
                f"{self.name!r}; accepted: {sorted(entry.defaults)} "
                f"(defaults {entry.defaults})")

    @property
    def entry(self) -> "DetectorEntry":
        return resolve_detector(self.name)

    def merged_params(self) -> dict[str, Any]:
        """Entry defaults overlaid with this spec's overrides."""
        merged = dict(self.entry.defaults)
        merged.update(self.params)
        return merged

    @classmethod
    def from_legacy_oracle(cls, oracle: str, *, heartbeat_period: int = 4,
                           initial_timeout: int = 10,
                           seed: int = 0) -> "DetectorSpec":
        """Map the deprecated ``oracle="hb" | "perfect"`` knob onto the
        registry (``hb`` keeps the historical heartbeat parameters so the
        golden traces stay bit-identical)."""
        if oracle == "hb":
            return cls(DEFAULT_DETECTOR,
                       {"heartbeat_period": int(heartbeat_period),
                        "initial_timeout": int(initial_timeout)},
                       seed=seed)
        if oracle == "perfect":
            return cls("perfect", seed=seed)
        raise ConfigurationError(
            f"unknown oracle kind {oracle!r} (use hb | perfect, or the "
            f"detector registry: {detector_kind_help()})")


@dataclass
class InstallContext:
    """Everything an ``install`` hook needs beyond its parameters."""

    engine: Engine
    pids: list[ProcessId]
    schedule: CrashSchedule
    #: Conflict-graph-local monitoring restriction (``None`` = all-to-all).
    peers_of: Optional[Mapping[ProcessId, Sequence[ProcessId]]]
    seed: int

    def peers(self, pid: ProcessId) -> list[ProcessId]:
        if self.peers_of is None:
            return [q for q in self.pids if q != pid]
        return list(self.peers_of.get(pid, ()))

    def rng_for(self, pid: ProcessId, salt: int = 0) -> np.random.Generator:
        """Deterministic per-owner noise stream: a function of the spec
        seed and the owner's sorted index only, so substrate randomness is
        independent of construction order and worker count."""
        index = sorted(self.pids).index(pid)
        return np.random.default_rng(
            np.random.SeedSequence(entropy=abs(int(self.seed)),
                                   spawn_key=(index, salt)))


@dataclass(frozen=True)
class DetectorEntry:
    """One registered detector: docs, defaults, label, battery, installer."""

    name: str
    summary: str
    example: str
    #: The ``detector=`` label its dining-facing ``"suspect"`` rows carry.
    label: str
    defaults: Mapping[str, Any]
    #: The completeness/accuracy battery this class *claims* — what
    #: :func:`~repro.oracles.properties.check_detector_properties` judges
    #: the run against (``flawed_cm`` claims ◇P's and fails it).
    assumptions: DetectorAssumptions
    install: Callable[[InstallContext, Mapping[str, Any]],
                      "dict[ProcessId, Any]"]


# -- install hooks ------------------------------------------------------------


def _install_eventually_perfect(ctx: InstallContext,
                                params: Mapping[str, Any]):
    return attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: EventuallyPerfectDetector(
            BOX_LABEL, peers,
            heartbeat_period=int(params["heartbeat_period"]),
            initial_timeout=int(params["initial_timeout"]),
            backoff=float(params["backoff"])),
        peers_of=ctx.peers_of,
    )


def _install_perfect(ctx: InstallContext, params: Mapping[str, Any]):
    return attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: PerfectDetector(
            BOX_LABEL, peers, ctx.schedule,
            latency=float(params["latency"])),
        peers_of=ctx.peers_of,
    )


def _install_trusting(ctx: InstallContext, params: Mapping[str, Any]):
    return attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: TrustingDetector(
            BOX_LABEL, peers, ctx.schedule,
            registration_delay=float(params["registration_delay"]),
            latency=float(params["latency"])),
        peers_of=ctx.peers_of,
    )


def _anchor_for(ctx: InstallContext, params: Mapping[str, Any]) -> ProcessId:
    anchor = params.get("anchor")
    if anchor is None:
        return default_anchor(ctx.pids, ctx.schedule)
    if anchor not in ctx.pids:
        raise ConfigurationError(
            f"anchor {anchor!r} is not a process of this run "
            f"(processes: {sorted(ctx.pids)})")
    return anchor


def _install_strong(ctx: InstallContext, params: Mapping[str, Any]):
    anchor = _anchor_for(ctx, params)
    return attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: StrongDetector(
            BOX_LABEL, peers, ctx.schedule, anchor=anchor,
            latency=float(params["latency"]),
            noise_until=float(params["noise_until"]),
            noise_prob=float(params["noise_prob"]),
            rng=ctx.rng_for(owner)),
        peers_of=ctx.peers_of,
    )


def _install_eventually_strong(ctx: InstallContext,
                               params: Mapping[str, Any]):
    anchor = _anchor_for(ctx, params)
    return attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: EventuallyStrongDetector(
            BOX_LABEL, peers, ctx.schedule, anchor=anchor,
            anchor_trust_time=float(params["anchor_trust_time"]),
            flap_prob=float(params["flap_prob"]),
            latency=float(params["latency"]),
            rng=ctx.rng_for(owner)),
        peers_of=ctx.peers_of,
    )


def _install_omega(ctx: InstallContext, params: Mapping[str, Any]):
    # Ω stacks three components per process: an internal ◇P (own trace
    # label, so its mistakes don't count against the dining-facing
    # output), an OmegaElector deriving the leader estimate, and an
    # OmegaDetector exposing "suspect every non-leader" through the
    # standard oracle API.
    inner = attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: EventuallyPerfectDetector(
            "omega.sub", peers,
            heartbeat_period=int(params["heartbeat_period"]),
            initial_timeout=int(params["initial_timeout"])),
        peers_of=ctx.peers_of,
    )
    modules: dict[ProcessId, OracleModule] = {}
    for pid in ctx.pids:
        elector = OmegaElector("omega.elect", inner[pid])
        ctx.engine.process(pid).add_component(elector)
        facade = OmegaDetector("omega", ctx.peers(pid), elector)
        ctx.engine.process(pid).add_component(facade)
        modules[pid] = facade
    return modules


def _install_flawed_cm(ctx: InstallContext, params: Mapping[str, Any]):
    # Local imports: repro.core / repro.dining sit above the oracle layer.
    from repro.core.extraction import ExtractedDetector
    from repro.core.flawed_cm import FlawedCMPair
    from repro.dining.deferred import DeferredExclusionDining
    from repro.dining.wf_ewx import WaitFreeEWXDining

    substrate = attach_detectors(
        ctx.engine, ctx.pids,
        lambda owner, peers: EventuallyPerfectDetector(
            "flawed.sub", peers, heartbeat_period=4, initial_timeout=10),
        peers_of=ctx.peers_of,
    )

    def provider(pid: ProcessId):
        module = substrate[pid]
        return lambda q: module.suspected(q)

    box = str(params["box"])
    kind, _, arg = box.partition(":")
    if kind == "deferred":
        horizon = float(arg) if arg else 150.0
        factory = lambda iid, g: DeferredExclusionDining(  # noqa: E731
            iid, g, provider, mistake_horizon=horizon)
    elif kind == "wf" and not arg:
        factory = lambda iid, g: WaitFreeEWXDining(iid, g, provider)  # noqa: E731
    else:
        raise ConfigurationError(
            f"unknown flawed_cm box {box!r} (use 'deferred[:horizon]' for "
            "the corrigendum's adversarial-but-legal box, or 'wf' for the "
            "well-behaved baseline)")

    heartbeat = int(params["heartbeat_period"])
    outputs: dict[ProcessId, dict[ProcessId, Any]] = {p: {} for p in ctx.pids}
    for p in ctx.pids:
        for q in ctx.peers(p):
            pair = FlawedCMPair(p, q, factory, heartbeat_period=heartbeat)
            outputs[p][q] = pair.attach(ctx.engine)
    return {p: ExtractedDetector(p, mods) for p, mods in outputs.items()}


# -- the registry -------------------------------------------------------------

REGISTRY: dict[str, DetectorEntry] = {}


def _register(entry: DetectorEntry) -> None:
    REGISTRY[entry.name] = entry


_register(DetectorEntry(
    name="eventually_perfect",
    summary="◇P from partial synchrony (heartbeats + adaptive timeouts)",
    example='detector="eventually_perfect", '
            'detector_params={"initial_timeout": 20}',
    label=BOX_LABEL,
    # NB: the runtime's historical default timeout is 10 (what
    # build_system always passed), not the class default of 24 — the
    # golden traces pin this.
    defaults={"heartbeat_period": 4, "initial_timeout": 10, "backoff": 2.0},
    assumptions=DetectorAssumptions(accuracy="eventual_strong",
                                    completeness="strong", label=BOX_LABEL),
    install=_install_eventually_perfect,
))

_register(DetectorEntry(
    name="perfect",
    summary="P substrate (crash schedule + fixed detection latency)",
    example='detector="perfect", detector_params={"latency": 5.0}',
    label=BOX_LABEL,
    defaults={"latency": 5.0},
    assumptions=DetectorAssumptions(accuracy="perpetual_strong",
                                    completeness="strong", label=BOX_LABEL),
    install=_install_perfect,
))

_register(DetectorEntry(
    name="trusting",
    summary="T substrate (trust granted late, revoked only on real crashes)",
    example='detector="trusting", '
            'detector_params={"registration_delay": 10.0}',
    label=BOX_LABEL,
    defaults={"registration_delay": 10.0, "latency": 5.0},
    assumptions=DetectorAssumptions(accuracy="trusting",
                                    completeness="strong", label=BOX_LABEL),
    install=_install_trusting,
))

_register(DetectorEntry(
    name="strong",
    summary="S substrate (never-suspected anchor + finite suspicion noise)",
    example='detector="strong", detector_params={"noise_until": 60.0}',
    label=BOX_LABEL,
    defaults={"latency": 5.0, "noise_until": 60.0, "noise_prob": 0.05,
              "anchor": None},
    assumptions=DetectorAssumptions(accuracy="perpetual_weak",
                                    completeness="strong", label=BOX_LABEL),
    install=_install_strong,
))

_register(DetectorEntry(
    name="eventually_strong",
    summary="◇S substrate (one converging anchor; everyone else flaps "
            "forever)",
    example='detector="eventually_strong", '
            'detector_params={"flap_prob": 0.2}',
    label=BOX_LABEL,
    defaults={"anchor_trust_time": 100.0, "flap_prob": 0.2, "latency": 5.0,
              "anchor": None},
    assumptions=DetectorAssumptions(accuracy="eventual_weak",
                                    completeness="strong", label=BOX_LABEL),
    install=_install_eventually_strong,
))

_register(DetectorEntry(
    name="omega",
    summary="Ω over an internal ◇P: suspect exactly the non-leaders",
    example='detector="omega"',
    label="omega",
    defaults={"heartbeat_period": 4, "initial_timeout": 10},
    assumptions=DetectorAssumptions(accuracy="leader_agreement",
                                    completeness="strong", label="omega"),
    install=_install_omega,
))

_register(DetectorEntry(
    name="flawed_cm",
    summary="the [8] extraction the corrigendum refutes (one CM instance "
            "per pair over a deferred box)",
    example='detector="flawed_cm", detector_params={"box": "deferred:150"}',
    label="flawed",
    defaults={"box": "deferred:150", "heartbeat_period": 4},
    # It *claims* ◇P's battery — and, over the deferred box, fails the
    # accuracy half: that failure is the corrigendum's Section 3 point.
    assumptions=DetectorAssumptions(accuracy="eventual_strong",
                                    completeness="strong", label="flawed"),
    install=_install_flawed_cm,
))


def detector_kind_help() -> str:
    """One line per registered detector, for error messages and ``--help``."""
    return "; ".join(f"{name} (e.g. {entry.example})"
                     for name, entry in REGISTRY.items())


def resolve_detector(name: str) -> DetectorEntry:
    """Look a detector up by name; unknown names enumerate the registry."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; registered detectors: "
            f"{detector_kind_help()}") from None


def install_detector(spec: DetectorSpec, ctx: InstallContext
                     ) -> "dict[ProcessId, Any]":
    """Attach ``spec``'s modules to the engine; returns ``pid ->`` an
    object with the ``suspected(q)`` query API (an
    :class:`~repro.oracles.base.OracleModule` or an extraction facade)."""
    entry = resolve_detector(spec.name)
    return entry.install(ctx, spec.merged_params())
