"""Oracle module interface and trace plumbing.

Every detector module is a guarded-action :class:`~repro.sim.component.Component`
so it runs inside its owner's step loop like any other thread.  Output
changes are recorded as ``"suspect"`` trace rows::

    TraceRecord(time, "suspect", pid=<owner>,
                data={"target": q, "suspected": bool, "detector": name})

so :mod:`repro.oracles.properties` can verify completeness/accuracy purely
from the trace.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.types import ProcessId


class OracleModule(Component):
    """A local failure-detector module at one process.

    Subclasses update suspicion exclusively through :meth:`set_suspected`
    so that every output change lands in the trace.  ``initially_suspect``
    selects the initial output for each monitored process (the paper's
    reduction starts with ``suspect_q = true``; heartbeat detectors
    conventionally start trusting).
    """

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        initially_suspect: bool = False,
    ) -> None:
        super().__init__(name)
        self.monitored: tuple[ProcessId, ...] = tuple(monitored)
        if len(set(self.monitored)) != len(self.monitored):
            raise ConfigurationError("duplicate monitored process ids")
        self._suspected: dict[ProcessId, bool] = {
            q: initially_suspect for q in self.monitored
        }
        #: Label stamped on ``"suspect"`` trace rows.  Defaults to the
        #: component name; families of modules that should be checked as one
        #: logical detector (e.g. every extracted pair module) share a label.
        self.detector_label = name

    # -- queries (the oracle API processes use) ------------------------------

    def suspects(self) -> frozenset[ProcessId]:
        """Current suspect list of this module."""
        return frozenset(q for q, s in self._suspected.items() if s)

    def suspected(self, q: ProcessId) -> bool:
        """Is ``q`` currently suspected?"""
        try:
            return self._suspected[q]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: {q!r} is not monitored (monitored={self.monitored})"
            ) from None

    def trusted(self, q: ProcessId) -> bool:
        return not self.suspected(q)

    # -- updates ----------------------------------------------------------------

    def set_suspected(self, q: ProcessId, flag: bool) -> None:
        """Update the output for ``q``, recording the change in the trace."""
        if self._suspected[q] != bool(flag):
            self._suspected[q] = bool(flag)
            self.record("suspect", target=q, suspected=bool(flag),
                        detector=self.detector_label)

    # -- wiring ------------------------------------------------------------------

    def attached(self) -> None:
        # Record the initial output so suspicion series have a defined start.
        for q in self.monitored:
            self.record("suspect", target=q, suspected=self._suspected[q],
                        detector=self.detector_label, initial=True)


def attach_detectors(
    engine: Engine,
    pids: Sequence[ProcessId],
    factory: Callable[[ProcessId, list[ProcessId]], OracleModule],
    peers_of: Mapping[ProcessId, Sequence[ProcessId]] | None = None,
) -> dict[ProcessId, OracleModule]:
    """Attach one detector module per process.

    ``factory(owner, peers)`` builds the module for ``owner``.  By default
    every process monitors all the others; ``peers_of`` restricts each
    owner to an explicit peer list (conflict-graph-local monitoring).
    Processes must already exist on the engine.  Returns ``owner -> module``.
    """
    modules: dict[ProcessId, OracleModule] = {}
    for pid in pids:
        if peers_of is None:
            peers = [q for q in pids if q != pid]
        else:
            peers = list(peers_of.get(pid, ()))
        module = factory(pid, peers)
        engine.process(pid).add_component(module)
        modules[pid] = module
    return modules
