"""The perfect detector P — a simulated substrate.

P satisfies strong completeness and *strong accuracy* (no process is
suspected before it crashes).  P is not implementable in partially
synchronous systems; we provide it as a fault-schedule-informed substrate
(per the substitution rule in DESIGN.md) for use as an idealized baseline
and as a building block of the T/S substrates.

The module reads the engine's crash schedule and clock — privileged
information algorithm code never sees — and suspects ``q`` exactly from
``crash_time(q) + latency`` on.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import action
from repro.sim.faults import CrashSchedule
from repro.types import ProcessId, Time


class PerfectDetector(OracleModule):
    """Fault-schedule-informed P with a fixed detection latency."""

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        schedule: CrashSchedule,
        latency: Time = 5.0,
    ) -> None:
        super().__init__(name, monitored, initially_suspect=False)
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.schedule = schedule
        self.latency = float(latency)

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        now = self.process.env_now()  # substrate privilege: reads the clock
        for q in self.monitored:
            ct = self.schedule.crash_time(q)
            self.set_suspected(q, ct is not None and now >= ct + self.latency)
