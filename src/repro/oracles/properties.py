"""Trace checkers for failure-detector completeness and accuracy.

Each checker consumes a run :class:`~repro.sim.trace.Trace` (the ``"suspect"``
rows emitted by :class:`~repro.oracles.base.OracleModule`) plus the ground
truth :class:`~repro.sim.faults.CrashSchedule`, and produces a structured
report.  Eventual properties are verified as converged-suffix queries that
also return the convergence time, so experiments can show *when* the oracle
stabilized, not just that it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sim.faults import CrashSchedule
from repro.sim.temporal import convergence_time
from repro.sim.trace import Trace
from repro.types import ProcessId, Time


def suspicion_series(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    detector: str | None = None,
) -> list[tuple[Time, bool]]:
    """Time-ordered ``(time, suspected)`` output of ``owner``'s module about
    ``target`` (optionally restricted to one named detector)."""

    def match(r) -> bool:
        if r.get("target") != target:
            return False
        return detector is None or r.get("detector") == detector

    return [
        (r.time, bool(r["suspected"]))
        for r in trace.records(kind="suspect", pid=owner, where=match)
    ]


def suspected_at(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    t: Time,
    detector: str | None = None,
) -> bool:
    """Was ``target`` suspected by ``owner``'s module at time ``t``?

    Replays the suspicion transitions up to and including ``t``; before the
    first transition the module's initial state (not suspected) applies.
    """
    value = False
    for when, suspected in suspicion_series(trace, owner, target, detector):
        if when > t:
            break
        value = suspected
    return value


@dataclass(frozen=True)
class PairVerdict:
    """Verdict for one (owner, target) monitoring relation."""

    owner: ProcessId
    target: ProcessId
    ok: bool
    convergence: Optional[Time]
    detail: str = ""


@dataclass
class OracleReport:
    """Aggregated verdicts for one oracle property over a run."""

    property_name: str
    pairs: list[PairVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.pairs)

    @property
    def convergence(self) -> Optional[Time]:
        """Latest per-pair convergence time (None when any pair failed)."""
        if not self.ok or not self.pairs:
            return None
        times = [p.convergence for p in self.pairs if p.convergence is not None]
        return max(times, default=0.0)

    def failures(self) -> list[PairVerdict]:
        return [p for p in self.pairs if not p.ok]

    def format_table(self) -> str:
        lines = [f"{self.property_name}: {'OK' if self.ok else 'VIOLATED'}"]
        for p in self.pairs:
            conv = f"@{p.convergence:.1f}" if p.convergence is not None else "never"
            status = "ok " if p.ok else "FAIL"
            extra = f"  ({p.detail})" if p.detail else ""
            lines.append(f"  {status} {p.owner} monitors {p.target}: {conv}{extra}")
        return "\n".join(lines)


def _monitoring_pairs(
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None,
) -> list[tuple[ProcessId, ProcessId]]:
    """The (owner, target) relations a checker should examine.

    ``pairs=None`` means the full cross product (all-to-all monitoring);
    an explicit iterable restricts checking to the pairs actually
    monitored — required under conflict-graph-local pair selection, where
    an unmonitored pair has an empty suspicion series that would otherwise
    read as a violation.
    """
    if pairs is None:
        return [(o, t) for o in owners for t in targets if o != t]
    return [(o, t) for o, t in pairs if o != t]


def check_strong_completeness(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """Every crashed target is eventually permanently suspected by every
    correct owner that monitors it (paper: Strong Completeness; ``pairs``
    restricts the monitoring relation under local pair selection)."""
    report = OracleReport("strong completeness")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if not schedule.is_faulty(owner):
            ct = schedule.crash_time(target)
            if ct is None:
                continue  # completeness constrains only crashed targets
            series = suspicion_series(trace, owner, target, detector)
            conv = convergence_time(series, lambda s: s)
            ok = conv is not None
            detail = "" if ok else "not permanently suspected"
            if ok and conv < ct:
                # Converged before the crash: legal (completeness does not
                # restrict false positives) but worth surfacing.
                detail = f"suspected since {conv:.1f}, before crash at {ct:.1f}"
            report.pairs.append(PairVerdict(owner, target, ok, conv, detail))
    return report


def check_eventual_strong_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """Eventually no correct owner suspects any correct target it monitors
    (paper: Eventual Strong Accuracy; ``pairs`` restricts the monitoring
    relation under local pair selection)."""
    report = OracleReport("eventual strong accuracy")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if not schedule.is_faulty(owner):
            if schedule.is_faulty(target):
                continue
            series = suspicion_series(trace, owner, target, detector)
            conv = convergence_time(series, lambda s: not s)
            ok = conv is not None
            mistakes = false_positive_count(trace, owner, target, schedule, detector)
            report.pairs.append(
                PairVerdict(owner, target, ok, conv, f"{mistakes} mistakes")
            )
    return report


def check_perpetual_strong_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
) -> OracleReport:
    """No target is ever suspected before it crashes (the P accuracy)."""
    report = OracleReport("perpetual strong accuracy")
    owners = [o for o in owners if not schedule.is_faulty(o)]
    for owner in owners:
        for target in targets:
            if target == owner:
                continue
            mistakes = false_positive_count(trace, owner, target, schedule, detector)
            ok = mistakes == 0
            report.pairs.append(
                PairVerdict(owner, target, ok, 0.0 if ok else None,
                            "" if ok else f"{mistakes} premature suspicions")
            )
    return report


def check_trusting_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
) -> OracleReport:
    """The T accuracy (paper Section 9): (a) every correct target eventually
    permanently trusted; (b) any trust revocation implies a real crash."""
    report = OracleReport("trusting accuracy")
    owners = [o for o in owners if not schedule.is_faulty(o)]
    for owner in owners:
        for target in targets:
            if target == owner:
                continue
            series = suspicion_series(trace, owner, target, detector)
            ok = True
            conv: Optional[Time] = None
            detail = ""
            if not schedule.is_faulty(target):
                conv = convergence_time(series, lambda s: not s)
                if conv is None:
                    ok, detail = False, "correct target not permanently trusted"
            # (b): scan for trusted -> suspected transitions.
            prev = True  # T starts suspecting (never trusted yet)
            for t, s in series:
                if s and not prev:  # trust revoked at time t
                    ct = schedule.crash_time(target)
                    if ct is None or t < ct:
                        ok = False
                        detail = f"trust of live {target} revoked at {t:.1f}"
                        break
                prev = s
            report.pairs.append(PairVerdict(owner, target, ok, conv, detail))
    return report


def check_perpetual_weak_accuracy(
    trace: Trace,
    owners: Sequence[ProcessId],
    targets: Sequence[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
) -> tuple[bool, Optional[ProcessId]]:
    """The S accuracy: some correct target is never suspected by any owner.

    Returns ``(ok, witness_target)``.
    """
    live_owners = [o for o in owners if not schedule.is_faulty(o)]
    for target in targets:
        if schedule.is_faulty(target):
            continue
        if all(
            not any(s for _, s in suspicion_series(trace, o, target, detector))
            for o in live_owners
            if o != target
        ):
            return True, target
    return False, None


def false_positive_count(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    schedule: CrashSchedule,
    detector: str | None = None,
) -> int:
    """Number of suspicion onsets while ``target`` was still live.

    Counts transitions to ``suspected=True`` occurring strictly before the
    target's crash (or ever, for a correct target) — the oracle's "mistakes"
    in the paper's sense, which ◇P must keep finite.
    """
    series = suspicion_series(trace, owner, target, detector)
    ct = schedule.crash_time(target)
    count = 0
    prev = None
    for t, s in series:
        if s and prev is False and (ct is None or t < ct):
            count += 1
        prev = s
    # An initial 'suspected' sample also counts as a (wrongful) onset when
    # the target had not crashed at time zero.
    if series and series[0][1] and (ct is None or series[0][0] < ct):
        count += 1
    return count
