"""Trace checkers for failure-detector completeness and accuracy.

Each checker consumes a run :class:`~repro.sim.trace.Trace` (the ``"suspect"``
rows emitted by :class:`~repro.oracles.base.OracleModule`) plus the ground
truth :class:`~repro.sim.faults.CrashSchedule`, and produces a structured
report.  Eventual properties are verified as converged-suffix queries that
also return the convergence time, so experiments can show *when* the oracle
stabilized, not just that it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sim.faults import CrashSchedule
from repro.sim.temporal import convergence_time
from repro.sim.trace import Trace
from repro.types import ProcessId, Time


def suspicion_series(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    detector: str | None = None,
) -> list[tuple[Time, bool]]:
    """Time-ordered ``(time, suspected)`` output of ``owner``'s module about
    ``target`` (optionally restricted to one named detector)."""

    def match(r) -> bool:
        if r.get("target") != target:
            return False
        return detector is None or r.get("detector") == detector

    return [
        (r.time, bool(r["suspected"]))
        for r in trace.records(kind="suspect", pid=owner, where=match)
    ]


def suspected_at(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    t: Time,
    detector: str | None = None,
) -> bool:
    """Was ``target`` suspected by ``owner``'s module at time ``t``?

    Replays the suspicion transitions up to and including ``t``; before the
    first transition the module's initial state (not suspected) applies.
    """
    value = False
    for when, suspected in suspicion_series(trace, owner, target, detector):
        if when > t:
            break
        value = suspected
    return value


@dataclass(frozen=True)
class PairVerdict:
    """Verdict for one (owner, target) monitoring relation."""

    owner: ProcessId
    target: ProcessId
    ok: bool
    convergence: Optional[Time]
    detail: str = ""


@dataclass
class OracleReport:
    """Aggregated verdicts for one oracle property over a run."""

    property_name: str
    pairs: list[PairVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.pairs)

    @property
    def convergence(self) -> Optional[Time]:
        """Latest per-pair convergence time (None when any pair failed)."""
        if not self.ok or not self.pairs:
            return None
        times = [p.convergence for p in self.pairs if p.convergence is not None]
        return max(times, default=0.0)

    def failures(self) -> list[PairVerdict]:
        return [p for p in self.pairs if not p.ok]

    def format_table(self) -> str:
        lines = [f"{self.property_name}: {'OK' if self.ok else 'VIOLATED'}"]
        for p in self.pairs:
            conv = f"@{p.convergence:.1f}" if p.convergence is not None else "never"
            status = "ok " if p.ok else "FAIL"
            extra = f"  ({p.detail})" if p.detail else ""
            lines.append(f"  {status} {p.owner} monitors {p.target}: {conv}{extra}")
        return "\n".join(lines)


def _monitoring_pairs(
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None,
) -> list[tuple[ProcessId, ProcessId]]:
    """The (owner, target) relations a checker should examine.

    ``pairs=None`` means the full cross product (all-to-all monitoring);
    an explicit iterable restricts checking to the pairs actually
    monitored — required under conflict-graph-local pair selection, where
    an unmonitored pair has an empty suspicion series that would otherwise
    read as a violation.
    """
    if pairs is None:
        return [(o, t) for o in owners for t in targets if o != t]
    return [(o, t) for o, t in pairs if o != t]


def check_strong_completeness(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """Every crashed target is eventually permanently suspected by every
    correct owner that monitors it (paper: Strong Completeness; ``pairs``
    restricts the monitoring relation under local pair selection)."""
    report = OracleReport("strong completeness")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if not schedule.is_faulty(owner):
            ct = schedule.crash_time(target)
            if ct is None:
                continue  # completeness constrains only crashed targets
            series = suspicion_series(trace, owner, target, detector)
            conv = convergence_time(series, lambda s: s)
            ok = conv is not None
            detail = "" if ok else "not permanently suspected"
            if ok and conv < ct:
                # Converged before the crash: legal (completeness does not
                # restrict false positives) but worth surfacing.
                detail = f"suspected since {conv:.1f}, before crash at {ct:.1f}"
            report.pairs.append(PairVerdict(owner, target, ok, conv, detail))
    return report


def check_eventual_strong_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """Eventually no correct owner suspects any correct target it monitors
    (paper: Eventual Strong Accuracy; ``pairs`` restricts the monitoring
    relation under local pair selection)."""
    report = OracleReport("eventual strong accuracy")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if not schedule.is_faulty(owner):
            if schedule.is_faulty(target):
                continue
            series = suspicion_series(trace, owner, target, detector)
            conv = convergence_time(series, lambda s: not s)
            ok = conv is not None
            mistakes = false_positive_count(trace, owner, target, schedule, detector)
            report.pairs.append(
                PairVerdict(owner, target, ok, conv, f"{mistakes} mistakes")
            )
    return report


def check_perpetual_strong_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """No target is ever suspected before it crashes (the P accuracy;
    ``pairs`` restricts the monitoring relation under local selection)."""
    report = OracleReport("perpetual strong accuracy")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if schedule.is_faulty(owner):
            continue
        mistakes = false_positive_count(trace, owner, target, schedule, detector)
        ok = mistakes == 0
        report.pairs.append(
            PairVerdict(owner, target, ok, 0.0 if ok else None,
                        "" if ok else f"{mistakes} premature suspicions")
        )
    return report


def check_trusting_accuracy(
    trace: Trace,
    owners: Iterable[ProcessId],
    targets: Iterable[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> OracleReport:
    """The T accuracy (paper Section 9): (a) every correct target eventually
    permanently trusted; (b) any trust revocation implies a real crash."""
    report = OracleReport("trusting accuracy")
    for owner, target in _monitoring_pairs(owners, targets, pairs):
        if not schedule.is_faulty(owner):
            series = suspicion_series(trace, owner, target, detector)
            ok = True
            conv: Optional[Time] = None
            detail = ""
            if not schedule.is_faulty(target):
                conv = convergence_time(series, lambda s: not s)
                if conv is None:
                    ok, detail = False, "correct target not permanently trusted"
            # (b): scan for trusted -> suspected transitions.
            prev = True  # T starts suspecting (never trusted yet)
            for t, s in series:
                if s and not prev:  # trust revoked at time t
                    ct = schedule.crash_time(target)
                    if ct is None or t < ct:
                        ok = False
                        detail = f"trust of live {target} revoked at {t:.1f}"
                        break
                prev = s
            report.pairs.append(PairVerdict(owner, target, ok, conv, detail))
    return report


def _owners_of(
    target: ProcessId,
    owners: Sequence[ProcessId],
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None,
) -> list[ProcessId]:
    """The owners whose module monitors ``target`` under ``pairs``."""
    if pairs is None:
        return [o for o in owners if o != target]
    return [o for o, t in pairs if t == target and o != target]


def check_perpetual_weak_accuracy(
    trace: Trace,
    owners: Sequence[ProcessId],
    targets: Sequence[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> tuple[bool, Optional[ProcessId]]:
    """The S accuracy: some correct target is never suspected by any owner.

    Returns ``(ok, witness_target)``.
    """
    live_owners = [o for o in owners if not schedule.is_faulty(o)]
    for target in targets:
        if schedule.is_faulty(target):
            continue
        if all(
            not any(s for _, s in suspicion_series(trace, o, target, detector))
            for o in _owners_of(target, live_owners, pairs)
        ):
            return True, target
    return False, None


def check_eventual_weak_accuracy(
    trace: Trace,
    owners: Sequence[ProcessId],
    targets: Sequence[ProcessId],
    schedule: CrashSchedule,
    detector: str | None = None,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> tuple[bool, Optional[ProcessId]]:
    """The ◇S accuracy: some correct target is *eventually* never suspected
    by any correct owner that monitors it.

    Returns ``(ok, witness_target)``.
    """
    live_owners = [o for o in owners if not schedule.is_faulty(o)]
    for target in targets:
        if schedule.is_faulty(target):
            continue
        if all(
            convergence_time(
                suspicion_series(trace, o, target, detector),
                lambda s: not s) is not None
            for o in _owners_of(target, live_owners, pairs)
        ):
            return True, target
    return False, None


def leader_series(
    trace: Trace,
    owner: ProcessId,
) -> list[tuple[Time, ProcessId]]:
    """Time-ordered leader estimates of ``owner`` (the ``"leader"`` rows
    :class:`~repro.oracles.omega.OmegaElector` records)."""
    return [(r.time, r["leader"]) for r in trace.records(kind="leader",
                                                         pid=owner)]


def check_leader_agreement(
    trace: Trace,
    pids: Sequence[ProcessId],
    schedule: CrashSchedule,
) -> OracleReport:
    """The Ω specification: eventually every correct process permanently
    elects the same correct leader.

    Per correct owner, the verdict pair is ``(owner, final_leader)``; the
    convergence time is the owner's last estimate change.  Fails when an
    owner has no leader records (Ω was not running), its final leader is
    faulty, or two correct owners disagree at the end of the run.
    """
    report = OracleReport("leader agreement")
    finals: dict[ProcessId, ProcessId] = {}
    for owner in pids:
        if schedule.is_faulty(owner):
            continue
        series = leader_series(trace, owner)
        if not series:
            report.pairs.append(PairVerdict(
                owner, owner, False, None, "no leader records"))
            continue
        t, leader = series[-1]
        finals[owner] = leader
        ok = not schedule.is_faulty(leader)
        detail = "" if ok else f"final leader {leader} is faulty"
        report.pairs.append(PairVerdict(owner, leader, ok, t, detail))
    if len(set(finals.values())) > 1:
        disagree = ", ".join(f"{o}->{l}" for o, l in sorted(finals.items()))
        report.pairs.append(PairVerdict(
            "*", "*", False, None, f"correct processes disagree: {disagree}"))
    return report


# -- detector-specific battery dispatch ---------------------------------------


@dataclass(frozen=True)
class DetectorAssumptions:
    """Which completeness/accuracy battery a detector class is judged by.

    Historically the runtime judged every run against ◇P's expectations
    (eventual strong accuracy + strong completeness on the ``"boxfd"``
    label).  These assumptions are now *parameters*, sourced from the
    detector registry entry of the run's
    :class:`~repro.oracles.registry.DetectorSpec`, so an S or ◇S run is
    verified against its own specification instead of ◇P's.

    ``accuracy`` is one of :data:`ACCURACY_PROPERTIES`; ``completeness``
    is ``"strong"`` or ``"none"``; ``label`` restricts the checkers to
    ``"suspect"`` rows of that detector.
    """

    accuracy: str = "eventual_strong"
    completeness: str = "strong"
    label: Optional[str] = "boxfd"

    def __post_init__(self) -> None:
        if self.accuracy not in ACCURACY_PROPERTIES:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown accuracy property {self.accuracy!r} (one of: "
                f"{', '.join(sorted(ACCURACY_PROPERTIES))})")
        if self.completeness not in ("strong", "none"):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown completeness property {self.completeness!r} "
                "(strong | none)")


@dataclass(frozen=True)
class DetectorVerdicts:
    """The two-bit outcome of :func:`check_detector_properties`."""

    accuracy_ok: bool
    completeness_ok: bool
    accuracy_property: str
    accuracy_detail: str = ""
    completeness_detail: str = ""


def _acc_eventual_strong(trace, pids, schedule, label, pairs):
    report = check_eventual_strong_accuracy(trace, pids, pids, schedule,
                                            detector=label, pairs=pairs)
    return report.ok, "" if report.ok else report.failures()[0].detail


def _acc_perpetual_strong(trace, pids, schedule, label, pairs):
    report = check_perpetual_strong_accuracy(trace, pids, pids, schedule,
                                             detector=label, pairs=pairs)
    return report.ok, "" if report.ok else report.failures()[0].detail


def _acc_trusting(trace, pids, schedule, label, pairs):
    report = check_trusting_accuracy(trace, pids, pids, schedule,
                                     detector=label, pairs=pairs)
    return report.ok, "" if report.ok else report.failures()[0].detail


def _acc_perpetual_weak(trace, pids, schedule, label, pairs):
    ok, witness = check_perpetual_weak_accuracy(trace, pids, pids, schedule,
                                                detector=label, pairs=pairs)
    return ok, (f"witness {witness}" if ok
                else "every correct process was suspected at some point")


def _acc_eventual_weak(trace, pids, schedule, label, pairs):
    ok, witness = check_eventual_weak_accuracy(trace, pids, pids, schedule,
                                               detector=label, pairs=pairs)
    return ok, (f"witness {witness}" if ok
                else "no correct process is eventually trusted by all")


def _acc_leader_agreement(trace, pids, schedule, label, pairs):
    report = check_leader_agreement(trace, pids, schedule)
    return report.ok, "" if report.ok else report.failures()[0].detail


#: Accuracy-property dispatch: what a :class:`DetectorAssumptions` may name.
ACCURACY_PROPERTIES = {
    "eventual_strong": _acc_eventual_strong,
    "perpetual_strong": _acc_perpetual_strong,
    "trusting": _acc_trusting,
    "perpetual_weak": _acc_perpetual_weak,
    "eventual_weak": _acc_eventual_weak,
    "leader_agreement": _acc_leader_agreement,
}


def check_detector_properties(
    trace: Trace,
    pids: Sequence[ProcessId],
    schedule: CrashSchedule,
    assumptions: DetectorAssumptions,
    pairs: Iterable[tuple[ProcessId, ProcessId]] | None = None,
) -> DetectorVerdicts:
    """Judge a run's oracle against *its own* class specification.

    The runtime calls this from ``execute`` with the assumptions of the
    spec's registered detector, so the ``oracle_accuracy_ok`` /
    ``oracle_completeness_ok`` verdict fields always mean "satisfied what
    this detector class promises" — ◇P runs keep the historical battery
    bit for bit.
    """
    pairs = None if pairs is None else list(pairs)
    acc_ok, acc_detail = ACCURACY_PROPERTIES[assumptions.accuracy](
        trace, list(pids), schedule, assumptions.label, pairs)
    if assumptions.completeness == "none":
        comp_ok, comp_detail = True, "not required"
    else:
        report = check_strong_completeness(trace, pids, pids, schedule,
                                           detector=assumptions.label,
                                           pairs=pairs)
        comp_ok = report.ok
        comp_detail = "" if comp_ok else report.failures()[0].detail
    return DetectorVerdicts(
        accuracy_ok=bool(acc_ok), completeness_ok=bool(comp_ok),
        accuracy_property=assumptions.accuracy,
        accuracy_detail=acc_detail, completeness_detail=comp_detail)


def false_positive_count(
    trace: Trace,
    owner: ProcessId,
    target: ProcessId,
    schedule: CrashSchedule,
    detector: str | None = None,
) -> int:
    """Number of suspicion onsets while ``target`` was still live.

    Counts transitions to ``suspected=True`` occurring strictly before the
    target's crash (or ever, for a correct target) — the oracle's "mistakes"
    in the paper's sense, which ◇P must keep finite.
    """
    series = suspicion_series(trace, owner, target, detector)
    ct = schedule.crash_time(target)
    count = 0
    prev = None
    for t, s in series:
        if s and prev is False and (ct is None or t < ct):
            count += 1
        prev = s
    # An initial 'suspected' sample also counts as a (wrongful) onset when
    # the target had not crashed at time zero.
    if series and series[0][1] and (ct is None or series[0][0] < ct):
        count += 1
    return count
