"""Failure detectors (distributed oracles) of the Chandra–Toueg hierarchy.

An *unreliable failure detector* is a distributed oracle queried for
(possibly incorrect) information about process crashes.  Each process hosts
a local module outputting a set of currently-suspected processes.  Classes
are defined by a completeness property (restricting false negatives) and an
accuracy property (restricting false positives) — paper Section 4.

Implemented here:

* :class:`~repro.oracles.eventually_perfect.EventuallyPerfectDetector` — ◇P,
  implemented honestly from partial synchrony (heartbeats + adaptive
  step-count timeouts); makes real mistakes before GST.
* :class:`~repro.oracles.perfect.PerfectDetector` — P, a *simulated
  substrate* consulting the fault schedule with bounded latency.
* :class:`~repro.oracles.trusting.TrustingDetector` — T (Delporte-Gallet et
  al.): trust, once granted, is revoked only on real crashes.  Simulated
  substrate (T is not implementable from ◇P-level synchrony).
* :class:`~repro.oracles.strong.StrongDetector` — S: strong completeness +
  perpetual weak accuracy (a designated correct process is never suspected).
* :class:`~repro.oracles.omega.OmegaElector` — Ω derived from any ◇P module.

:mod:`repro.oracles.properties` provides the trace checkers that validate
each class's completeness/accuracy on recorded runs.
"""

from repro.oracles.base import OracleModule, attach_detectors
from repro.oracles.eventually_perfect import EventuallyPerfectDetector
from repro.oracles.eventually_strong import EventuallyStrongDetector
from repro.oracles.omega import OmegaDetector, OmegaElector
from repro.oracles.perfect import PerfectDetector
from repro.oracles.properties import DetectorAssumptions
from repro.oracles.registry import (
    DEFAULT_DETECTOR,
    REGISTRY,
    DetectorEntry,
    DetectorSpec,
    detector_kind_help,
    install_detector,
    resolve_detector,
)
from repro.oracles.strong import StrongDetector
from repro.oracles.trusting import TrustingDetector

__all__ = [
    "DEFAULT_DETECTOR",
    "DetectorAssumptions",
    "DetectorEntry",
    "DetectorSpec",
    "EventuallyPerfectDetector",
    "EventuallyStrongDetector",
    "OmegaDetector",
    "OmegaElector",
    "OracleModule",
    "PerfectDetector",
    "REGISTRY",
    "StrongDetector",
    "TrustingDetector",
    "attach_detectors",
    "detector_kind_help",
    "install_detector",
    "resolve_detector",
]
