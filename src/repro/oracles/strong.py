"""The strong detector S — a simulated substrate.

S (Chandra–Toueg) satisfies strong completeness and **perpetual weak
accuracy**: *some* correct process is never suspected by any live process.
Together with T it suffices for Fault-Tolerant Mutual Exclusion (paper
Section 9).

The substrate designates one correct process (the lexicographically first
by default) as the never-suspected anchor.  All other peers are suspected
exactly when crashed (plus latency) and, optionally, wrongly suspected for
a finite noisy prefix — making the module observably weaker than P while
still satisfying the S specification.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.oracles.base import OracleModule
from repro.sim.component import action
from repro.sim.faults import CrashSchedule
from repro.types import ProcessId, Time


def default_anchor(pids: Iterable[ProcessId], schedule: CrashSchedule) -> ProcessId:
    """The canonical anchor: first correct process in sorted order."""
    correct = sorted(schedule.correct(pids))
    if not correct:
        raise ConfigurationError("S needs at least one correct process")
    return correct[0]


class StrongDetector(OracleModule):
    """Fault-schedule-informed S with optional finite false-suspicion noise.

    ``noise_until`` bounds the window during which non-anchor live peers may
    be wrongly suspected (probability ``noise_prob`` per refresh); after it
    the module behaves like P restricted to non-anchor peers.
    """

    def __init__(
        self,
        name: str,
        monitored: Iterable[ProcessId],
        schedule: CrashSchedule,
        anchor: ProcessId,
        latency: Time = 5.0,
        noise_until: Time = 0.0,
        noise_prob: float = 0.05,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, monitored, initially_suspect=False)
        self.schedule = schedule
        self.anchor = anchor
        self.latency = float(latency)
        self.noise_until = float(noise_until)
        self.noise_prob = float(noise_prob)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        if self.anchor in self.monitored and schedule.is_faulty(self.anchor):
            raise ConfigurationError(
                f"anchor {anchor!r} must be a correct process"
            )

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        now = self.process.env_now()  # substrate privilege
        for q in self.monitored:
            if q == self.anchor:
                # Perpetual weak accuracy: the anchor is never suspected.
                self.set_suspected(q, False)
                continue
            ct = self.schedule.crash_time(q)
            if ct is not None and now >= ct + self.latency:
                self.set_suspected(q, True)
            elif now < self.noise_until and self._rng.random() < self.noise_prob:
                self.set_suspected(q, True)  # finite wrongful suspicion
            else:
                self.set_suspected(q, False)
