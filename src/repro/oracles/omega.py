"""Ω — eventual leader election derived from any ◇P-class module.

Each process's leader estimate is the smallest process id it does not
currently suspect (itself included).  Once the underlying ◇P converges,
all correct processes permanently agree on the smallest correct process —
the Ω specification.  The paper cites stable leader election as one of the
problems ◇P solves [1]; experiment E8 uses Ω's cousin (rotating
coordinators) inside Chandra–Toueg consensus.
"""

from __future__ import annotations

from repro.oracles.base import OracleModule
from repro.sim.component import Component, action
from repro.types import ProcessId


class OmegaElector(Component):
    """Leader estimate on top of a local detector module.

    Records a ``"leader"`` trace row on every estimate change so agreement
    and stability are trace-checkable.
    """

    def __init__(self, name: str, detector: OracleModule) -> None:
        super().__init__(name)
        self.detector = detector
        self._leader: ProcessId | None = None

    @property
    def leader(self) -> ProcessId:
        """Current leader estimate (defined after the first refresh)."""
        if self._leader is None:
            return self._compute()
        return self._leader

    def _compute(self) -> ProcessId:
        candidates = [self.pid] + [
            q for q in self.detector.monitored if not self.detector.suspected(q)
        ]
        return min(candidates)

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        new = self._compute()
        if new != self._leader:
            self._leader = new
            self.record("leader", leader=new)


class OmegaDetector(OracleModule):
    """Ω exposed through the suspect-list API: suspect every non-leader.

    This is the *most* information the Ω specification guarantees — a
    single eventually-agreed correct leader — repackaged as an oracle
    module so leader election can drive the dining stack through the same
    ``suspected(q)`` surface as any other detector.  Two correct
    neighbors that are both non-leaders suspect each other forever, which
    is exactly why Ω ranks below ◇P for wait-free dining under ◇WX in the
    ``repro lattice`` comparison: the Ω property holds while the dining
    run keeps violating exclusion.
    """

    def __init__(self, name: str, monitored, elector: OmegaElector) -> None:
        super().__init__(name, monitored, initially_suspect=False)
        self.elector = elector

    @action(guard=lambda self: True)
    def refresh(self) -> None:
        leader = self.elector.leader
        for q in self.monitored:
            self.set_suspected(q, q != leader)
