"""The one-call public API: ``repro.run``, ``repro.sweep``, ``repro.compare``.

Everything the library can express — algorithm choice, failure detector,
topology, crash schedule, link faults, adversary, trace sink — is
declared on a :class:`~repro.runtime.spec.RunSpec`; these functions are
the single front door for executing one:

.. code-block:: python

    import repro

    result = repro.run(repro.RunSpec(graph="ring:5", seed=7,
                                     crashes={"p1": 400.0}))
    assert result.wait_freedom.ok

    results = repro.sweep(repro.RunSpec(graph="ring:4"), runs=16, workers=4)

    # detector selection, by registry name (docs/detectors.md):
    result = repro.run(repro.RunSpec(graph="ring:5", detector="trusting"))

    # the cross-detector comparison lattice (CLI: repro lattice):
    matrix = repro.compare(graphs=("ring:6",), seeds=4)
    print(matrix.render())

``run`` executes one spec through the canonical runtime pipeline
(build → simulate → judge) and returns the :class:`RunResult` envelope.
``sweep`` fans one spec out across independent seeds — derived
deterministically from the spec's own seed via
:func:`~repro.runtime.seeds.fanout_seeds` — optionally across worker
processes, and returns the per-seed results in seed order (parallel
execution is bit-identical to serial, per seed).

The CLI subcommands (``repro scenario``, ``repro sweep``, ``repro
chaos``) are thin wrappers over the same two calls.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.oracles.registry import DetectorSpec
from repro.runtime.builder import execute
from repro.runtime.executor import ParallelExecutor, RetryPolicy
from repro.runtime.result import RunResult
from repro.runtime.seeds import fanout_seeds
from repro.runtime.spec import RunSpec

__all__ = ["DetectorSpec", "compare", "run", "sweep"]


def _coerce_spec(spec: Union[RunSpec, Mapping]) -> RunSpec:
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, Mapping):
        return RunSpec.from_dict(dict(spec))
    raise ConfigurationError(
        f"expected a RunSpec or a mapping, got {type(spec).__name__}")


def run(spec: Union[RunSpec, Mapping],
        check: Optional[bool] = None) -> RunResult:
    """Execute one :class:`RunSpec` (or spec dict) and judge the run.

    ``check=None`` (default) runs the invariant battery exactly when the
    trace sink retains rows; ``counters`` runs come back metrics-only
    with ``result.checked`` False.
    """
    return execute(_coerce_spec(spec), check=check)


def sweep(spec: Union[RunSpec, Mapping],
          runs: int = 8,
          workers: int = 1,
          seeds: Optional[Sequence[int]] = None,
          check: Optional[bool] = None,
          timeout: Optional[float] = None,
          retry: Optional[RetryPolicy] = None) -> list[RunResult]:
    """Execute ``spec`` across independent seeds; results in seed order.

    ``seeds`` defaults to ``fanout_seeds(spec.seed, runs)`` so a sweep is
    reproducible from the one base seed on the spec; pass an explicit
    sequence to pin the shards yourself (``runs`` is then ignored).
    ``workers > 1`` fans shards over a supervised process pool — per-seed
    results are bit-identical to the serial path, but come back
    trace-detached.  ``timeout`` bounds each run's wall clock (a hung
    worker is killed and the run retried under ``retry``, default
    :class:`~repro.runtime.executor.RetryPolicy`); see
    docs/reliability.md for the supervision model.
    """
    base = _coerce_spec(spec)
    if seeds is None:
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        seeds = fanout_seeds(base.seed, runs)
    shards = [replace(base, seed=int(s)) for s in seeds]
    executor = ParallelExecutor(workers=workers, timeout=timeout,
                                retry=retry)
    if check is None:
        return executor.run_specs(shards)
    if workers <= 1 or len(shards) <= 1:
        return [execute(s, check=check) for s in shards]
    # The pooled path pickles the task by reference; execute's check knob
    # rides along via a module-level partial-free wrapper per value.
    fn = _execute_checked if check else _execute_unchecked
    return executor.map(fn, shards)


def compare(*args, **kwargs):
    """Cross-detector comparison lattice — see
    :func:`repro.lattice.compare.compare` for the full signature.

    Re-exported here (and as ``repro.compare``) so the comparison
    campaign is one import away from the public front door; imported
    lazily to keep ``import repro`` light.
    """
    from repro.lattice import compare as _compare

    return _compare(*args, **kwargs)


def _execute_checked(spec: RunSpec) -> RunResult:
    return execute(spec, check=True).detach_trace()


def _execute_unchecked(spec: RunSpec) -> RunResult:
    return execute(spec, check=False).detach_trace()
