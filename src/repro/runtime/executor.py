"""Supervised parallel campaign execution: fan tasks out, survive workers.

Because :func:`repro.runtime.builder.execute` is a pure function of its
spec, running N specs on N cores is embarrassingly parallel *and*
deterministic: results are keyed by spec (seed), not by completion order,
so ``workers=4`` reproduces ``workers=1`` bit for bit, per seed.

Two layers live here:

* :class:`SupervisedExecutor` — the reliability core.  It owns its
  worker processes directly (explicit ``multiprocessing`` context, one
  task/result pipe pair per worker) so it can do what a bare ``Pool``
  cannot: enforce per-task wall-clock timeouts, detect workers that were
  SIGKILLed or died mid-task (OOM killer, segfault), retry the lost task
  with seeded exponential backoff + jitter, recycle workers after
  ``maxtasksperchild`` tasks, and degrade gracefully to in-process serial
  execution when the pool proves irrecoverable.  Retry/timeout/crash
  counts are published to a :class:`~repro.obs.registry.MetricsRegistry`.
* :class:`ParallelExecutor` — the deterministic-map facade the rest of
  the codebase uses (``--workers N`` on the CLI).  ``workers <= 1``
  short-circuits to a plain in-process loop — byte-for-byte the
  historical serial path, with no pool, no pickling, and traces left
  attached to the results; ``workers > 1`` delegates to a
  :class:`SupervisedExecutor`.

Determinism under supervision: task functions must be module-level
(picklable by reference) and pure functions of their argument, so a
retried task recomputes the *same* value — retries change wall-clock
cost, never results.  A clean Python exception raised by the task
function is *not* retried (it would deterministically recur) and is
re-raised in the parent, matching ``multiprocessing.Pool.map`` semantics.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError, ExecutionError
from repro.obs.registry import MetricsRegistry
from repro.runtime.builder import execute
from repro.runtime.result import RunResult
from repro.runtime.spec import RunSpec

T = TypeVar("T")
R = TypeVar("R")

#: How long (seconds) a worker gets to exit after a poison pill / terminate
#: before escalating to SIGKILL during shutdown.
_SHUTDOWN_GRACE = 1.0

#: Supervisor poll tick (seconds) when nothing is imminently due: liveness
#: and deadline checks run at least this often.  Worker *crashes* are
#: detected faster than the tick — a dead worker's result pipe hits EOF,
#: which wakes :func:`multiprocessing.connection.wait` immediately.
_POLL_TICK = 0.25


def mp_context() -> mp.context.BaseContext:
    """The pinned multiprocessing context for all campaign pools.

    ``fork`` where the platform offers it (cheap worker startup, and the
    historical Linux behavior the determinism suite grew up on), else
    ``spawn``.  Pinning the method explicitly means campaigns behave the
    same regardless of what other libraries set as the global default.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with seeded exponential backoff + jitter.

    ``delay(task_id, attempt)`` is a pure function of the policy seed,
    the task id, and the attempt number, so a re-run campaign retries on
    an identical schedule — supervision never introduces nondeterminism.
    """

    max_attempts: int = 3
    backoff_initial: float = 0.25
    backoff_max: float = 4.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_initial < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff bounds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, task_id: int, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1`` of ``task_id``."""
        base = min(self.backoff_max,
                   self.backoff_initial * (2.0 ** max(0, attempt - 1)))
        word = np.random.SeedSequence(
            [self.seed, int(task_id) & 0xFFFFFFFF, int(attempt)]
        ).generate_state(1)[0]
        return base * (1.0 + self.jitter * (float(word) / 2.0 ** 32))


def _picklesafe(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a carrier with its repr."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecutionError(f"worker task failed: {exc!r}")


def _worker_main(worker_id: int, fn: Callable, task_conn, result_conn,
                 fault_hook: Optional[Callable[[int, int], None]]) -> None:
    """Worker loop: recv ``(task_id, arg)``, send ``(task_id, ok, value)``.

    Exits on a ``None`` poison pill or EOF (parent closed the pipe).
    ``fault_hook`` is the self-chaos injection point — called before each
    task with ``(worker_id, task_id)``, it may hang, ``os._exit``, or
    raise, simulating hung / OOM-killed / crashing workers.
    """
    try:
        while True:
            try:
                item = task_conn.recv()
            except (EOFError, OSError):
                return
            if item is None:
                return
            task_id, arg = item
            if fault_hook is not None:
                fault_hook(worker_id, task_id)
            try:
                payload = (task_id, True, fn(arg))
            except Exception as exc:  # deterministic task error: report it
                payload = (task_id, False, _picklesafe(exc))
            try:
                result_conn.send(payload)
            except Exception:
                try:
                    result_conn.send((task_id, False, ExecutionError(
                        f"task {task_id} produced an unpicklable result")))
                except Exception:
                    return
    except KeyboardInterrupt:
        return


class _Worker:
    """Parent-side handle on one supervised worker process."""

    __slots__ = ("proc", "task_conn", "result_conn", "inflight", "deadline",
                 "served")

    def __init__(self, proc, task_conn, result_conn) -> None:
        self.proc = proc
        self.task_conn = task_conn
        self.result_conn = result_conn
        #: ``[task_id, attempt]`` currently running, or None when idle.
        self.inflight: Optional[list] = None
        self.deadline: Optional[float] = None
        self.served = 0

    def close(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


class SupervisedExecutor:
    """A fault-tolerant deterministic map over supervised worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``<= 1`` runs serially in-process.
    timeout:
        Per-task wall-clock budget in seconds.  A worker that exceeds it
        is SIGKILLed and its task retried elsewhere.  ``None`` disables
        (tasks may run forever, but crashed workers are still detected).
    retry:
        :class:`RetryPolicy` for tasks lost to crashes/timeouts.  A task
        that exhausts its attempts falls back to one final in-process
        execution, so a flaky pool cannot fail a campaign.
    maxtasksperchild:
        Recycle each worker after this many tasks (bounds worker-state
        drift on long campaigns); ``None`` disables recycling.
    fault_hook:
        Self-chaos injection point (module-level picklable callable) run
        in the worker before each task; see ``tests/runtime/
        test_supervisor_chaos.py``.
    metrics:
        Registry the supervision counters publish into (default: a fresh
        one per executor).  Counters: ``executor.tasks``, ``.retries``,
        ``.timeouts``, ``.worker_crashes``, ``.workers_recycled``,
        ``.inline_fallbacks``; gauge ``executor.degraded``.
    """

    def __init__(self, workers: int = 1,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 maxtasksperchild: Optional[int] = 32,
                 fault_hook: Optional[Callable[[int, int], None]] = None,
                 degrade_after: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive (or None), got {timeout}")
        if maxtasksperchild is not None and maxtasksperchild < 1:
            raise ConfigurationError(
                f"maxtasksperchild must be >= 1 (or None), "
                f"got {maxtasksperchild}")
        self.workers = workers
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.maxtasksperchild = maxtasksperchild
        self.fault_hook = fault_hook
        #: Pool incidents (crashes + timeouts + spawn failures) tolerated
        #: before abandoning the pool for in-process serial execution.
        self.degrade_after = (degrade_after if degrade_after is not None
                              else max(4, 2 * workers))
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- public surface ------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            on_result: Optional[Callable[[int, R], None]] = None) -> list[R]:
        """``[fn(x) for x in items]`` under supervision, order-preserved.

        ``on_result(index, value)`` fires as each result lands (completion
        order) — checkpoint stores hook in here so an interrupted campaign
        keeps everything already computed.
        """
        tasks = list(items)
        if self.workers <= 1 or len(tasks) <= 1:
            out = []
            for i, x in enumerate(tasks):
                value = fn(x)
                self.metrics.counter("executor.tasks").inc()
                if on_result is not None:
                    on_result(i, value)
                out.append(value)
            return out
        return _PoolSupervisor(self, fn, tasks, on_result).run()

    def stats(self) -> dict[str, float]:
        """Flat view of the supervision counters (name → value)."""
        snap = self.metrics.snapshot()
        return {**snap.counters, **snap.gauges}


class _PoolSupervisor:
    """One ``map`` call's supervision state machine."""

    def __init__(self, ex: SupervisedExecutor, fn: Callable,
                 tasks: Sequence, on_result) -> None:
        self.ex = ex
        self.fn = fn
        self.tasks = tasks
        self.on_result = on_result
        self.ctx = mp_context()
        self.results: dict[int, Any] = {}
        #: ``[task_id, attempt]`` plus the monotonic time it becomes
        #: dispatchable (backoff): list of ``[task_id, attempt, ready_at]``.
        self.pending: list[list] = [[tid, 1, 0.0]
                                    for tid in range(len(tasks))]
        self.workers: list[_Worker] = []
        self.retired: list[_Worker] = []
        self.next_worker_id = 0
        self.incidents = 0
        self.degraded = False

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> list:
        try:
            self._loop()
        finally:
            self._terminate_all()
        return [self.results[i] for i in range(len(self.tasks))]

    def _loop(self) -> None:
        n = len(self.tasks)
        while len(self.results) < n:
            if self.degraded:
                self._run_inline_remaining()
                return
            now = time.monotonic()
            self._dispatch(now)
            busy = [w for w in self.workers if w.inflight is not None]
            wait_for = self._wakeup_timeout(time.monotonic())
            if busy:
                ready = mp_connection.wait(
                    [w.result_conn for w in busy], timeout=wait_for)
                for w in busy:
                    if w.result_conn in ready:
                        self._collect(w)
            elif self.pending:
                time.sleep(wait_for)
            now = time.monotonic()
            for w in list(self.workers):
                if w.inflight is None:
                    continue
                if not w.proc.is_alive():
                    self._on_crash(w)
                elif w.deadline is not None and now >= w.deadline:
                    self._on_timeout(w)
            self._reap_retired()

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, now: float) -> None:
        ready = sorted((p for p in self.pending if p[2] <= now),
                       key=lambda p: p[0])
        for p in ready:
            worker = self._idle_or_new()
            if worker is None:
                return  # no free slot (or we just degraded)
            try:
                worker.task_conn.send((p[0], self.tasks[p[0]]))
            except (OSError, ValueError) as exc:
                self._discard(worker)
                self._incident("executor.worker_crashes",
                               f"task pipe broken: {exc}")
                continue
            worker.inflight = [p[0], p[1]]
            worker.deadline = (None if self.ex.timeout is None
                               else now + self.ex.timeout)
            worker.served += 1
            self.pending.remove(p)

    def _idle_or_new(self) -> Optional[_Worker]:
        for w in self.workers:
            if w.inflight is None:
                return w
        if len(self.workers) >= self.ex.workers or self.degraded:
            return None
        return self._spawn()

    def _spawn(self) -> Optional[_Worker]:
        wid = self.next_worker_id
        self.next_worker_id += 1
        try:
            task_r, task_w = self.ctx.Pipe(duplex=False)
            result_r, result_w = self.ctx.Pipe(duplex=False)
            proc = self.ctx.Process(
                target=_worker_main,
                args=(wid, self.fn, task_r, result_w, self.ex.fault_hook),
                name=f"repro-worker-{wid}",
                daemon=True,
            )
            proc.start()
        except (OSError, ValueError, pickle.PicklingError) as exc:
            self._incident("executor.worker_crashes",
                           f"worker spawn failed: {exc}")
            self.degraded = True
            return None
        # Close the child's ends in the parent so worker death surfaces
        # as EOF on result_r instead of a silent hang.
        task_r.close()
        result_w.close()
        worker = _Worker(proc, task_w, result_r)
        self.workers.append(worker)
        return worker

    # -- result / failure handling -------------------------------------------

    def _collect(self, worker: _Worker) -> None:
        try:
            task_id, ok, value = worker.result_conn.recv()
        except (EOFError, OSError):
            self._on_crash(worker)
            return
        inflight = worker.inflight
        worker.inflight = None
        worker.deadline = None
        if (self.ex.maxtasksperchild is not None
                and worker.served >= self.ex.maxtasksperchild):
            self._retire(worker)
        if inflight is None or task_id != inflight[0] \
                or task_id in self.results:
            return  # stale duplicate; nothing to record
        if not ok:
            # A clean Python exception from fn is deterministic — retrying
            # would recur.  Re-raise in the parent (Pool.map semantics);
            # run()'s finally tears the pool down.
            raise value
        self._finish(task_id, value)

    def _on_crash(self, worker: _Worker) -> None:
        exitcode = worker.proc.exitcode
        inflight = worker.inflight
        self._discard(worker)
        self._incident("executor.worker_crashes",
                       f"worker died (exitcode {exitcode})")
        if inflight is not None:
            self._retry(inflight)

    def _on_timeout(self, worker: _Worker) -> None:
        inflight = worker.inflight
        self.ex.metrics.counter("executor.timeouts").inc()
        try:
            worker.proc.kill()
        except (OSError, AttributeError):
            worker.proc.terminate()
        worker.proc.join(_SHUTDOWN_GRACE)
        self._discard(worker)
        self._incident(None, "task timed out")
        if inflight is not None:
            self._retry(inflight)

    def _retry(self, inflight: list) -> None:
        task_id, attempt = inflight
        if attempt >= self.ex.retry.max_attempts:
            # Last resort: the pool kept losing this task; run it here.
            self.ex.metrics.counter("executor.inline_fallbacks").inc()
            self._finish(task_id, self.fn(self.tasks[task_id]))
            return
        self.ex.metrics.counter("executor.retries").inc()
        delay = self.ex.retry.delay(task_id, attempt)
        self.pending.append([task_id, attempt + 1,
                             time.monotonic() + delay])

    def _finish(self, task_id: int, value: Any) -> None:
        self.results[task_id] = value
        self.ex.metrics.counter("executor.tasks").inc()
        if self.on_result is not None:
            self.on_result(task_id, value)

    def _incident(self, counter: Optional[str], reason: str) -> None:
        if counter is not None:
            self.ex.metrics.counter(counter).inc()
        self.incidents += 1
        if self.incidents >= self.ex.degrade_after:
            self.degraded = True

    def _run_inline_remaining(self) -> None:
        """The pool is irrecoverable: finish every outstanding task
        serially in-process (graceful degradation, not data loss)."""
        self.ex.metrics.gauge("executor.degraded").set(1.0)
        for w in self.workers:
            if w.inflight is not None:
                self.pending.append([w.inflight[0], w.inflight[1], 0.0])
        self._terminate_all()
        for task_id, _, _ in sorted(self.pending, key=lambda p: p[0]):
            if task_id not in self.results:
                self._finish(task_id, self.fn(self.tasks[task_id]))
        self.pending.clear()

    # -- timing --------------------------------------------------------------

    def _wakeup_timeout(self, now: float) -> float:
        """Sleep no longer than the next deadline / backoff expiry."""
        due = [w.deadline for w in self.workers if w.deadline is not None]
        due += [p[2] for p in self.pending]
        horizon = min((d - now for d in due if d > now), default=_POLL_TICK)
        return max(0.01, min(horizon, _POLL_TICK))

    # -- teardown ------------------------------------------------------------

    def _retire(self, worker: _Worker) -> None:
        self.ex.metrics.counter("executor.workers_recycled").inc()
        self.workers.remove(worker)
        try:
            worker.task_conn.send(None)
        except (OSError, ValueError):
            pass
        self.retired.append(worker)

    def _discard(self, worker: _Worker) -> None:
        """Drop a dead/killed worker: close pipes, reap the process."""
        if worker in self.workers:
            self.workers.remove(worker)
        worker.close()
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(_SHUTDOWN_GRACE)
        if worker.proc.is_alive():  # pragma: no cover - terminate sufficed
            worker.proc.kill()
            worker.proc.join()

    def _reap_retired(self) -> None:
        for worker in list(self.retired):
            if not worker.proc.is_alive():
                worker.proc.join()
                worker.close()
                self.retired.remove(worker)

    def _terminate_all(self) -> None:
        """Poison-pill, then escalate: no orphan worker survives shutdown
        (including KeyboardInterrupt unwinding through ``run``)."""
        everyone = self.workers + self.retired
        self.workers = []
        self.retired = []
        for worker in everyone:
            try:
                worker.task_conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in everyone:
            worker.proc.join(max(0.0, deadline - time.monotonic()))
        for worker in everyone:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(_SHUTDOWN_GRACE)
            if worker.proc.is_alive():  # pragma: no cover
                worker.proc.kill()
                worker.proc.join()
            worker.close()


def _execute_detached(spec: RunSpec) -> RunResult:
    """Worker-side task: run one spec, ship verdicts/metrics back without
    the bulk trace (event history stays in the worker)."""
    return execute(spec).detach_trace()


@dataclass(frozen=True)
class ParallelExecutor:
    """Deterministic map over supervised worker processes.

    ``workers=1`` (the default) runs serially in-process; results are
    identical either way, so the flag is purely a wall-clock knob.
    Task functions must be module-level (picklable by reference) and pure
    functions of their argument; tasks are dispatched one at a time so
    scheduling never affects which worker computes what.

    ``timeout`` and ``retry`` thread through to the underlying
    :class:`SupervisedExecutor` (per-task wall-clock budget, seeded
    backoff retry of tasks lost to crashed/hung workers).
    """

    workers: int = 1
    timeout: Optional[float] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {self.workers}")

    def supervised(self, **overrides: Any) -> SupervisedExecutor:
        """The :class:`SupervisedExecutor` this facade would delegate to."""
        kwargs: dict[str, Any] = dict(workers=self.workers,
                                      timeout=self.timeout, retry=self.retry)
        kwargs.update(overrides)
        return SupervisedExecutor(**kwargs)

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            on_result: Optional[Callable[[int, R], None]] = None) -> list[R]:
        """``[fn(x) for x in items]``, fanned out when ``workers > 1``.

        ``on_result(index, value)`` fires once per task as it lands — in
        item order serially, completion order under a pool (same contract
        as :meth:`SupervisedExecutor.map`).
        """
        tasks = list(items)
        if self.workers <= 1 or len(tasks) <= 1:
            out = []
            for i, x in enumerate(tasks):
                value = fn(x)
                if on_result is not None:
                    on_result(i, value)
                out.append(value)
            return out
        return self.supervised().map(fn, tasks, on_result=on_result)

    def run_specs(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute each spec; order and content match the serial path.

        Parallel results come back trace-detached (see
        :func:`_execute_detached`); serial results keep their traces,
        matching what a lone :func:`~repro.runtime.builder.execute` call
        returns.
        """
        if self.workers <= 1 or len(specs) <= 1:
            return [execute(s) for s in specs]
        return self.map(_execute_detached, specs)
