"""Parallel campaign execution: fan ``RunSpec``s out over worker processes.

Because :func:`repro.runtime.builder.execute` is a pure function of its
spec, running N specs on N cores is embarrassingly parallel *and*
deterministic: results are keyed by spec (seed), not by completion order,
so ``workers=4`` reproduces ``workers=1`` bit for bit, per seed.  The
executor is generic over the task function so chaos campaigns, sweeps,
and experiment batches all share it.

``workers <= 1`` short-circuits to a plain in-process loop — byte-for-byte
the historical serial path, with no pool, no pickling, and traces left
attached to the results.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.runtime.builder import execute
from repro.runtime.result import RunResult
from repro.runtime.spec import RunSpec

T = TypeVar("T")
R = TypeVar("R")


def _execute_detached(spec: RunSpec) -> RunResult:
    """Worker-side task: run one spec, ship verdicts/metrics back without
    the bulk trace (event history stays in the worker)."""
    return execute(spec).detach_trace()


@dataclass(frozen=True)
class ParallelExecutor:
    """Deterministic map over a :mod:`multiprocessing` worker pool.

    ``workers=1`` (the default) runs serially in-process; results are
    identical either way, so the flag is purely a wall-clock knob.
    Task functions must be module-level (picklable by reference) and pure
    functions of their argument; chunksize is pinned to 1 so scheduling
    never affects which worker computes what.
    """

    workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]``, fanned out when ``workers > 1``."""
        tasks = list(items)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(x) for x in tasks]
        procs = min(self.workers, len(tasks))
        with multiprocessing.Pool(processes=procs) as pool:
            return pool.map(fn, tasks, chunksize=1)

    def run_specs(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute each spec; order and content match the serial path.

        Parallel results come back trace-detached (see
        :func:`_execute_detached`); serial results keep their traces,
        matching what a lone :func:`~repro.runtime.builder.execute` call
        returns.
        """
        if self.workers <= 1 or len(specs) <= 1:
            return [execute(s) for s in specs]
        return self.map(_execute_detached, specs)
